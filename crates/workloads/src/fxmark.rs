//! FxMark-like metadata stressors (Fig. 7).
//!
//! FxMark's file-creation microbenchmarks: each thread creates `files`
//! empty files, either all in one **shared** directory (MWCM — maximal
//! contention on the directory and journal locks) or each in a **private**
//! directory (MWCL — contention only on allocator/journal internals).
//! Throughput is creations per second over the merged virtual span.

use crate::stats::Recorder;
use crate::targets::FsTarget;

/// Where threads create their files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreateMode {
    /// All threads share one directory.
    SharedDir,
    /// Each thread owns a private directory.
    PrivateDir,
}

/// One thread's job.
#[derive(Debug, Clone)]
pub struct FxmarkJob {
    /// Files to create.
    pub files: usize,
    /// Directory sharing mode.
    pub mode: CreateMode,
    /// Thread index (names files uniquely).
    pub thread: usize,
}

/// Run a create-intensive job on a target. The caller runs one job per
/// thread (each with its own target) and merges the recorders.
pub fn run_create(job: &FxmarkJob, target: &mut dyn FsTarget) -> Result<Recorder, String> {
    let dir = match job.mode {
        CreateMode::SharedDir => "/shared".to_string(),
        CreateMode::PrivateDir => format!("/priv{}", job.thread),
    };
    // Directory may already exist (shared mode, later threads).
    let _ = target.mkdir(&dir);
    let mut rec = Recorder::new(target.now_ns());
    for i in 0..job.files {
        let path = format!("{dir}/t{}f{i}", job.thread);
        let t0 = target.now_ns();
        let fd = target.open(&path, true, false)?;
        target.close(fd)?;
        rec.record(target.now_ns() - t0, 0);
    }
    rec.end_vt = target.now_ns();
    Ok(rec)
}

/// Unlink everything a previous [`run_create`] made (cleanup between
/// repetitions).
pub fn cleanup(job: &FxmarkJob, target: &mut dyn FsTarget) {
    let dir = match job.mode {
        CreateMode::SharedDir => "/shared".to_string(),
        CreateMode::PrivateDir => format!("/priv{}", job.thread),
    };
    for i in 0..job.files {
        let _ = target.unlink(&format!("{dir}/t{}f{i}", job.thread));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::KernelFsTarget;
    use labstor_kernel::fs::{FsProfile, KernelFs};
    use labstor_kernel::vfs::Vfs;
    use labstor_kernel::BlockLayer;
    use labstor_sim::{DeviceKind, SimDevice};

    fn target() -> KernelFsTarget {
        let vfs = Vfs::new();
        let dev = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount(
            "/mnt",
            KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 8 << 20),
        );
        KernelFsTarget::new(vfs, "/mnt", "ext4", 1, 0)
    }

    #[test]
    fn creates_the_requested_files() {
        let mut t = target();
        let job = FxmarkJob {
            files: 25,
            mode: CreateMode::SharedDir,
            thread: 0,
        };
        let rec = run_create(&job, &mut t).unwrap();
        assert_eq!(rec.ops(), 25);
        assert!(rec.mean_ns() > 0);
        // All files exist.
        assert!(t.stat_size("/shared/t0f24").is_ok());
    }

    #[test]
    fn private_dirs_do_not_collide() {
        let vfs = {
            let vfs = Vfs::new();
            let dev = SimDevice::preset(DeviceKind::Nvme);
            vfs.mount(
                "/mnt",
                KernelFs::new(FsProfile::xfs_like(), BlockLayer::new(dev), 8 << 20),
            );
            vfs
        };
        for thread in 0..3 {
            let mut t = KernelFsTarget::new(vfs.clone(), "/mnt", "xfs", thread as u32 + 1, thread);
            let job = FxmarkJob {
                files: 5,
                mode: CreateMode::PrivateDir,
                thread,
            };
            assert_eq!(run_create(&job, &mut t).unwrap().ops(), 5);
        }
    }

    #[test]
    fn cleanup_removes_files() {
        let mut t = target();
        let job = FxmarkJob {
            files: 5,
            mode: CreateMode::SharedDir,
            thread: 0,
        };
        run_create(&job, &mut t).unwrap();
        cleanup(&job, &mut t);
        assert!(t.stat_size("/shared/t0f0").is_err());
    }
}
