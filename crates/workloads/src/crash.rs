//! Crash-recovery fuzz campaign over LabFS and LabKVS.
//!
//! Each trial runs a seeded fio-like or filebench-like operation mix
//! against a freshly built stack (LabFS or LabKVS over the Kernel MQ
//! driver on a simulated NVMe device), kills the device at a randomized
//! virtual time with [`labstor_sim::FaultConfig::set_crash_at`],
//! restarts a brand-new module instance over the *same* media, runs
//! `state_repair`, and asserts the recovered state equals the model
//! state after some prefix of the acknowledged-operation history — a
//! prefix no shorter than the last acknowledged durability point
//! (fsync / log flush).
//!
//! The harness is single-threaded on core 0, so every operation lands in
//! one journal log and the acknowledged history is totally ordered. A
//! trial runs the mix twice: once uncrashed to measure the run's
//! virtual-time span (and to prove the mix itself is error-free), then
//! again on a fresh device with the crash armed at a per-trial fraction
//! of that span. Operation mixes are overwrite-free (appends, truncates,
//! unlink + recreate): LabFS journals metadata, not file data, so an
//! in-place data overwrite before the metadata commit is the documented
//! ext4-ordered-mode gap, not a bug this campaign hunts.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use labstor_core::stack::{ExecMode, LabStack, Vertex};
use labstor_core::{FsOp, KvsOp, ModuleManager, Payload, Request, RespPayload, StackEnv};
use labstor_ipc::Credentials;
use labstor_mods::journal::crc32;
use labstor_mods::labfs::LabFs;
use labstor_mods::labkvs::LabKvs;
use labstor_mods::{DeviceRegistry, RepairReport};
use labstor_sim::{Ctx, DeviceKind, SimDevice};

use crate::fio::XorShift;

/// Which operation mix a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashWorkload {
    /// fio-like write-heavy mix over a fixed file set: random-size
    /// appends, periodic fsync, occasional truncate-and-rewrite.
    FioWrite,
    /// Filebench varmail: unlink → create → append → fsync → append →
    /// fsync → read, over a small mail set.
    Varmail,
    /// Filebench fileserver: large appends, whole-file reads, deletes of
    /// older files, sparser fsyncs.
    Fileserver,
    /// LabKVS mix: puts, removes, explicit log flushes, read-backs.
    KvsMix,
}

impl CrashWorkload {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CrashWorkload::FioWrite => "fio-write",
            CrashWorkload::Varmail => "varmail",
            CrashWorkload::Fileserver => "fileserver",
            CrashWorkload::KvsMix => "kvs-mix",
        }
    }

    /// All mixes, fio first.
    pub fn all() -> [CrashWorkload; 4] {
        [
            CrashWorkload::FioWrite,
            CrashWorkload::Varmail,
            CrashWorkload::Fileserver,
            CrashWorkload::KvsMix,
        ]
    }

    fn is_kvs(self) -> bool {
        self == CrashWorkload::KvsMix
    }
}

/// Outcome of one crash trial.
#[derive(Debug, Clone)]
pub struct TrialReport {
    /// Mix the trial ran.
    pub workload: CrashWorkload,
    /// Trial seed.
    pub seed: u64,
    /// Virtual time the power cut was armed at (`None` = baseline-only
    /// trial, which happens when the mix errored uncrashed).
    pub crash_at: Option<u64>,
    /// Operations acknowledged before the crash.
    pub acked_ops: usize,
    /// History index of the last acknowledged durability point.
    pub durable_floor: usize,
    /// History index whose model state the recovered state matched.
    pub matched_prefix: Option<usize>,
    /// What `state_repair` reported after the restart.
    pub repair: RepairReport,
    /// A prefix-consistency (or harness) violation, if any.
    pub violation: Option<String>,
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Crash trials per workload mix.
    pub trials_per_workload: usize,
    /// Flow iterations per trial.
    pub flows: usize,
    /// Base seed; trial seeds derive from it deterministically.
    pub base_seed: u64,
}

/// Results of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Every trial, in execution order.
    pub trials: Vec<TrialReport>,
}

impl CampaignReport {
    /// Trials that violated prefix consistency (or hit harness errors).
    pub fn violations(&self) -> Vec<&TrialReport> {
        self.trials
            .iter()
            .filter(|t| t.violation.is_some())
            .collect()
    }

    /// Trials whose crash actually interrupted the mix (the armed cut
    /// fired before the workload finished).
    pub fn crashes(&self) -> usize {
        self.trials.iter().filter(|t| t.crash_at.is_some()).count()
    }

    /// Trials whose recovery discarded a torn or uncommitted tail — the
    /// interesting crash points.
    pub fn torn_tails(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.repair.torn_tail || t.repair.txns_discarded > 0)
            .count()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} trials, {} crash points, {} torn/uncommitted tails discarded, {} violations",
            self.trials.len(),
            self.crashes(),
            self.torn_tails(),
            self.violations().len()
        )
    }
}

/// Run `cfg.trials_per_workload` seeded crash points for every mix.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let mut trials = Vec::new();
    for (wi, w) in CrashWorkload::all().into_iter().enumerate() {
        for i in 0..cfg.trials_per_workload {
            let seed = cfg
                .base_seed
                .wrapping_add(wi as u64 * 0x9E37_79B9)
                .wrapping_add(i as u64 * 7919);
            // Spread crash points across 5%–95% of the run.
            let permille = 50 + (seed.wrapping_mul(2654435761) % 900);
            trials.push(run_trial(w, seed, cfg.flows, permille as u32));
        }
    }
    CampaignReport { trials }
}

/// Run one trial: baseline pass, crashed pass, restart, repair, verify.
pub fn run_trial(
    workload: CrashWorkload,
    seed: u64,
    flows: usize,
    crash_permille: u32,
) -> TrialReport {
    // Baseline: same seed, no crash. Measures the virtual-time span and
    // proves the mix is error-free, so any error in the crashed pass is
    // attributable to the cut.
    let base = run_once(workload, seed, flows, None);
    let mut report = TrialReport {
        workload,
        seed,
        crash_at: None,
        acked_ops: 0,
        durable_floor: 0,
        matched_prefix: None,
        repair: RepairReport::default(),
        violation: None,
    };
    if let Some(v) = base.violation {
        report.violation = Some(format!("baseline run failed: {v}"));
        return report;
    }
    let crash_at = (base.end_vt * crash_permille as u64 / 1000).max(1);
    report.crash_at = Some(crash_at);

    let run = run_once(workload, seed, flows, Some(crash_at));
    if let Some(v) = run.violation {
        report.violation = Some(v);
        return report;
    }
    report.acked_ops = run.digests.len() - 1;
    report.durable_floor = run.durable_floor;

    // Restart: clear the fault, boot a brand-new module instance over the
    // same media, and repair.
    run.dev.faults().clear_crash();
    let boot = Boot::new(&run.dev, workload.is_kvs());
    report.repair = boot.repair();

    // The recovered state must equal the model state after some
    // acknowledged prefix, no shorter than the last acked durability
    // point.
    let mut ctx = Ctx::new();
    let recovered = match boot.observed_digest(&mut ctx, &run.candidates) {
        Ok(d) => d,
        Err(e) => {
            report.violation = Some(format!("post-recovery scan failed: {e}"));
            return report;
        }
    };
    report.matched_prefix = (run.durable_floor..run.digests.len())
        .rev()
        .find(|&k| run.digests[k] == recovered);
    if report.matched_prefix.is_none() {
        report.violation = Some(format!(
            "recovered state matches no acked prefix >= durability floor \
             (floor {}, acked {}, crash_at {}, repair: {})",
            run.durable_floor,
            run.digests.len() - 1,
            crash_at,
            report.repair,
        ));
    }
    report
}

/// Repair idempotence probe (for the property tests): run a crashed
/// workload, then check that (a) repairing twice leaves the same state as
/// repairing once, and (b) a crash *during* repair followed by a clean
/// repair also converges to that state. Returns a violation description.
pub fn check_repair_idempotence(
    workload: CrashWorkload,
    seed: u64,
    flows: usize,
    crash_permille: u32,
) -> Result<(), String> {
    let base = run_once(workload, seed, flows, None);
    if let Some(v) = base.violation {
        return Err(format!("baseline run failed: {v}"));
    }
    let crash_at = (base.end_vt * crash_permille as u64 / 1000).max(1);
    let run = run_once(workload, seed, flows, Some(crash_at));
    if let Some(v) = run.violation {
        return Err(v);
    }
    run.dev.faults().clear_crash();

    let boot = Boot::new(&run.dev, workload.is_kvs());
    boot.repair();
    let mut ctx = Ctx::new();
    let once = boot.observed_digest(&mut ctx, &run.candidates)?;
    // Repair is a read-only scan of media: doing it again must converge
    // to the same state.
    let twice_report = boot.repair();
    let twice = boot.observed_digest(&mut ctx, &run.candidates)?;
    if once != twice {
        return Err(format!("second repair diverged (repair: {twice_report})"));
    }
    // Crash in the middle of a repair (the recovery scan itself loses
    // power), then repair cleanly: same state again.
    let boot2 = Boot::new(&run.dev, workload.is_kvs());
    run.dev.faults().set_crash_at(40_000); // a few reads into the scan
    let _ = boot2.repair(); // partial: scan reads die at the cut
    run.dev.faults().clear_crash();
    boot2.repair();
    let mut ctx2 = Ctx::new();
    let after = boot2.observed_digest(&mut ctx2, &run.candidates)?;
    if once != after {
        return Err("repair after crashed repair diverged".to_string());
    }
    Ok(())
}

// ---- harness ----------------------------------------------------------

/// One "boot" of the stack: a module manager holding the FS/KVS entry
/// module and the kernel driver, wired over a shared device.
struct Boot {
    mm: ModuleManager,
    stack: LabStack,
    entry: &'static str,
    kvs: bool,
}

impl Boot {
    fn new(dev: &Arc<SimDevice>, kvs: bool) -> Boot {
        let devices = DeviceRegistry::new();
        devices.add_block("dev0", dev.clone());
        let mm = ModuleManager::new();
        labstor_mods::labfs::install(&mm, &devices);
        labstor_mods::labkvs::install(&mm, &devices);
        labstor_mods::drivers::install(&mm, &devices);
        let (entry, type_name) = if kvs {
            ("kvs", "labkvs")
        } else {
            ("fs", "labfs")
        };
        // One worker = one journal log = a totally ordered history.
        mm.instantiate(
            entry,
            type_name,
            &serde_json::json!({"device": "dev0", "workers": 1}),
        )
        .expect("instantiate entry module");
        mm.instantiate(
            "drv",
            "kernel_driver",
            &serde_json::json!({"device": "dev0"}),
        )
        .expect("instantiate driver");
        let stack = LabStack {
            id: 1,
            mount: format!("{entry}::/cf"),
            exec: ExecMode::Sync,
            vertices: vec![
                Vertex {
                    uuid: entry.into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "drv".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![],
        };
        Boot {
            mm,
            stack,
            entry,
            kvs,
        }
    }

    fn exec(&self, ctx: &mut Ctx, payload: Payload) -> RespPayload {
        let env = StackEnv {
            stack: &self.stack,
            vertex: 0,
            registry: &self.mm,
            domain: 0,
        };
        self.mm.get(self.entry).expect("entry module").process(
            ctx,
            Request::new(1, 1, payload, Credentials::ROOT),
            &env,
        )
    }

    /// Run the module's crash-recovery path and return its report.
    fn repair(&self) -> RepairReport {
        let entry = self.mm.get(self.entry).expect("entry module");
        if self.kvs {
            entry
                .as_any()
                .downcast_ref::<LabKvs>()
                .expect("labkvs")
                .replay_from_device()
        } else {
            entry
                .as_any()
                .downcast_ref::<LabFs>()
                .expect("labfs")
                .replay_from_device()
        }
    }

    /// Flush the KVS op log (LabKVS's durability point; LabFS uses fsync).
    fn kv_flush(&self, ctx: &mut Ctx) -> Result<(), String> {
        self.mm
            .get(self.entry)
            .expect("entry module")
            .as_any()
            .downcast_ref::<LabKvs>()
            .expect("labkvs")
            .flush_logs(ctx)
    }

    /// Digest of the live (post-recovery) state over the candidate
    /// namespace, computed the same way as the model's snapshots.
    fn observed_digest(&self, ctx: &mut Ctx, candidates: &BTreeSet<String>) -> Result<u64, String> {
        let mut entries: Vec<(String, usize, u32)> = Vec::new();
        for name in candidates {
            if self.kvs {
                match self.exec(ctx, Payload::Kvs(KvsOp::Get { key: name.clone() })) {
                    RespPayload::Data(d) => entries.push((name.clone(), d.len(), crc32(&d))),
                    RespPayload::DataBuf(h) => {
                        let d = h.to_vec();
                        entries.push((name.clone(), d.len(), crc32(&d)));
                    }
                    RespPayload::Err(_) => {} // absent
                    other => return Err(format!("get {name}: {other:?}")),
                }
            } else {
                let st = match self.exec(ctx, Payload::Fs(FsOp::Stat { path: name.clone() })) {
                    RespPayload::Stat(st) => st,
                    RespPayload::Err(_) => continue, // absent
                    other => return Err(format!("stat {name}: {other:?}")),
                };
                if st.is_dir {
                    continue;
                }
                let data = match self.exec(
                    ctx,
                    Payload::Fs(FsOp::Read {
                        ino: st.ino,
                        offset: 0,
                        len: st.size as usize,
                    }),
                ) {
                    RespPayload::Data(d) => d,
                    RespPayload::DataBuf(h) => h.to_vec(),
                    other => return Err(format!("read {name}: {other:?}")),
                };
                entries.push((name.clone(), data.len(), crc32(&data)));
            }
        }
        Ok(fold_digest(entries))
    }
}

/// Order-independent 64-bit digest over (name, size, content crc).
fn fold_digest(mut entries: Vec<(String, usize, u32)>) -> u64 {
    entries.sort();
    let mut h = 0xcbf29ce484222325u64;
    let mut byte = |b: u8| h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    for (name, len, crc) in &entries {
        for b in name.as_bytes() {
            byte(*b);
        }
        for b in (*len as u64).to_le_bytes() {
            byte(b);
        }
        for b in crc.to_le_bytes() {
            byte(b);
        }
    }
    h
}

// ---- model + workload driver ------------------------------------------

/// In-memory model of what the acknowledged history should produce.
#[derive(Default)]
struct Model {
    /// name → (content, content crc).
    files: HashMap<String, (Vec<u8>, u32)>,
}

impl Model {
    fn digest(&self) -> u64 {
        fold_digest(
            self.files
                .iter()
                .map(|(k, (v, c))| (k.clone(), v.len(), *c))
                .collect(),
        )
    }
}

struct RunOutcome {
    dev: Arc<SimDevice>,
    end_vt: u64,
    /// `digests[k]` = model digest after the first `k` acked operations.
    digests: Vec<u64>,
    /// Index of the last acked durability point in `digests`.
    durable_floor: usize,
    /// Every name the mix ever touched (the verification namespace).
    candidates: BTreeSet<String>,
    violation: Option<String>,
}

/// Drives one pass of a mix, maintaining the model and the acked-history
/// digests. Stops at the first error: a crash if one is armed, a
/// violation otherwise.
struct Driver<'a> {
    boot: &'a Boot,
    ctx: Ctx,
    model: Model,
    digests: Vec<u64>,
    durable_floor: usize,
    inos: HashMap<String, u64>,
    dir_ino: u64,
    candidates: BTreeSet<String>,
    crashed: bool,
    expect_crash: bool,
    violation: Option<String>,
}

impl Driver<'_> {
    fn live(&self) -> bool {
        !self.crashed && self.violation.is_none()
    }

    /// Record an error response: the armed crash, or a violation.
    fn error(&mut self, what: &str, msg: String) {
        if self.expect_crash {
            self.crashed = true;
        } else {
            self.violation = Some(format!("{what}: {msg}"));
        }
    }

    fn ack(&mut self) {
        self.digests.push(self.model.digest());
    }

    fn create(&mut self, path: &str) {
        if !self.live() {
            return;
        }
        self.candidates.insert(path.to_string());
        match self.boot.exec(
            &mut self.ctx,
            Payload::Fs(FsOp::Create {
                path: path.to_string(),
                mode: 0o644,
            }),
        ) {
            RespPayload::Ino(i) => {
                self.inos.insert(path.to_string(), i);
                self.model
                    .files
                    .insert(path.to_string(), (Vec::new(), crc32(&[])));
                self.ack();
            }
            RespPayload::Err(e) => self.error("create", e),
            other => self.violation = Some(format!("create {path}: {other:?}")),
        }
    }

    /// Append `data` at the current end of file (overwrite-free by
    /// construction).
    fn append(&mut self, path: &str, data: Vec<u8>) {
        if !self.live() {
            return;
        }
        let Some(&ino) = self.inos.get(path) else {
            self.violation = Some(format!("append {path}: no ino"));
            return;
        };
        let offset = self
            .model
            .files
            .get(path)
            .map(|(v, _)| v.len())
            .unwrap_or(0) as u64;
        match self.boot.exec(
            &mut self.ctx,
            Payload::Fs(FsOp::Write {
                ino,
                offset,
                data: data.clone(),
            }),
        ) {
            RespPayload::Len(_) => {
                let entry = self.model.files.get_mut(path).expect("modeled file");
                entry.0.extend_from_slice(&data);
                entry.1 = crc32(&entry.0);
                self.ack();
            }
            RespPayload::Err(e) => self.error("append", e),
            other => self.violation = Some(format!("append {path}: {other:?}")),
        }
    }

    fn truncate0(&mut self, path: &str) {
        if !self.live() {
            return;
        }
        let Some(&ino) = self.inos.get(path) else {
            return;
        };
        match self
            .boot
            .exec(&mut self.ctx, Payload::Fs(FsOp::Truncate { ino, size: 0 }))
        {
            RespPayload::Ok => {
                let entry = self.model.files.get_mut(path).expect("modeled file");
                entry.0.clear();
                entry.1 = crc32(&[]);
                self.ack();
            }
            RespPayload::Err(e) => self.error("truncate", e),
            other => self.violation = Some(format!("truncate {path}: {other:?}")),
        }
    }

    fn unlink(&mut self, path: &str) {
        if !self.live() || !self.model.files.contains_key(path) {
            return;
        }
        match self.boot.exec(
            &mut self.ctx,
            Payload::Fs(FsOp::Unlink {
                path: path.to_string(),
            }),
        ) {
            RespPayload::Ok => {
                self.model.files.remove(path);
                self.inos.remove(path);
                self.ack();
            }
            RespPayload::Err(e) => self.error("unlink", e),
            other => self.violation = Some(format!("unlink {path}: {other:?}")),
        }
    }

    /// LabFS durability point: fsync flushes every buffered log record as
    /// a journal transaction and barriers the data path.
    fn fsync(&mut self) {
        if !self.live() {
            return;
        }
        match self.boot.exec(
            &mut self.ctx,
            Payload::Fs(FsOp::Fsync { ino: self.dir_ino }),
        ) {
            r if r.is_ok() => {
                self.ack();
                self.durable_floor = self.digests.len() - 1;
            }
            RespPayload::Err(e) => self.error("fsync", e),
            other => self.violation = Some(format!("fsync: {other:?}")),
        }
    }

    /// Live read-back check (also an acked operation).
    fn read_check(&mut self, path: &str) {
        if !self.live() {
            return;
        }
        let Some(&ino) = self.inos.get(path) else {
            return;
        };
        let want = self.model.files.get(path).expect("modeled file").0.clone();
        match self.boot.exec(
            &mut self.ctx,
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: want.len().max(1),
            }),
        ) {
            RespPayload::Data(d) => {
                if d != want {
                    self.violation = Some(format!("live read mismatch on {path}"));
                } else {
                    self.ack();
                }
            }
            RespPayload::DataBuf(h) => {
                if h.to_vec() != want {
                    self.violation = Some(format!("live read mismatch on {path}"));
                } else {
                    self.ack();
                }
            }
            RespPayload::Err(e) => self.error("read", e),
            other => self.violation = Some(format!("read {path}: {other:?}")),
        }
    }

    fn put(&mut self, key: &str, value: Vec<u8>) {
        if !self.live() {
            return;
        }
        self.candidates.insert(key.to_string());
        match self.boot.exec(
            &mut self.ctx,
            Payload::Kvs(KvsOp::Put {
                key: key.to_string(),
                value: value.clone(),
            }),
        ) {
            RespPayload::Len(_) => {
                let crc = crc32(&value);
                self.model.files.insert(key.to_string(), (value, crc));
                self.ack();
            }
            RespPayload::Err(e) => self.error("put", e),
            other => self.violation = Some(format!("put {key}: {other:?}")),
        }
    }

    fn remove(&mut self, key: &str) {
        if !self.live() || !self.model.files.contains_key(key) {
            return;
        }
        match self.boot.exec(
            &mut self.ctx,
            Payload::Kvs(KvsOp::Remove {
                key: key.to_string(),
            }),
        ) {
            RespPayload::Ok => {
                self.model.files.remove(key);
                self.ack();
            }
            RespPayload::Err(e) => self.error("remove", e),
            other => self.violation = Some(format!("remove {key}: {other:?}")),
        }
    }

    /// LabKVS durability point: persist the op log.
    fn kv_flush(&mut self) {
        if !self.live() {
            return;
        }
        match self.boot.kv_flush(&mut self.ctx) {
            Ok(()) => {
                self.ack();
                self.durable_floor = self.digests.len() - 1;
            }
            Err(e) => self.error("kv flush", e),
        }
    }
}

/// Deterministic payload bytes for one operation.
fn payload_bytes(rng: &mut XorShift, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next() as u8).collect()
}

fn run_once(workload: CrashWorkload, seed: u64, flows: usize, crash_at: Option<u64>) -> RunOutcome {
    let dev = SimDevice::preset(DeviceKind::Nvme);
    if let Some(t) = crash_at {
        dev.faults().set_crash_at(t);
    }
    let boot = Boot::new(&dev, workload.is_kvs());
    let mut d = Driver {
        boot: &boot,
        ctx: Ctx::new(),
        model: Model::default(),
        digests: Vec::new(),
        durable_floor: 0,
        inos: HashMap::new(),
        dir_ino: 0,
        candidates: BTreeSet::new(),
        crashed: false,
        expect_crash: crash_at.is_some(),
        violation: None,
    };
    d.digests.push(d.model.digest()); // state after zero ops

    if !workload.is_kvs() {
        // The shared directory is op 1 of the history (digest unchanged —
        // only files are digested, the directory is structural).
        match d.boot.exec(
            &mut d.ctx,
            Payload::Fs(FsOp::Mkdir {
                path: "/cf".into(),
                mode: 0o755,
            }),
        ) {
            RespPayload::Ino(i) => {
                d.dir_ino = i;
                d.ack();
            }
            RespPayload::Err(e) => d.error("mkdir", e),
            other => d.violation = Some(format!("mkdir: {other:?}")),
        }
    }

    let mut rng = XorShift::new(seed | 1);
    for flow in 0..flows {
        if !d.live() {
            break;
        }
        match workload {
            CrashWorkload::FioWrite => {
                for _ in 0..4 {
                    let path = format!("/cf/f{}", rng.next() % 8);
                    if !d.model.files.contains_key(&path) {
                        d.create(&path);
                    }
                    let len = 512 + (rng.next() % 8192) as usize;
                    let data = payload_bytes(&mut rng, len);
                    d.append(&path, data);
                }
                if flow % 5 == 4 {
                    let path = format!("/cf/f{}", rng.next() % 8);
                    d.truncate0(&path);
                }
                if flow % 2 == 1 {
                    d.fsync();
                }
            }
            CrashWorkload::Varmail => {
                let path = format!("/cf/v{}", rng.next() % 6);
                d.unlink(&path);
                d.create(&path);
                let half = 2048 + (rng.next() % 2048) as usize;
                let first = payload_bytes(&mut rng, half);
                let second = payload_bytes(&mut rng, half);
                d.append(&path, first);
                d.fsync();
                d.append(&path, second);
                d.fsync();
                d.read_check(&path);
            }
            CrashWorkload::Fileserver => {
                let path = format!("/cf/s{flow}");
                d.create(&path);
                for _ in 0..4 {
                    let data = payload_bytes(&mut rng, 4096);
                    d.append(&path, data);
                }
                d.read_check(&path);
                if flow >= 2 {
                    d.unlink(&format!("/cf/s{}", flow - 2));
                }
                if flow % 3 == 2 {
                    d.fsync();
                }
            }
            CrashWorkload::KvsMix => {
                for _ in 0..3 {
                    let key = format!("k{}", rng.next() % 12);
                    let len = 200 + (rng.next() % 6000) as usize;
                    let value = payload_bytes(&mut rng, len);
                    d.put(&key, value);
                }
                if rng.next().is_multiple_of(5) {
                    let key = format!("k{}", rng.next() % 12);
                    d.remove(&key);
                }
                if flow % 2 == 1 {
                    d.kv_flush();
                }
            }
        }
    }
    // End every run on a durability point so a late crash still has a
    // device operation to hit.
    if d.live() {
        if workload.is_kvs() {
            d.kv_flush();
        } else {
            d.fsync();
        }
    }
    let end_vt = d.ctx.now();
    RunOutcome {
        dev,
        end_vt,
        digests: d.digests,
        durable_floor: d.durable_floor,
        candidates: d.candidates,
        violation: d.violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_runs_are_error_free() {
        for w in CrashWorkload::all() {
            let out = run_once(w, 7, 4, None);
            assert!(
                out.violation.is_none(),
                "{}: {:?}",
                w.label(),
                out.violation
            );
            assert!(out.digests.len() > 4, "{} acked too few ops", w.label());
            assert!(
                out.durable_floor > 0,
                "{} never reached durability",
                w.label()
            );
        }
    }

    #[test]
    fn trials_recover_a_consistent_prefix() {
        for w in CrashWorkload::all() {
            for (i, permille) in [300u32, 700u32].iter().enumerate() {
                let t = run_trial(w, 11 + i as u64, 4, *permille);
                assert!(t.violation.is_none(), "{}: {:?}", w.label(), t.violation);
                assert!(t.matched_prefix.is_some(), "{}: no match", w.label());
                assert!(t.matched_prefix.unwrap() >= t.durable_floor);
            }
        }
    }

    #[test]
    fn mid_run_crashes_leave_work_to_discard() {
        // Across a handful of seeds, at least one fio crash point must
        // actually cost the workload acked-but-volatile operations
        // (acked > floor), proving the cut lands mid-epoch.
        let mut saw_volatile_tail = false;
        for seed in 0..6u64 {
            let t = run_trial(CrashWorkload::FioWrite, 100 + seed, 4, 500);
            assert!(t.violation.is_none(), "{:?}", t.violation);
            saw_volatile_tail |= t.acked_ops > t.durable_floor;
        }
        assert!(saw_volatile_tail, "every crash landed on a clean boundary");
    }

    #[test]
    fn small_campaign_is_violation_free() {
        let report = run_campaign(&CampaignConfig {
            trials_per_workload: 2,
            flows: 3,
            base_seed: 42,
        });
        assert_eq!(report.trials.len(), 8);
        assert!(report.violations().is_empty(), "{:#?}", report.violations());
        assert_eq!(report.crashes(), 8);
    }

    #[test]
    fn repair_is_idempotent_after_a_crash() {
        check_repair_idempotence(CrashWorkload::FioWrite, 5, 4, 400).unwrap();
        check_repair_idempotence(CrashWorkload::KvsMix, 6, 4, 600).unwrap();
    }
}
