//! Filebench-like personalities (Fig. 9c).
//!
//! The four default Filebench workloads the paper runs, scaled to
//! simulator-friendly sizes but with the canonical operation mixes:
//!
//! * **varmail** — mail server: create/append/fsync/read/delete over many
//!   small files (fsync-heavy; 16 KB files).
//! * **webserver** — read-mostly: whole-file reads of small files plus an
//!   append to a shared log.
//! * **webproxy** — create/write/read mix over a flat namespace with
//!   repeated re-reads (cache-friendly).
//! * **fileserver** — large-file create/write/read/delete with 128 KB
//!   appends (bandwidth-bound — the paper's exception where LabFS only
//!   ties the kernel).

use crate::fio::XorShift;
use crate::stats::Recorder;
use crate::targets::FsTarget;

/// Which personality to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Mail-server mix.
    Varmail,
    /// Static web serving.
    Webserver,
    /// Proxy cache.
    Webproxy,
    /// Large-file file server.
    Fileserver,
}

impl Personality {
    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Personality::Varmail => "varmail",
            Personality::Webserver => "webserver",
            Personality::Webproxy => "webproxy",
            Personality::Fileserver => "fileserver",
        }
    }

    /// All four, in the paper's order.
    pub fn all() -> [Personality; 4] {
        [
            Personality::Varmail,
            Personality::Webserver,
            Personality::Webproxy,
            Personality::Fileserver,
        ]
    }

    /// Mean file size for the personality (default Filebench configs:
    /// varmail 16 KB, webserver 16 KB, webproxy 16 KB, fileserver 128 KB).
    fn file_size(self) -> usize {
        match self {
            Personality::Fileserver => 128 * 1024,
            _ => 16 * 1024,
        }
    }

    /// Files in the working set per thread.
    fn fileset(self) -> usize {
        match self {
            Personality::Fileserver => 16,
            _ => 64,
        }
    }
}

/// One thread's filebench job.
#[derive(Debug, Clone)]
pub struct FilebenchJob {
    /// Personality to run.
    pub personality: Personality,
    /// Loop iterations (each iteration is one personality "flow").
    pub iterations: usize,
    /// Thread index.
    pub thread: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Run the job; each recorded operation is one flow iteration.
pub fn run_filebench(job: &FilebenchJob, target: &mut dyn FsTarget) -> Result<Recorder, String> {
    let p = job.personality;
    let dir = format!("/fb{}", job.thread);
    let _ = target.mkdir(&dir);
    let fsize = p.file_size();
    let fileset = p.fileset();
    let chunk: Vec<u8> = (0..fsize).map(|i| (i % 253) as u8).collect();
    let mut rng = XorShift::new(job.seed + job.thread as u64 * 7919);

    // Preallocate the working set (Filebench "prealloc").
    for f in 0..fileset {
        let path = format!("{dir}/f{f}");
        let fd = target.open(&path, true, false)?;
        target.write(fd, &chunk)?;
        target.close(fd)?;
    }
    // Shared append log for webserver.
    let log_fd = if p == Personality::Webserver {
        Some(target.open(&format!("{dir}/weblog"), true, false)?)
    } else {
        None
    };

    let mut rec = Recorder::new(target.now_ns());
    for it in 0..job.iterations {
        let t0 = target.now_ns();
        let mut bytes = 0usize;
        let pick = (rng.next() as usize) % fileset;
        let path = format!("{dir}/f{pick}");
        match p {
            Personality::Varmail => {
                // delete → create+append+fsync → open+append+fsync →
                // open+read — the canonical varmail flow.
                let _ = target.unlink(&path);
                let fd = target.open(&path, true, false)?;
                bytes += target.write(fd, &chunk[..fsize / 2])?;
                target.fsync(fd)?;
                target.close(fd)?;
                let fd = target.open(&path, false, false)?;
                target.seek(fd, (fsize / 2) as u64)?;
                bytes += target.write(fd, &chunk[fsize / 2..])?;
                target.fsync(fd)?;
                target.close(fd)?;
                let fd = target.open(&path, false, false)?;
                bytes += target.read(fd, fsize)?.len();
                target.close(fd)?;
            }
            Personality::Webserver => {
                // Ten whole-file reads plus one log append.
                for _ in 0..10 {
                    let pick = (rng.next() as usize) % fileset;
                    let rpath = format!("{dir}/f{pick}");
                    let fd = target.open(&rpath, false, false)?;
                    bytes += target.read(fd, fsize)?.len();
                    target.close(fd)?;
                }
                if let Some(lfd) = log_fd {
                    target.seek(lfd, (it * 512) as u64)?;
                    bytes += target.write(lfd, &chunk[..512])?;
                }
            }
            Personality::Webproxy => {
                // create+write once, read it back five times.
                let fresh = format!("{dir}/p{it}");
                let fd = target.open(&fresh, true, false)?;
                bytes += target.write(fd, &chunk)?;
                target.close(fd)?;
                for _ in 0..5 {
                    let fd = target.open(&fresh, false, false)?;
                    bytes += target.read(fd, fsize)?.len();
                    target.close(fd)?;
                }
                let _ = target.unlink(&fresh);
            }
            Personality::Fileserver => {
                // create+write whole file, append, read whole, delete.
                let fresh = format!("{dir}/s{it}");
                let fd = target.open(&fresh, true, false)?;
                bytes += target.write(fd, &chunk)?;
                bytes += target.write(fd, &chunk[..fsize / 2])?;
                target.close(fd)?;
                let fd = target.open(&fresh, false, false)?;
                bytes += target.read(fd, fsize + fsize / 2)?.len();
                target.close(fd)?;
                target.unlink(&fresh)?;
            }
        }
        rec.record(target.now_ns() - t0, bytes);
    }
    if let Some(lfd) = log_fd {
        let _ = target.close(lfd);
    }
    rec.end_vt = target.now_ns();
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::KernelFsTarget;
    use labstor_kernel::fs::{FsProfile, KernelFs};
    use labstor_kernel::vfs::Vfs;
    use labstor_kernel::BlockLayer;
    use labstor_sim::{DeviceKind, SimDevice};

    fn target() -> KernelFsTarget {
        let vfs = Vfs::new();
        let dev = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount(
            "/mnt",
            KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 64 << 20),
        );
        KernelFsTarget::new(vfs, "/mnt", "ext4", 1, 0)
    }

    #[test]
    fn every_personality_completes() {
        for p in Personality::all() {
            let mut t = target();
            let job = FilebenchJob {
                personality: p,
                iterations: 5,
                thread: 0,
                seed: 11,
            };
            let rec = run_filebench(&job, &mut t).unwrap();
            assert_eq!(rec.ops(), 5, "{}", p.label());
            assert!(rec.bytes > 0, "{} moved no bytes", p.label());
        }
    }

    #[test]
    fn varmail_is_fsync_dominated() {
        // varmail's fsyncs make its per-flow latency much higher than
        // webproxy's cache-friendly flow at equal file size.
        let mut t1 = target();
        let varmail = FilebenchJob {
            personality: Personality::Varmail,
            iterations: 10,
            thread: 0,
            seed: 5,
        };
        let r1 = run_filebench(&varmail, &mut t1).unwrap();
        let mut t2 = target();
        let proxy = FilebenchJob {
            personality: Personality::Webproxy,
            iterations: 10,
            thread: 0,
            seed: 5,
        };
        let r2 = run_filebench(&proxy, &mut t2).unwrap();
        assert!(
            r1.mean_ns() > r2.mean_ns(),
            "varmail {} vs webproxy {}",
            r1.mean_ns(),
            r2.mean_ns()
        );
    }

    #[test]
    fn fileserver_moves_most_bytes_per_flow() {
        let mut t = target();
        let job = FilebenchJob {
            personality: Personality::Fileserver,
            iterations: 4,
            thread: 0,
            seed: 2,
        };
        let rec = run_filebench(&job, &mut t).unwrap();
        // Each flow: 128K + 64K written + 192K read = 384 KB.
        assert!(rec.bytes >= 4 * 300 * 1024, "bytes {}", rec.bytes);
    }
}
