//! FIO-like block workload generator (Figs. 5a, 6, 8).
//!
//! Closed-loop per-thread generator with configurable read/write mix,
//! access pattern, request size and queue depth, over any
//! [`BlockTarget`]: a kernel I/O engine (POSIX/AIO/libaio/io_uring), a
//! LabStor stack (driver mods, scheduler stacks), or PMEM via DAX.

use std::collections::VecDeque;
use std::sync::Arc;

use labstor_core::client::Client;
use labstor_core::{BlockOp, LabStack, Payload};
use labstor_kernel::engines::{IoEngineKind, RawEngine};
use labstor_kernel::sched::IoClass;
use labstor_sim::{Ctx, IoRequest, PmemDevice};

use crate::stats::Recorder;

/// Access pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RwMode {
    /// Random writes.
    RandWrite,
    /// Random reads.
    RandRead,
    /// Sequential writes.
    SeqWrite,
    /// Sequential reads.
    SeqRead,
    /// Random mix: this many reads per 100 operations (fio's `rwmixread`).
    RandMix {
        /// Read percentage, 0–100.
        read_pct: u8,
    },
}

impl RwMode {
    /// True for pure-write variants.
    pub fn is_write(self) -> bool {
        matches!(self, RwMode::RandWrite | RwMode::SeqWrite)
    }

    /// True for the random variants.
    pub fn is_random(self) -> bool {
        matches!(
            self,
            RwMode::RandWrite | RwMode::RandRead | RwMode::RandMix { .. }
        )
    }

    /// Decide whether operation drawing `roll` (an RNG sample) writes.
    pub fn writes_this_op(self, roll: u64) -> bool {
        match self {
            RwMode::RandWrite | RwMode::SeqWrite => true,
            RwMode::RandRead | RwMode::SeqRead => false,
            RwMode::RandMix { read_pct } => (roll % 100) as u8 >= read_pct,
        }
    }
}

/// One fio job description (per thread).
#[derive(Debug, Clone)]
pub struct FioJob {
    /// Access pattern.
    pub mode: RwMode,
    /// Request size in bytes (sector multiple).
    pub bs: usize,
    /// Operations to perform.
    pub ops: usize,
    /// Outstanding requests (QD).
    pub iodepth: usize,
    /// Address-space span in bytes the job touches.
    pub span_bytes: u64,
    /// RNG seed (per-thread offset recommended).
    pub seed: u64,
}

impl FioJob {
    /// 4 KB random writes, QD1 — the paper's most common configuration.
    pub fn rand_write_4k(ops: usize) -> Self {
        FioJob {
            mode: RwMode::RandWrite,
            bs: 4096,
            ops,
            iodepth: 1,
            span_bytes: 256 << 20,
            seed: 1,
        }
    }
}

/// Anything fio can drive: asynchronous block submission with FIFO waits.
pub trait BlockTarget {
    /// Queue one operation (write if `data` is `Some`). Returns a
    /// submission-time marker used for latency accounting.
    fn submit(&mut self, lba: u64, len: usize, data: Option<Vec<u8>>) -> Result<(), String>;
    /// Make all queued submissions visible to the device (io_uring-style
    /// batching; no-op elsewhere).
    fn kick(&mut self) -> Result<(), String>;
    /// Wait for the *oldest* outstanding operation; returns its virtual
    /// latency in ns.
    fn wait_one(&mut self) -> Result<u64, String>;
    /// Outstanding operations.
    fn in_flight(&self) -> usize;
    /// This thread's virtual clock.
    fn now_ns(&self) -> u64;
    /// Label for reports.
    fn label(&self) -> String;
}

/// Simple xorshift for reproducible offsets without pulling `rand` into
/// the hot loop.
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    pub(crate) fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Run one fio job against a target; returns the thread's recorder.
pub fn run_fio(job: &FioJob, target: &mut dyn BlockTarget) -> Result<Recorder, String> {
    run_fio_inner(job, target, None)
}

/// Like [`run_fio`] but synchronized through a [`SkewGate`]: actor `idx`
/// never runs more than the gate's window ahead of its slowest peer.
/// Required whenever several fio threads share devices and the host has
/// fewer cores than threads (see `stats::SkewGate`).
pub fn run_fio_gated(
    job: &FioJob,
    target: &mut dyn BlockTarget,
    gate: &crate::stats::SkewGate,
    idx: usize,
) -> Result<Recorder, String> {
    let r = run_fio_inner(job, target, Some((gate, idx)));
    gate.finish(idx);
    r
}

fn run_fio_inner(
    job: &FioJob,
    target: &mut dyn BlockTarget,
    gate: Option<(&crate::stats::SkewGate, usize)>,
) -> Result<Recorder, String> {
    let mut rec = Recorder::new(target.now_ns());
    let mut rng = XorShift::new(job.seed);
    let sectors_per_bs = (job.bs / labstor_sim::SECTOR_SIZE) as u64;
    let span_blocks = (job.span_bytes / job.bs as u64).max(1);
    let mut seq_cursor = 0u64;
    let payload: Vec<u8> = (0..job.bs).map(|i| (i % 251) as u8).collect();

    let mut issued = 0usize;
    while issued < job.ops || target.in_flight() > 0 {
        // Fill the window.
        while issued < job.ops && target.in_flight() < job.iodepth.max(1) {
            let block = if job.mode.is_random() {
                rng.next() % span_blocks
            } else {
                let b = seq_cursor;
                seq_cursor = (seq_cursor + 1) % span_blocks;
                b
            };
            let lba = block * sectors_per_bs;
            if job.mode.writes_this_op(rng.next()) {
                target.submit(lba, job.bs, Some(payload.clone()))?;
            } else {
                target.submit(lba, job.bs, None)?;
            }
            issued += 1;
        }
        target.kick()?;
        let latency = target.wait_one()?;
        rec.record(latency, job.bs);
        if let Some((gate, idx)) = gate {
            gate.sync(idx, target.now_ns());
        }
    }
    rec.end_vt = target.now_ns();
    Ok(rec)
}

// ---------------------------------------------------------------------
// Targets
// ---------------------------------------------------------------------

/// A kernel I/O engine as a fio target.
pub struct EngineTarget {
    engine: RawEngine,
    ctx: Ctx,
    core: usize,
    class: IoClass,
    /// (token, submit_vt) FIFO; io_uring tokens appear at kick time.
    outstanding: VecDeque<(labstor_kernel::engines::Token, u64)>,
    /// Submit-times of staged-but-unkicked SQEs (io_uring).
    staged_vts: Vec<u64>,
    next_tag: u64,
    label: String,
}

impl EngineTarget {
    /// Wrap an engine for fio.
    pub fn new(engine: RawEngine, core: usize, class: IoClass) -> Self {
        let label = engine.kind().label().to_string();
        EngineTarget {
            engine,
            ctx: Ctx::new(),
            core,
            class,
            outstanding: VecDeque::new(),
            staged_vts: Vec::new(),
            next_tag: 1,
            label,
        }
    }

    /// Read access to the clock.
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }
}

impl BlockTarget for EngineTarget {
    fn submit(&mut self, lba: u64, len: usize, data: Option<Vec<u8>>) -> Result<(), String> {
        self.next_tag += 1;
        let req = match data {
            Some(d) => IoRequest::write(lba, d, self.next_tag),
            None => IoRequest::read(lba, len, self.next_tag),
        };
        let vt = self.ctx.now();
        let token = self
            .engine
            .submit(&mut self.ctx, self.core, self.class, req)
            .map_err(|e| e.to_string())?;
        if self.engine.kind() == IoEngineKind::IoUring {
            self.staged_vts.push(vt);
        } else {
            self.outstanding.push_back((token, vt));
        }
        Ok(())
    }

    fn kick(&mut self) -> Result<(), String> {
        if self.engine.kind() == IoEngineKind::IoUring && !self.staged_vts.is_empty() {
            let tokens = self.engine.kick(&mut self.ctx).map_err(|e| e.to_string())?;
            for (token, vt) in tokens.into_iter().zip(self.staged_vts.drain(..)) {
                self.outstanding.push_back((token, vt));
            }
        }
        Ok(())
    }

    fn wait_one(&mut self) -> Result<u64, String> {
        let (token, vt) = self
            .outstanding
            .pop_front()
            .ok_or_else(|| "nothing in flight".to_string())?;
        let c = self.engine.wait(&mut self.ctx, token);
        if let Err(e) = c.result {
            return Err(e.to_string());
        }
        Ok(self.ctx.now().saturating_sub(vt))
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len() + self.staged_vts.len()
    }

    fn now_ns(&self) -> u64 {
        self.ctx.now()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// A LabStor stack as a fio target (block payloads straight into the
/// stack's entry vertex — driver-only stacks reproduce Fig. 6's LabStor
/// rows; scheduler stacks reproduce Fig. 8's Lab rows).
pub struct StackTarget {
    client: Client,
    stack: Arc<LabStack>,
    label: String,
}

impl StackTarget {
    /// Wrap a client + stack; `core` stamps requests for core-affine
    /// scheduling.
    pub fn new(mut client: Client, stack: Arc<LabStack>, core: usize, label: &str) -> Self {
        client.core = core;
        StackTarget {
            client,
            stack,
            label: label.to_string(),
        }
    }

    /// The wrapped client.
    pub fn client(&self) -> &Client {
        &self.client
    }
}

impl BlockTarget for StackTarget {
    fn submit(&mut self, lba: u64, len: usize, data: Option<Vec<u8>>) -> Result<(), String> {
        let payload = match data {
            Some(d) => Payload::Block(BlockOp::Write { lba, data: d }),
            None => Payload::Block(BlockOp::Read { lba, len }),
        };
        self.client
            .submit(&self.stack, payload)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    fn kick(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn wait_one(&mut self) -> Result<u64, String> {
        let (resp, latency) = self.client.reap_one().map_err(|e| e.to_string())?;
        if resp.payload.is_ok() {
            Ok(latency)
        } else {
            Err(format!("{:?}", resp.payload))
        }
    }

    fn in_flight(&self) -> usize {
        self.client.in_flight()
    }

    fn now_ns(&self) -> u64 {
        self.client.ctx.now()
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// PMEM through DAX as a fio target (byte-addressable, synchronous).
pub struct DaxTarget {
    dev: Arc<PmemDevice>,
    ctx: Ctx,
    /// Latency of the op performed at submit (DAX is synchronous).
    done: VecDeque<u64>,
}

impl DaxTarget {
    /// Wrap a PMEM device.
    pub fn new(dev: Arc<PmemDevice>) -> Self {
        DaxTarget {
            dev,
            ctx: Ctx::new(),
            done: VecDeque::new(),
        }
    }
}

impl BlockTarget for DaxTarget {
    fn submit(&mut self, lba: u64, len: usize, data: Option<Vec<u8>>) -> Result<(), String> {
        let offset = lba * labstor_sim::SECTOR_SIZE as u64;
        let t0 = self.ctx.now();
        match data {
            Some(d) => {
                self.dev
                    .store(&mut self.ctx, offset, &d)
                    .map_err(|e| e.to_string())?;
            }
            None => {
                let mut buf = vec![0u8; len];
                self.dev
                    .load(&mut self.ctx, offset, &mut buf)
                    .map_err(|e| e.to_string())?;
            }
        }
        self.done.push_back(self.ctx.now() - t0);
        Ok(())
    }

    fn kick(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn wait_one(&mut self) -> Result<u64, String> {
        self.done
            .pop_front()
            .ok_or_else(|| "nothing in flight".to_string())
    }

    fn in_flight(&self) -> usize {
        self.done.len()
    }

    fn now_ns(&self) -> u64 {
        self.ctx.now()
    }

    fn label(&self) -> String {
        "dax".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_kernel::BlockLayer;
    use labstor_sim::{DeviceKind, SimDevice};

    fn engine_target(kind: IoEngineKind) -> EngineTarget {
        let dev = SimDevice::preset(DeviceKind::Nvme);
        EngineTarget::new(
            RawEngine::new(kind, BlockLayer::new(dev)),
            0,
            IoClass::Latency,
        )
    }

    #[test]
    fn qd1_write_job_completes() {
        let mut t = engine_target(IoEngineKind::Posix);
        let rec = run_fio(&FioJob::rand_write_4k(50), &mut t).unwrap();
        assert_eq!(rec.ops(), 50);
        assert!(rec.mean_ns() > 0);
        assert!(
            rec.span_ns() >= 50 * 10_000,
            "50 NVMe writes take 500+ µs of virtual time"
        );
    }

    #[test]
    fn qd32_has_higher_throughput_than_qd1() {
        // A single submission queue maps to one device service chain
        // (queue-affine arbitration — see `labstor_sim::time::ChannelPool`),
        // so QD only overlaps *software* cost with media time. Spreading
        // the same QD32 across queues (as multi-queue apps do) is what
        // buys device parallelism.
        let job1 = FioJob {
            iodepth: 1,
            ..FioJob::rand_write_4k(200)
        };
        let job32 = FioJob {
            iodepth: 32,
            ..FioJob::rand_write_4k(200)
        };
        let mut t1 = engine_target(IoEngineKind::IoUring);
        let mut t32 = engine_target(IoEngineKind::IoUring);
        let r1 = run_fio(&job1, &mut t1).unwrap();
        let r32 = run_fio(&job32, &mut t32).unwrap();
        assert!(
            r32.ops_per_sec() > r1.ops_per_sec() * 1.1,
            "QD32 {} ops/s vs QD1 {} ops/s",
            r32.ops_per_sec(),
            r1.ops_per_sec()
        );
    }

    #[test]
    fn parallelism_comes_from_multiple_queues() {
        // Eight QD1 streams on eight different cores (→ eight hardware
        // queues) finish ~8x faster than eight sequential streams.
        let dev = SimDevice::preset(DeviceKind::Nvme);
        let layer = BlockLayer::new(dev);
        let mut spans = Vec::new();
        for core in 0..8 {
            let engine = RawEngine::new(IoEngineKind::IoUring, layer.clone());
            let mut t = EngineTarget::new(engine, core, IoClass::Latency);
            let r = run_fio(&FioJob::rand_write_4k(50), &mut t).unwrap();
            spans.push(r.span_ns());
        }
        let makespan = spans.iter().max().copied().unwrap();
        let serial: u64 = spans.iter().sum();
        assert!(
            makespan * 4 < serial,
            "queues overlap: makespan {makespan} serial {serial}"
        );
    }

    #[test]
    fn all_engines_complete_reads_and_writes() {
        for kind in IoEngineKind::all() {
            for mode in [RwMode::RandWrite, RwMode::SeqRead] {
                let mut t = engine_target(kind);
                let job = FioJob {
                    mode,
                    ..FioJob::rand_write_4k(20)
                };
                let rec = run_fio(&job, &mut t).unwrap();
                assert_eq!(rec.ops(), 20, "{} {:?}", kind.label(), mode);
            }
        }
    }

    #[test]
    fn dax_target_runs() {
        let mut t = DaxTarget::new(PmemDevice::preset());
        let job = FioJob {
            bs: 4096,
            ..FioJob::rand_write_4k(30)
        };
        let rec = run_fio(&job, &mut t).unwrap();
        assert_eq!(rec.ops(), 30);
        // PMEM 4 KB ≈ 1.2 µs: far faster than NVMe's 12 µs.
        assert!(rec.mean_ns() < 5_000, "mean {}", rec.mean_ns());
    }

    #[test]
    fn sequential_mode_wraps_span() {
        let mut t = engine_target(IoEngineKind::Posix);
        let job = FioJob {
            mode: RwMode::SeqWrite,
            bs: 4096,
            ops: 10,
            iodepth: 1,
            span_bytes: 4 * 4096, // wraps after 4 ops
            seed: 3,
        };
        let rec = run_fio(&job, &mut t).unwrap();
        assert_eq!(rec.ops(), 10);
    }

    #[test]
    fn mixed_mode_interleaves_reads_and_writes() {
        let dev = SimDevice::preset(DeviceKind::Nvme);
        let layer = BlockLayer::new(dev.clone());
        let mut t = EngineTarget::new(
            RawEngine::new(IoEngineKind::Posix, layer),
            0,
            IoClass::Latency,
        );
        let job = FioJob {
            mode: RwMode::RandMix { read_pct: 70 },
            ..FioJob::rand_write_4k(300)
        };
        let rec = run_fio(&job, &mut t).unwrap();
        assert_eq!(rec.ops(), 300);
        let s = labstor_sim::BlockDevice::stats(dev.as_ref()).snapshot();
        // ~70/30 split within generous tolerance.
        assert!(
            s.reads > 150 && s.writes > 40,
            "reads {} writes {}",
            s.reads,
            s.writes
        );
        assert_eq!(s.reads + s.writes, 300);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift::new(42);
        let mut b = XorShift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }
}
