//! An OrangeFS-like parallel filesystem and the VPIC/BD-CATS workloads
//! that run over it (Fig. 9a).
//!
//! The paper's deployment: "We use OrangeFS with the metadata server
//! deployed separately from the data servers and with a stripe size of
//! 64KB." The metadata server's *local* I/O stack is what the experiment
//! varies (kernel filesystems vs LabFS LabStacks); the data servers are
//! raw devices of varying kinds.
//!
//! [`Pfs`] reproduces that topology: one metadata server (any
//! [`FsTarget`] — its timeline is the MDS's own CPU, so clients queue at
//! it exactly like RPCs at a busy server) plus `N` data servers striping
//! file contents 64 KB at a time.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use labstor_sim::{BlockDevice, Ctx, SimDevice};

use crate::stats::Recorder;
use crate::targets::FsTarget;

/// PFS deployment parameters.
#[derive(Debug, Clone)]
pub struct PfsConfig {
    /// Stripe size in bytes (the paper uses 64 KB).
    pub stripe: usize,
    /// One-way network latency per RPC in ns (HPC interconnect class).
    pub net_ns: u64,
    /// Network bandwidth in bytes/sec.
    pub net_bw_bps: u64,
}

impl Default for PfsConfig {
    fn default() -> Self {
        PfsConfig {
            stripe: 64 * 1024,
            net_ns: 8_000,
            net_bw_bps: 10_000_000_000,
        }
    }
}

/// The parallel filesystem.
pub struct Pfs {
    /// The metadata server's request-service threads ("trove" threads in
    /// OrangeFS terms), each a timeline over the *same* local stack —
    /// concurrent RPCs contend on the stack's own locks, which is exactly
    /// what the experiment varies.
    mds_pool: Vec<Mutex<Box<dyn FsTarget + Send>>>,
    mds_rr: std::sync::atomic::AtomicUsize,
    mds_ops: std::sync::atomic::AtomicU64,
    data: Vec<Arc<SimDevice>>,
    cfg: PfsConfig,
    /// Per-data-server allocation cursors (sectors).
    cursors: Vec<Mutex<u64>>,
    /// (file, stripe index) → (server, lba).
    layout: Mutex<HashMap<(String, u64), (usize, u64)>>,
}

impl Pfs {
    /// Build a PFS over a pool of metadata-service targets (all views of
    /// one local stack) and data-server devices.
    pub fn new(
        mds_pool: Vec<Box<dyn FsTarget + Send>>,
        data: Vec<Arc<SimDevice>>,
        cfg: PfsConfig,
    ) -> Self {
        assert!(!mds_pool.is_empty(), "need at least one MDS service thread");
        Pfs {
            mds_pool: mds_pool.into_iter().map(Mutex::new).collect(),
            mds_rr: std::sync::atomic::AtomicUsize::new(0),
            mds_ops: std::sync::atomic::AtomicU64::new(0),
            cursors: (0..data.len()).map(|_| Mutex::new(0)).collect(),
            data,
            cfg,
            layout: Mutex::new(HashMap::new()),
        }
    }

    /// Metadata operations served so far.
    pub fn mds_ops(&self) -> u64 {
        self.mds_ops.load(std::sync::atomic::Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// One metadata RPC: the client's clock travels to the MDS, one of the
    /// MDS service threads performs a real operation on the shared local
    /// stack, the reply travels back. MDS saturation emerges because each
    /// service thread's timeline only moves forward and the local stack's
    /// locks are shared across threads.
    fn meta_rpc(
        &self,
        client: &mut Ctx,
        op: impl FnOnce(&mut dyn FsTarget) -> Result<(), String>,
    ) -> Result<(), String> {
        let idx = self.mds_rr.fetch_add(1, std::sync::atomic::Ordering::Relaxed) // relaxed-ok: fresh-id allocation; atomicity alone suffices
            % self.mds_pool.len();
        let mut mds = self.mds_pool[idx].lock();
        self.mds_ops
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let arrive = client.now() + self.cfg.net_ns;
        mds.sync_to(arrive);
        op(mds.as_mut())?;
        let done = mds.now_ns();
        client.idle_until(done + self.cfg.net_ns);
        Ok(())
    }

    /// Register a file's stripe `idx` with the MDS (create-on-first-touch
    /// semantics: a dfile metadata object is created on the MDS's local
    /// stack, a pure metadata operation).
    fn ensure_stripe(
        &self,
        client: &mut Ctx,
        file: &str,
        idx: u64,
    ) -> Result<(usize, u64), String> {
        if let Some(&loc) = self.layout.lock().get(&(file.to_string(), idx)) {
            // Known stripe: still a lookup RPC (stripe location query).
            let path = format!("{}_s{idx}", meta_path(file));
            self.meta_rpc(client, move |mds| {
                let _ = mds.stat_size(&path)?;
                Ok(())
            })?;
            return Ok(loc);
        }
        // New stripe: create the dfile metadata object.
        self.meta_rpc(client, |mds| {
            let fd = mds.open(&format!("{}_s{idx}", meta_path(file)), true, false)?;
            mds.close(fd)?;
            Ok(())
        })?;
        // Allocate the stripe on a data server (round robin by stripe).
        let server = (idx as usize) % self.data.len();
        let sectors = (self.cfg.stripe / labstor_sim::SECTOR_SIZE) as u64;
        let lba = {
            let mut cur = self.cursors[server].lock();
            let lba = *cur;
            *cur += sectors;
            lba
        };
        self.layout
            .lock()
            .insert((file.to_string(), idx), (server, lba));
        Ok((server, lba))
    }

    /// Write `data` to `file` at `offset` from a client with clock `ctx`.
    pub fn write(&self, ctx: &mut Ctx, file: &str, offset: u64, data: &[u8]) -> Result<(), String> {
        let stripe = self.cfg.stripe as u64;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let idx = abs / stripe;
            let within = (abs % stripe) as usize;
            let n = (self.cfg.stripe - within).min(data.len() - pos);
            let (server, lba) = self.ensure_stripe(ctx, file, idx)?;
            // Network transfer to the data server.
            ctx.advance(self.cfg.net_ns + (n as u64 * 1_000_000_000) / self.cfg.net_bw_bps);
            // Sector-granular device write with read-modify-write at the
            // unaligned edges so neighbouring bytes survive.
            let sector = labstor_sim::SECTOR_SIZE;
            let inner = within % sector;
            let sect_off = (within / sector) as u64;
            let aligned_len = (inner + n).next_multiple_of(sector);
            let mut buf = vec![0u8; aligned_len];
            if inner != 0 || !(inner + n).is_multiple_of(sector) {
                self.data[server]
                    .read(ctx, lba + sect_off, &mut buf)
                    .map_err(|e| e.to_string())?;
            }
            buf[inner..inner + n].copy_from_slice(&data[pos..pos + n]);
            self.data[server]
                .write(ctx, lba + sect_off, &buf)
                .map_err(|e| e.to_string())?;
            pos += n;
        }
        Ok(())
    }

    /// Read `len` bytes of `file` at `offset`.
    pub fn read(
        &self,
        ctx: &mut Ctx,
        file: &str,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, String> {
        let stripe = self.cfg.stripe as u64;
        let mut out = vec![0u8; len];
        let mut pos = 0usize;
        while pos < len {
            let abs = offset + pos as u64;
            let idx = abs / stripe;
            let within = (abs % stripe) as usize;
            let n = (self.cfg.stripe - within).min(len - pos);
            let loc = self.layout.lock().get(&(file.to_string(), idx)).copied();
            // Stripe lookup RPC.
            let path = format!("{}_s{idx}", meta_path(file));
            self.meta_rpc(ctx, move |mds| {
                let _ = mds.stat_size(&path);
                Ok(())
            })?;
            if let Some((server, lba)) = loc {
                let aligned_len = (within % labstor_sim::SECTOR_SIZE + n)
                    .next_multiple_of(labstor_sim::SECTOR_SIZE);
                let sect_off = (within / labstor_sim::SECTOR_SIZE) as u64;
                let mut buf = vec![0u8; aligned_len];
                self.data[server]
                    .read(ctx, lba + sect_off, &mut buf)
                    .map_err(|e| e.to_string())?;
                let inner = within % labstor_sim::SECTOR_SIZE;
                out[pos..pos + n].copy_from_slice(&buf[inner..inner + n]);
                ctx.advance(self.cfg.net_ns + (n as u64 * 1_000_000_000) / self.cfg.net_bw_bps);
            }
            pos += n;
        }
        Ok(out)
    }
}

fn meta_path(file: &str) -> String {
    format!("/meta_{}", file.replace('/', "_"))
}

// ---------------------------------------------------------------------
// VPIC and BD-CATS
// ---------------------------------------------------------------------

/// VPIC particle-writer configuration. The paper: 640 processes, 8M
/// particles each of 8 floats, 16 timesteps (165 GB total) — scaled here.
#[derive(Debug, Clone)]
pub struct VpicConfig {
    /// Simulated MPI processes.
    pub processes: usize,
    /// Particles per process.
    pub particles: usize,
    /// Timesteps.
    pub steps: usize,
}

impl VpicConfig {
    /// Bytes one process writes per step (8 f32 per particle).
    pub fn bytes_per_step(&self) -> usize {
        self.particles * 8 * 4
    }
}

/// Run the VPIC write phase: every process writes its particle buffer to
/// its own file each timestep. Processes interleave step by step so
/// device and MDS contention overlap like a real parallel job.
pub fn run_vpic(pfs: &Pfs, cfg: &VpicConfig) -> Result<Recorder, String> {
    let mut clocks: Vec<Ctx> = (0..cfg.processes).map(|_| Ctx::new()).collect();
    let bytes = cfg.bytes_per_step();
    let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
    let mut rec = Recorder::new(0);
    for step in 0..cfg.steps {
        for (p, ctx) in clocks.iter_mut().enumerate() {
            let t0 = ctx.now();
            pfs.write(
                ctx,
                &format!("particle_p{p}"),
                (step * bytes) as u64,
                &payload,
            )?;
            rec.record(ctx.now() - t0, bytes);
        }
    }
    rec.end_vt = clocks.iter().map(|c| c.now()).max().unwrap_or(0);
    Ok(rec)
}

/// Run the BD-CATS read phase: every process reads the particle data
/// back (the clustering input scan).
pub fn run_bdcats(pfs: &Pfs, cfg: &VpicConfig) -> Result<Recorder, String> {
    let mut clocks: Vec<Ctx> = (0..cfg.processes).map(|_| Ctx::new()).collect();
    let bytes = cfg.bytes_per_step();
    let mut rec = Recorder::new(0);
    for step in 0..cfg.steps {
        for (p, ctx) in clocks.iter_mut().enumerate() {
            let t0 = ctx.now();
            let data = pfs.read(ctx, &format!("particle_p{p}"), (step * bytes) as u64, bytes)?;
            if data.len() != bytes {
                return Err(format!("short read: {} of {bytes}", data.len()));
            }
            rec.record(ctx.now() - t0, bytes);
        }
    }
    rec.end_vt = clocks.iter().map(|c| c.now()).max().unwrap_or(0);
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::targets::KernelFsTarget;
    use labstor_kernel::fs::{FsProfile, KernelFs};
    use labstor_kernel::vfs::Vfs;
    use labstor_kernel::BlockLayer;
    use labstor_sim::DeviceKind;

    fn pfs(n_data: usize) -> Pfs {
        let vfs = Vfs::new();
        let mdev = SimDevice::preset(DeviceKind::Nvme);
        vfs.mount(
            "/m",
            KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(mdev), 8 << 20),
        );
        let pool: Vec<Box<dyn FsTarget + Send>> = (0..4)
            .map(|i| {
                Box::new(KernelFsTarget::new(
                    vfs.clone(),
                    "/m",
                    "ext4",
                    i + 1,
                    i as usize,
                )) as Box<dyn FsTarget + Send>
            })
            .collect();
        let data = (0..n_data)
            .map(|_| SimDevice::preset(DeviceKind::Nvme))
            .collect();
        Pfs::new(pool, data, PfsConfig::default())
    }

    #[test]
    fn write_read_roundtrip_across_stripes() {
        let p = pfs(4);
        let mut ctx = Ctx::new();
        // 200 KB spans four 64 KB stripes.
        let data: Vec<u8> = (0..200_000).map(|i| (i % 249) as u8).collect();
        p.write(&mut ctx, "f", 0, &data).unwrap();
        let back = p.read(&mut ctx, "f", 0, data.len()).unwrap();
        assert_eq!(back, data);
        assert!(p.mds_ops() > 4, "stripe registrations hit the MDS");
    }

    #[test]
    fn stripes_spread_across_servers() {
        let p = pfs(4);
        let mut ctx = Ctx::new();
        let data = vec![7u8; 4 * 64 * 1024];
        p.write(&mut ctx, "f", 0, &data).unwrap();
        let writes: Vec<u64> = p.data.iter().map(|d| d.stats().snapshot().writes).collect();
        assert!(
            writes.iter().all(|&w| w == 1),
            "one stripe per server: {writes:?}"
        );
    }

    #[test]
    fn vpic_then_bdcats() {
        let p = pfs(2);
        let cfg = VpicConfig {
            processes: 3,
            particles: 4096,
            steps: 2,
        };
        let w = run_vpic(&p, &cfg).unwrap();
        assert_eq!(w.ops(), 6);
        assert_eq!(w.bytes, (3 * 2 * cfg.bytes_per_step()) as u64);
        let r = run_bdcats(&p, &cfg).unwrap();
        assert_eq!(r.ops(), 6);
        assert!(r.span_ns() > 0);
    }

    #[test]
    fn mds_serializes_concurrent_clients() {
        // Two clients doing metadata-heavy writes at the same virtual
        // time: the second one's RPCs queue behind the first's at the MDS.
        let p = pfs(1);
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        let data = vec![1u8; 64 * 1024];
        p.write(&mut a, "fa", 0, &data).unwrap();
        let solo = a.now();
        p.write(&mut b, "fb", 0, &data).unwrap();
        assert!(b.now() >= solo / 2, "MDS timeline pushed b past a's usage");
    }
}
