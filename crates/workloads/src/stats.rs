//! Virtual-time measurement: latency recorders, percentile math, and the
//! skew gate that keeps concurrently-driven actors causally close.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bounds the virtual-clock divergence of a group of actor threads.
///
/// Virtual time advances per actor; on a host with fewer cores than
/// actors, one thread can race ahead in *real* time and reserve shared
/// resources (device channels, locks) far in its virtual future, which a
/// lagging actor then observes as spurious queueing. A `SkewGate` is the
/// conservative-PDES windowing fix: each actor publishes its clock and
/// yields while it is more than `max_skew_ns` ahead of the slowest live
/// actor.
pub struct SkewGate {
    clocks: Vec<AtomicU64>,
    max_skew_ns: u64,
}

impl SkewGate {
    /// Gate for `n` actors with the given window.
    pub fn new(n: usize, max_skew_ns: u64) -> Self {
        SkewGate {
            clocks: (0..n).map(|_| AtomicU64::new(0)).collect(),
            max_skew_ns,
        }
    }

    /// Publish actor `idx`'s clock and wait (yielding) until the slowest
    /// live actor is within the window.
    pub fn sync(&self, idx: usize, now_ns: u64) {
        self.clocks[idx].store(now_ns, Ordering::Release);
        loop {
            let min = self
                .clocks
                .iter()
                .map(|c| c.load(Ordering::Acquire))
                .min()
                .unwrap_or(0);
            if now_ns <= min.saturating_add(self.max_skew_ns) {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Mark actor `idx` finished so it no longer holds others back.
    pub fn finish(&self, idx: usize) {
        self.clocks[idx].store(u64::MAX, Ordering::Release);
    }
}

/// Collects per-operation virtual latencies and the workload's virtual
/// time span; computes the aggregates the paper's figures report.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    latencies: Vec<u64>,
    /// Virtual time the workload started.
    pub start_vt: u64,
    /// Virtual time the workload finished.
    pub end_vt: u64,
    /// Bytes moved.
    pub bytes: u64,
}

impl Recorder {
    /// Empty recorder starting at `start_vt`.
    pub fn new(start_vt: u64) -> Self {
        Recorder {
            latencies: Vec::new(),
            start_vt,
            end_vt: start_vt,
            bytes: 0,
        }
    }

    /// Record one operation.
    pub fn record(&mut self, latency_ns: u64, bytes: usize) {
        self.latencies.push(latency_ns);
        self.bytes += bytes as u64;
    }

    /// Operations recorded.
    pub fn ops(&self) -> u64 {
        self.latencies.len() as u64
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Workload span in virtual ns.
    pub fn span_ns(&self) -> u64 {
        self.end_vt.saturating_sub(self.start_vt).max(1)
    }

    /// Operations per second over the virtual span.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops() as f64 * 1e9 / self.span_ns() as f64
    }

    /// Bandwidth in MB/s over the virtual span.
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes as f64 * 1e9 / self.span_ns() as f64 / 1e6
    }

    /// Mean latency in ns.
    pub fn mean_ns(&self) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        (self.latencies.iter().map(|&l| l as u128).sum::<u128>() / self.latencies.len() as u128)
            as u64
    }

    /// Latency percentile (`p` in [0, 100]).
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Merge multiple per-thread recorders: latencies concatenate, the
    /// span covers the earliest start to the latest end, bytes add up.
    pub fn merge(recorders: impl IntoIterator<Item = Recorder>) -> Recorder {
        let mut out = Recorder {
            start_vt: u64::MAX,
            ..Default::default()
        };
        for r in recorders {
            out.start_vt = out.start_vt.min(r.start_vt);
            out.end_vt = out.end_vt.max(r.end_vt);
            out.bytes += r.bytes;
            out.latencies.extend(r.latencies);
        }
        if out.start_vt == u64::MAX {
            out.start_vt = 0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_compute() {
        let mut r = Recorder::new(0);
        for l in [100, 200, 300, 400] {
            r.record(l, 1024);
        }
        r.end_vt = 1_000_000_000; // one virtual second
        assert_eq!(r.ops(), 4);
        assert_eq!(r.mean_ns(), 250);
        assert!((r.ops_per_sec() - 4.0).abs() < 1e-9);
        assert!((r.mb_per_sec() - 4096.0 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        let mut r = Recorder::new(0);
        for l in 1..=100u64 {
            r.record(l * 10, 0);
        }
        assert_eq!(r.percentile_ns(50.0), 510); // rank rounds up at .5
        assert_eq!(r.percentile_ns(99.0), 990);
        assert_eq!(r.percentile_ns(100.0), 1000);
        assert_eq!(r.percentile_ns(0.0), 10);
    }

    #[test]
    fn empty_is_safe() {
        let r = Recorder::new(5);
        assert_eq!(r.mean_ns(), 0);
        assert_eq!(r.percentile_ns(99.0), 0);
        assert_eq!(r.span_ns(), 1);
    }

    #[test]
    fn skew_gate_blocks_until_peers_catch_up() {
        let gate = std::sync::Arc::new(SkewGate::new(2, 100));
        let g = gate.clone();
        let t = std::thread::spawn(move || {
            // Actor 1 races to 1000; must wait until actor 0 passes 900.
            g.sync(1, 1000);
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(!t.is_finished(), "actor 1 must be gated");
        gate.sync(0, 950);
        assert!(t.join().unwrap());
    }

    #[test]
    fn skew_gate_finish_releases_peers() {
        let gate = std::sync::Arc::new(SkewGate::new(2, 10));
        let g = gate.clone();
        let t = std::thread::spawn(move || {
            g.sync(1, 5_000);
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        gate.finish(0);
        t.join().unwrap();
    }

    #[test]
    fn merge_spans_and_latencies() {
        let mut a = Recorder::new(100);
        a.record(10, 1);
        a.end_vt = 200;
        let mut b = Recorder::new(50);
        b.record(20, 2);
        b.end_vt = 400;
        let m = Recorder::merge([a, b]);
        assert_eq!(m.start_vt, 50);
        assert_eq!(m.end_vt, 400);
        assert_eq!(m.ops(), 2);
        assert_eq!(m.bytes, 3);
        assert_eq!(m.span_ns(), 350);
    }
}
