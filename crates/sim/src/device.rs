//! The RAM-backed simulated block device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{DeviceError, FaultConfig};
use crate::model::DeviceModel;
use crate::queue::{Completion, HwQueue, IoOp, IoRequest, PendingIo};
use crate::stats::DeviceStats;
use crate::time::{ChannelPool, Ctx};
use crate::SECTOR_SIZE;

/// Sectors per lazily-allocated backing chunk (128 KB chunks).
const CHUNK_SECTORS: u64 = 256;
const CHUNK_BYTES: usize = CHUNK_SECTORS as usize * SECTOR_SIZE;

/// Object-safe interface to a block device, implemented by [`SimDevice`].
///
/// Kept minimal on purpose: higher layers (the simulated kernel block layer,
/// Driver LabMods) build their submission paths on these primitives.
pub trait BlockDevice: Send + Sync {
    /// The device's performance model.
    fn model(&self) -> &DeviceModel;
    /// Cumulative statistics.
    fn stats(&self) -> &DeviceStats;
    /// Submit a command to hardware queue `qid` at virtual time `at`,
    /// without waiting for it.
    fn submit_at(&self, qid: usize, req: IoRequest, at: u64) -> Result<(), DeviceError>;
    /// Reap up to `max` completions from queue `qid` that are due at or
    /// before virtual time `now`.
    fn poll(&self, qid: usize, now: u64, max: usize) -> Vec<Completion>;
    /// Virtual deadline of the oldest in-flight command on `qid`, if any.
    fn next_due(&self, qid: usize) -> Option<u64>;
    /// Synchronously read `buf.len()` bytes at `lba`, advancing the
    /// caller's clock to completion. Returns modeled service ns.
    fn read(&self, ctx: &mut Ctx, lba: u64, buf: &mut [u8]) -> Result<u64, DeviceError>;
    /// Synchronously write `buf` at `lba`, advancing the caller's clock to
    /// completion. Returns modeled service ns.
    fn write(&self, ctx: &mut Ctx, lba: u64, buf: &[u8]) -> Result<u64, DeviceError>;
}

/// A simulated storage device: sparse RAM-backed media plus the timing
/// model described in [`crate::model`].
///
/// # Timing
///
/// Each command reserves the internal *channel* that frees up earliest
/// ([`ChannelPool`]); its completion deadline is
/// `max(now, channel_free) + service`. Synchronous callers advance their
/// virtual clock to the deadline; asynchronous callers discover it via
/// [`BlockDevice::poll`]. Channel occupancy creates genuine queueing when
/// offered load exceeds the device's internal parallelism.
///
/// # Data visibility
///
/// Write payloads land in the backing store at submission. A read that is
/// submitted after a write but polled before the write's virtual deadline
/// can observe the new data "early" — the same window a real drive's
/// volatile write cache exposes, so higher layers must not rely on
/// completion order for durability (that is what flushes are for).
pub struct SimDevice {
    model: DeviceModel,
    stats: DeviceStats,
    faults: FaultConfig,
    /// Sparse backing store, one slot per 128 KB chunk.
    chunks: Vec<RwLock<Option<Box<[u8]>>>>,
    /// Internal channel pool (virtual-time reservations).
    channels: ChannelPool,
    /// Hardware submission/completion queue pairs.
    queues: Vec<HwQueue>,
    /// Head position for the seek model (sector after last access).
    head: AtomicU64,
}

impl SimDevice {
    /// Create a device from a model.
    pub fn new(model: DeviceModel) -> Arc<Self> {
        let n_chunks = model.capacity_sectors().div_ceil(CHUNK_SECTORS) as usize;
        Arc::new(SimDevice {
            chunks: (0..n_chunks).map(|_| RwLock::new(None)).collect(),
            channels: ChannelPool::new(model.channels),
            queues: (0..model.hw_queues.max(1))
                .map(|_| HwQueue::default())
                .collect(),
            head: AtomicU64::new(0),
            stats: DeviceStats::default(),
            faults: FaultConfig::default(),
            model,
        })
    }

    /// Create a device from a preset kind.
    pub fn preset(kind: crate::DeviceKind) -> Arc<Self> {
        Self::new(DeviceModel::preset(kind))
    }

    /// Fault injection controls.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    /// Number of hardware queues exposed.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Commands submitted but not yet reaped on queue `qid` (0 for an
    /// unknown queue id). Load-aware schedulers key off this.
    pub fn queue_depth(&self, qid: usize) -> usize {
        self.queues.get(qid).map(|q| q.depth()).unwrap_or(0)
    }

    /// Latest channel reservation end: the virtual makespan of all media
    /// work scheduled so far.
    pub fn media_makespan(&self) -> u64 {
        self.channels.makespan()
    }

    fn validate(&self, lba: u64, bytes: usize) -> Result<(), DeviceError> {
        if bytes == 0 || !bytes.is_multiple_of(SECTOR_SIZE) {
            return Err(DeviceError::BadTransfer { bytes });
        }
        let sectors = (bytes / SECTOR_SIZE) as u64;
        let cap = self.model.capacity_sectors();
        if lba + sectors > cap {
            return Err(DeviceError::OutOfRange {
                lba,
                sectors,
                capacity_sectors: cap,
            });
        }
        Ok(())
    }

    /// Compute the modeled service time and whether a seek was paid.
    fn service_ns(&self, write: bool, lba: u64, bytes: usize) -> (u64, bool) {
        let mut ns = self.model.transfer_ns(write, bytes);
        let mut seeked = false;
        if self.model.seek_ns > 0 {
            let end = lba + (bytes / SECTOR_SIZE) as u64;
            let prev = self.head.swap(end, Ordering::Relaxed); // relaxed-ok: seek-model bookkeeping for the simulated head position
            let dist = prev.abs_diff(lba);
            if dist > self.model.seek_threshold_sectors {
                ns += self.model.seek_ns;
                seeked = true;
            }
        }
        (ns, seeked)
    }

    /// Deliver an async completion, applying the drop/delay fault knobs.
    /// Dropping models a lost CQ entry: the media work already happened,
    /// the host just never hears; delaying slips the deadline, deferring
    /// everything behind it on the same in-order queue.
    fn deliver(
        &self,
        queue: &HwQueue,
        tag: u64,
        result: Result<Vec<u8>, DeviceError>,
        service_ns: u64,
        due: u64,
    ) {
        if self.faults.should_drop() {
            self.stats.record_dropped();
            return;
        }
        let due = due + self.faults.delay_for().unwrap_or(0);
        queue.push(PendingIo {
            due,
            completion: Completion {
                tag,
                result,
                service_ns,
                done_at: due,
            },
        });
    }

    /// Copy data to/from the sparse backing store. Unwritten chunks read
    /// as zeroes.
    fn transfer(&self, write: bool, lba: u64, buf_w: Option<&[u8]>, buf_r: Option<&mut [u8]>) {
        let bytes = buf_w
            .map(|b| b.len())
            .or(buf_r.as_ref().map(|b| b.len()))
            .unwrap_or(0);
        let mut off = lba as usize * SECTOR_SIZE;
        let mut done = 0usize;
        let mut rbuf = buf_r;
        while done < bytes {
            let chunk_idx = off / CHUNK_BYTES;
            let chunk_off = off % CHUNK_BYTES;
            let n = (CHUNK_BYTES - chunk_off).min(bytes - done);
            if write {
                let src = &buf_w.expect("write buffer")[done..done + n];
                let mut slot = self.chunks[chunk_idx].write(); // lock-class: sim.chunk
                let chunk = slot.get_or_insert_with(|| vec![0u8; CHUNK_BYTES].into_boxed_slice());
                chunk[chunk_off..chunk_off + n].copy_from_slice(src);
            } else {
                let dst = &mut rbuf.as_mut().expect("read buffer")[done..done + n];
                let slot = self.chunks[chunk_idx].read(); // lock-class: sim.chunk
                match slot.as_ref() {
                    Some(chunk) => dst.copy_from_slice(&chunk[chunk_off..chunk_off + n]),
                    None => dst.fill(0),
                }
            }
            off += n;
            done += n;
        }
    }
}

impl BlockDevice for SimDevice {
    fn model(&self) -> &DeviceModel {
        &self.model
    }

    fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    fn submit_at(&self, qid: usize, req: IoRequest, at: u64) -> Result<(), DeviceError> {
        let queue = self.queues.get(qid).ok_or(DeviceError::NoSuchQueue {
            qid,
            hw_queues: self.queues.len(),
        })?;
        // Power cut: from `crash_at` on the device is dead. The host's
        // driver observes this immediately, so the command fails with a
        // typed completion rather than hanging a poller.
        if let Some(cut) = self.faults.crash_at() {
            if at >= cut {
                self.stats.record_error();
                self.deliver(
                    queue,
                    req.tag,
                    Err(DeviceError::PoweredOff { crash_at: cut }),
                    0,
                    at,
                );
                return Ok(());
            }
        }
        if self.faults.should_fail() {
            // The media burns the command's modeled bus/transfer time
            // before reporting failure, so the error completion is
            // charged in virtual time like a success would be.
            let service_ns = match req.op {
                IoOp::Flush => 0,
                IoOp::Write => self.model.transfer_ns(true, req.data.len()),
                IoOp::Read => self.model.transfer_ns(false, req.len),
            };
            self.stats.record_error();
            let due = if service_ns > 0 {
                self.channels.acquire_affine(qid, at, service_ns).1
            } else {
                at
            };
            self.deliver(
                queue,
                req.tag,
                Err(DeviceError::MediaError { lba: req.lba }),
                service_ns,
                due,
            );
            return Ok(());
        }
        match req.op {
            IoOp::Flush => {
                // Barrier: due when everything queued ahead of it is due.
                let due = queue.last_due().unwrap_or(at).max(at);
                if let Some(cut) = self.faults.crash_at() {
                    if due > cut {
                        // Power died before the barrier resolved: no
                        // durability point was reached.
                        self.stats.record_error();
                        self.deliver(
                            queue,
                            req.tag,
                            Err(DeviceError::PoweredOff { crash_at: cut }),
                            0,
                            due,
                        );
                        return Ok(());
                    }
                }
                self.deliver(queue, req.tag, Ok(Vec::new()), 0, due);
            }
            IoOp::Write => {
                if let Err(e) = self.validate(req.lba, req.data.len()) {
                    self.stats.record_error();
                    self.deliver(queue, req.tag, Err(e), 0, at);
                    return Ok(());
                }
                let (ns, seeked) = self.service_ns(true, req.lba, req.data.len());
                let sectors = (req.data.len() / SECTOR_SIZE) as u64;
                // Queue-affine channel: one queue's backlog does not block
                // other queues' commands (NVMe round-robin SQ arbitration).
                let due = self.channels.acquire_affine(qid, at, ns).1;
                if let Some(cut) = self.faults.crash_at() {
                    if due > cut {
                        // The media work straddles the power cut: a seeded
                        // prefix of sectors lands, the rest is lost, and
                        // the host sees the typed error at the cut.
                        let landed = self.faults.crash_torn_sectors(req.lba, sectors);
                        if landed > 0 {
                            self.transfer(
                                true,
                                req.lba,
                                Some(&req.data[..landed as usize * SECTOR_SIZE]),
                                None,
                            );
                        }
                        self.stats.record_error();
                        self.deliver(
                            queue,
                            req.tag,
                            Err(DeviceError::PoweredOff { crash_at: cut }),
                            ns,
                            due.max(cut),
                        );
                        return Ok(());
                    }
                }
                if let Some(landed) = self.faults.torn_sectors(sectors) {
                    if landed > 0 {
                        self.transfer(
                            true,
                            req.lba,
                            Some(&req.data[..landed as usize * SECTOR_SIZE]),
                            None,
                        );
                    }
                    if self.faults.torn_silent() {
                        // Silent tear: acked as a full success — only a
                        // checksum on replay can tell the difference.
                        self.stats.record(true, req.data.len(), ns, seeked);
                        self.deliver(queue, req.tag, Ok(Vec::new()), ns, due);
                    } else {
                        self.stats.record_error();
                        self.deliver(
                            queue,
                            req.tag,
                            Err(DeviceError::TornWrite {
                                lba: req.lba,
                                sectors_written: landed,
                                sectors_requested: sectors,
                            }),
                            ns,
                            due,
                        );
                    }
                    return Ok(());
                }
                self.transfer(true, req.lba, Some(&req.data), None);
                self.stats.record(true, req.data.len(), ns, seeked);
                self.deliver(queue, req.tag, Ok(Vec::new()), ns, due);
            }
            IoOp::Read => {
                if let Err(e) = self.validate(req.lba, req.len) {
                    self.stats.record_error();
                    self.deliver(queue, req.tag, Err(e), 0, at);
                    return Ok(());
                }
                let (ns, seeked) = self.service_ns(false, req.lba, req.len);
                let due = self.channels.acquire_affine(qid, at, ns).1;
                if let Some(cut) = self.faults.crash_at() {
                    if due > cut {
                        // The device died before the data came back.
                        self.stats.record_error();
                        self.deliver(
                            queue,
                            req.tag,
                            Err(DeviceError::PoweredOff { crash_at: cut }),
                            ns,
                            due.max(cut),
                        );
                        return Ok(());
                    }
                }
                let mut buf = vec![0u8; req.len];
                self.transfer(false, req.lba, None, Some(&mut buf));
                self.stats.record(false, req.len, ns, seeked);
                self.deliver(queue, req.tag, Ok(buf), ns, due);
            }
        }
        Ok(())
    }

    fn poll(&self, qid: usize, now: u64, max: usize) -> Vec<Completion> {
        self.queues
            .get(qid)
            .map(|q| q.poll(now, max))
            .unwrap_or_default()
    }

    fn next_due(&self, qid: usize) -> Option<u64> {
        self.queues.get(qid).and_then(|q| q.next_due())
    }

    fn read(&self, ctx: &mut Ctx, lba: u64, buf: &mut [u8]) -> Result<u64, DeviceError> {
        self.validate(lba, buf.len())?;
        if let Some(cut) = self.faults.crash_at() {
            if ctx.now() >= cut {
                self.stats.record_error();
                return Err(DeviceError::PoweredOff { crash_at: cut });
            }
        }
        if self.faults.should_fail() {
            // Charge the bus time the failed command consumed.
            let ns = self.model.transfer_ns(false, buf.len());
            let (_, end) = self.channels.acquire(ctx.now(), ns); // lock-class: sim.channel
            self.stats.record_error();
            ctx.idle_until(end);
            return Err(DeviceError::MediaError { lba });
        }
        let (ns, seeked) = self.service_ns(false, lba, buf.len());
        let (_, end) = self.channels.acquire(ctx.now(), ns); // lock-class: sim.channel
        if let Some(cut) = self.faults.crash_at() {
            if end > cut {
                // The device died before the data came back.
                self.stats.record_error();
                ctx.idle_until(cut);
                return Err(DeviceError::PoweredOff { crash_at: cut });
            }
        }
        self.transfer(false, lba, None, Some(buf));
        self.stats.record(false, buf.len(), ns, seeked);
        ctx.idle_until(end);
        Ok(ns)
    }

    fn write(&self, ctx: &mut Ctx, lba: u64, buf: &[u8]) -> Result<u64, DeviceError> {
        self.validate(lba, buf.len())?;
        if let Some(cut) = self.faults.crash_at() {
            if ctx.now() >= cut {
                self.stats.record_error();
                return Err(DeviceError::PoweredOff { crash_at: cut });
            }
        }
        if self.faults.should_fail() {
            // Charge the bus time the failed command consumed.
            let ns = self.model.transfer_ns(true, buf.len());
            let (_, end) = self.channels.acquire(ctx.now(), ns); // lock-class: sim.channel
            self.stats.record_error();
            ctx.idle_until(end);
            return Err(DeviceError::MediaError { lba });
        }
        let (ns, seeked) = self.service_ns(true, lba, buf.len());
        let (_, end) = self.channels.acquire(ctx.now(), ns); // lock-class: sim.channel
        let sectors = (buf.len() / SECTOR_SIZE) as u64;
        if let Some(cut) = self.faults.crash_at() {
            if end > cut {
                // Power loss mid-write: a seeded prefix of sectors lands,
                // the rest is lost, and the caller never gets an ack.
                let landed = self.faults.crash_torn_sectors(lba, sectors);
                if landed > 0 {
                    self.transfer(true, lba, Some(&buf[..landed as usize * SECTOR_SIZE]), None);
                }
                self.stats.record_error();
                ctx.idle_until(cut);
                return Err(DeviceError::PoweredOff { crash_at: cut });
            }
        }
        if let Some(landed) = self.faults.torn_sectors(sectors) {
            if landed > 0 {
                self.transfer(true, lba, Some(&buf[..landed as usize * SECTOR_SIZE]), None);
            }
            ctx.idle_until(end);
            if self.faults.torn_silent() {
                // Silent tear: acked as a full success.
                self.stats.record(true, buf.len(), ns, seeked);
                return Ok(ns);
            }
            self.stats.record_error();
            return Err(DeviceError::TornWrite {
                lba,
                sectors_written: landed,
                sectors_requested: sectors,
            });
        }
        self.transfer(true, lba, Some(buf), None);
        self.stats.record(true, buf.len(), ns, seeked);
        ctx.idle_until(end);
        Ok(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DeviceKind, DeviceModel};

    fn dev(kind: DeviceKind) -> Arc<SimDevice> {
        SimDevice::new(DeviceModel::preset(kind))
    }

    #[test]
    fn write_then_read_roundtrip() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        let data: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        d.write(&mut ctx, 100, &data).unwrap();
        let mut out = vec![0u8; 4096];
        d.read(&mut ctx, 100, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_reads_as_zero() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        let mut out = vec![0xFFu8; 512];
        d.read(&mut ctx, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn cross_chunk_transfer() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        // Straddle the 256-sector chunk boundary.
        let data: Vec<u8> = (0..256 * 1024).map(|i| (i % 255) as u8).collect();
        d.write(&mut ctx, CHUNK_SECTORS - 8, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        d.read(&mut ctx, CHUNK_SECTORS - 8, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_range_rejected() {
        let d = dev(DeviceKind::Hdd);
        let cap = d.model().capacity_sectors();
        let mut buf = vec![0u8; 512];
        let mut ctx = Ctx::new();
        assert!(matches!(
            d.read(&mut ctx, cap, &mut buf),
            Err(DeviceError::OutOfRange { .. })
        ));
    }

    #[test]
    fn non_sector_transfer_rejected() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        assert!(matches!(
            d.write(&mut ctx, 0, &[1, 2, 3]),
            Err(DeviceError::BadTransfer { .. })
        ));
        let mut empty: [u8; 0] = [];
        assert!(matches!(
            d.read(&mut ctx, 0, &mut empty),
            Err(DeviceError::BadTransfer { .. })
        ));
    }

    #[test]
    fn sync_io_advances_clock_by_model_time() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        let buf = vec![0u8; 4096];
        let ns = d.write(&mut ctx, 0, &buf).unwrap();
        assert_eq!(ns, d.model().transfer_ns(true, 4096));
        assert_eq!(ctx.now(), ns);
    }

    #[test]
    fn async_submit_poll_roundtrip() {
        let d = dev(DeviceKind::Nvme);
        d.submit_at(0, IoRequest::write(0, vec![7u8; 512], 42), 0)
            .unwrap();
        let due = d.next_due(0).expect("one in flight");
        assert!(d.poll(0, due - 1, 16).is_empty(), "not due yet");
        let c = d.poll(0, due, 16);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].tag, 42);
        d.submit_at(0, IoRequest::read(0, 512, 43), due).unwrap();
        let due2 = d.next_due(0).unwrap();
        let c = d.poll(0, due2, 16);
        assert_eq!(c[0].result.as_ref().unwrap(), &vec![7u8; 512]);
    }

    #[test]
    fn bad_queue_id_rejected() {
        let d = dev(DeviceKind::SataSsd); // 1 hw queue
        assert!(matches!(
            d.submit_at(5, IoRequest::flush(0), 0),
            Err(DeviceError::NoSuchQueue { .. })
        ));
    }

    #[test]
    fn fault_injection_fails_op() {
        let d = dev(DeviceKind::Nvme);
        d.faults().set_period(1); // fail everything
        let mut buf = vec![0u8; 512];
        let mut ctx = Ctx::new();
        assert!(matches!(
            d.read(&mut ctx, 0, &mut buf),
            Err(DeviceError::MediaError { .. })
        ));
        assert_eq!(d.stats().snapshot().errors, 1);
    }

    #[test]
    fn media_errors_are_charged_in_virtual_time() {
        let d = dev(DeviceKind::Nvme);
        d.faults().set_period(1);
        // Sync: the failed read still advances the caller's clock.
        let mut ctx = Ctx::new();
        let mut buf = vec![0u8; 4096];
        assert!(matches!(
            d.read(&mut ctx, 0, &mut buf),
            Err(DeviceError::MediaError { .. })
        ));
        assert_eq!(ctx.now(), d.model().transfer_ns(false, 4096));
        // Async: the error completion's deadline reflects the bus time.
        d.submit_at(0, IoRequest::write(0, vec![0u8; 4096], 1), 0)
            .unwrap();
        let c = d.poll(0, u64::MAX, 16);
        assert_eq!(c.len(), 1);
        assert!(matches!(c[0].result, Err(DeviceError::MediaError { .. })));
        assert_eq!(c[0].service_ns, d.model().transfer_ns(true, 4096));
        assert!(c[0].done_at >= c[0].service_ns);
    }

    #[test]
    fn torn_write_lands_prefix_and_surfaces_typed_error() {
        let d = dev(DeviceKind::Nvme);
        d.faults().set_seed(7);
        d.faults().set_torn(1, false);
        let mut ctx = Ctx::new();
        let data = vec![0xABu8; 8 * 512];
        let landed = match d.write(&mut ctx, 0, &data) {
            Err(DeviceError::TornWrite {
                sectors_written,
                sectors_requested,
                ..
            }) => {
                assert_eq!(sectors_requested, 8);
                assert!(sectors_written < 8);
                sectors_written
            }
            other => panic!("expected TornWrite, got {other:?}"),
        };
        d.faults().set_torn(0, false);
        let mut out = vec![0u8; 8 * 512];
        d.read(&mut ctx, 0, &mut out).unwrap();
        let cut = landed as usize * 512;
        assert!(out[..cut].iter().all(|&b| b == 0xAB));
        assert!(out[cut..].iter().all(|&b| b == 0));
    }

    #[test]
    fn silent_torn_write_acks_success() {
        let d = dev(DeviceKind::Nvme);
        d.faults().set_seed(9);
        d.faults().set_torn(1, true);
        let mut ctx = Ctx::new();
        let data = vec![0xCDu8; 4 * 512];
        d.write(&mut ctx, 0, &data).expect("silent tear acks");
        d.faults().set_torn(0, false);
        let mut out = vec![0u8; 4 * 512];
        d.read(&mut ctx, 0, &mut out).unwrap();
        assert_ne!(out, data, "only a strict prefix landed");
    }

    #[test]
    fn power_cut_kills_later_commands_and_tears_straddlers() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        d.write(&mut ctx, 0, &[1u8; 512]).unwrap();
        // Cut power mid-way through the next write's service window.
        d.faults().set_crash_at(ctx.now() + 1);
        assert!(matches!(
            d.write(&mut ctx, 8, &[2u8; 8 * 512]),
            Err(DeviceError::PoweredOff { .. })
        ));
        // The device is now dead: even a zero-length-of-time op fails.
        let mut buf = vec![0u8; 512];
        assert!(matches!(
            d.read(&mut ctx, 0, &mut buf),
            Err(DeviceError::PoweredOff { .. })
        ));
        // Restore power: pre-cut data intact, straddler at most a prefix.
        d.faults().clear_crash();
        let mut ctx2 = Ctx::new();
        d.read(&mut ctx2, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![1u8; 512]);
        let mut out = vec![0u8; 8 * 512];
        d.read(&mut ctx2, 8, &mut out).unwrap();
        let landed = out.iter().take_while(|&&b| b == 2).count();
        assert!(landed < 8 * 512, "straddling write must not land fully");
        assert!(out[landed..].iter().all(|&b| b == 0));
    }

    #[test]
    fn dropped_completion_never_arrives() {
        let d = dev(DeviceKind::Nvme);
        d.faults().set_drop_period(1);
        d.submit_at(0, IoRequest::write(0, vec![3u8; 512], 1), 0)
            .unwrap();
        assert!(d.poll(0, u64::MAX, 16).is_empty());
        assert_eq!(d.stats().snapshot().dropped, 1);
        // The media work still happened.
        d.faults().set_drop_period(0);
        let mut ctx = Ctx::new();
        let mut buf = vec![0u8; 512];
        d.read(&mut ctx, 0, &mut buf).unwrap();
        assert_eq!(buf, vec![3u8; 512]);
    }

    #[test]
    fn delayed_completion_slips_deadline() {
        let d = dev(DeviceKind::Nvme);
        d.submit_at(0, IoRequest::write(0, vec![0u8; 512], 1), 0)
            .unwrap();
        let base = d.next_due(0).unwrap();
        let c = d.poll(0, base, 16);
        assert_eq!(c.len(), 1);
        d.faults().set_delay(1, 5_000);
        d.submit_at(0, IoRequest::write(0, vec![0u8; 512], 2), base)
            .unwrap();
        let delayed = d.next_due(0).unwrap();
        assert!(delayed >= base + 5_000);
    }

    #[test]
    fn hdd_pays_seek_on_random_access() {
        let d = dev(DeviceKind::Hdd);
        let buf = vec![0u8; 4096];
        let mut ctx = Ctx::new();
        d.write(&mut ctx, 0, &buf).unwrap();
        let before = ctx.now();
        d.write(&mut ctx, 500_000, &buf).unwrap(); // far away: seek
        let with_seek = ctx.now() - before;
        let before = ctx.now();
        d.write(&mut ctx, 500_008, &buf).unwrap(); // sequential: no seek
        let without_seek = ctx.now() - before;
        assert_eq!(d.stats().snapshot().seeks, 1);
        assert!(with_seek > without_seek + d.model().seek_ns / 2);
    }

    #[test]
    fn channels_limit_concurrency() {
        // A 1-channel device serializes two overlapping sync writes.
        let mut m = DeviceModel::preset(DeviceKind::Nvme);
        m.channels = 1;
        let d = SimDevice::new(m);
        let service = d.model().transfer_ns(true, 512);
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        d.write(&mut a, 0, &[0u8; 512]).unwrap();
        d.write(&mut b, 8, &[0u8; 512]).unwrap();
        assert_eq!(a.now(), service);
        assert_eq!(b.now(), 2 * service); // queued behind a
    }

    #[test]
    fn wide_device_parallelizes() {
        let mut m = DeviceModel::preset(DeviceKind::Nvme);
        m.channels = 4;
        let d = SimDevice::new(m);
        let service = d.model().transfer_ns(true, 512);
        let ends: Vec<u64> = (0..4)
            .map(|i| {
                let mut ctx = Ctx::new();
                d.write(&mut ctx, i * 8, &[0u8; 512]).unwrap();
                ctx.now()
            })
            .collect();
        assert!(
            ends.iter().all(|&e| e == service),
            "all four run in parallel: {ends:?}"
        );
    }

    #[test]
    fn flush_is_barrier() {
        let d = dev(DeviceKind::Nvme);
        d.submit_at(0, IoRequest::write(0, vec![0u8; 512], 1), 0)
            .unwrap();
        let write_due = d.next_due(0).unwrap();
        d.submit_at(0, IoRequest::flush(2), 0).unwrap();
        // Flush is due no earlier than the write.
        let c = d.poll(0, write_due, 16);
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].tag, c[1].tag), (1, 2));
        assert!(c[1].done_at >= c[0].done_at);
    }

    #[test]
    fn makespan_tracks_media_work() {
        let d = dev(DeviceKind::Nvme);
        let mut ctx = Ctx::new();
        d.write(&mut ctx, 0, &[0u8; 4096]).unwrap();
        assert_eq!(d.media_makespan(), ctx.now());
    }
}
