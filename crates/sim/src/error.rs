//! Device error types and deterministic fault injection.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors a simulated device can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Access beyond the device capacity.
    OutOfRange {
        /// Requested start LBA.
        lba: u64,
        /// Requested transfer length in sectors.
        sectors: u64,
        /// The device's capacity in sectors.
        capacity_sectors: u64,
    },
    /// Zero-length or non-sector-multiple transfer.
    BadTransfer {
        /// Offending transfer size in bytes.
        bytes: usize,
    },
    /// Injected media failure (see [`FaultConfig`]).
    MediaError {
        /// LBA of the failed command.
        lba: u64,
    },
    /// Submitted to a hardware queue id the device does not expose.
    NoSuchQueue {
        /// Requested queue id.
        qid: usize,
        /// Number of queues the device exposes.
        hw_queues: usize,
    },
    /// Byte-addressed access on a device that is not byte-addressable.
    NotByteAddressable,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfRange {
                lba,
                sectors,
                capacity_sectors,
            } => write!(
                f,
                "access at lba {lba} (+{sectors} sectors) beyond capacity {capacity_sectors}"
            ),
            DeviceError::BadTransfer { bytes } => {
                write!(
                    f,
                    "transfer of {bytes} bytes is not a positive sector multiple"
                )
            }
            DeviceError::MediaError { lba } => write!(f, "media error at lba {lba}"),
            DeviceError::NoSuchQueue { qid, hw_queues } => {
                write!(
                    f,
                    "hardware queue {qid} out of range (device has {hw_queues})"
                )
            }
            DeviceError::NotByteAddressable => {
                write!(f, "device is not byte-addressable")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Deterministic fault injection: fail every `period`-th command.
///
/// A period of 0 (the default) disables injection. Determinism keeps
/// failure-path tests reproducible without seeding RNGs through the device.
#[derive(Debug, Default)]
pub struct FaultConfig {
    period: AtomicU64,
    counter: AtomicU64,
}

impl FaultConfig {
    /// Fail every `period`-th command from now on (0 disables).
    pub fn set_period(&self, period: u64) {
        self.period.store(period, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.counter.store(0, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Returns true if the current command should fail.
    pub fn should_fail(&self) -> bool {
        let period = self.period.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        if period == 0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: fault-injection knob; guards no other memory
        n.is_multiple_of(period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let f = FaultConfig::default();
        assert!((0..100).all(|_| !f.should_fail()));
    }

    #[test]
    fn fails_every_nth() {
        let f = FaultConfig::default();
        f.set_period(3);
        let fails: Vec<bool> = (0..9).map(|_| f.should_fail()).collect();
        assert_eq!(
            fails,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn display_messages() {
        let e = DeviceError::OutOfRange {
            lba: 10,
            sectors: 2,
            capacity_sectors: 8,
        };
        assert!(e.to_string().contains("lba 10"));
        assert!(DeviceError::NotByteAddressable
            .to_string()
            .contains("byte-addressable"));
    }
}
