//! Device error types and deterministic fault injection.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Errors a simulated device can return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Access beyond the device capacity.
    OutOfRange {
        /// Requested start LBA.
        lba: u64,
        /// Requested transfer length in sectors.
        sectors: u64,
        /// The device's capacity in sectors.
        capacity_sectors: u64,
    },
    /// Zero-length or non-sector-multiple transfer.
    BadTransfer {
        /// Offending transfer size in bytes.
        bytes: usize,
    },
    /// Injected media failure (see [`FaultConfig`]).
    MediaError {
        /// LBA of the failed command.
        lba: u64,
    },
    /// Injected torn write: only a prefix of the requested sectors landed
    /// on media before the command failed (see [`FaultConfig::set_torn`]).
    TornWrite {
        /// LBA of the torn command.
        lba: u64,
        /// Sectors that actually reached media (a strict prefix).
        sectors_written: u64,
        /// Sectors the command asked for.
        sectors_requested: u64,
    },
    /// The device lost power at a configured virtual time
    /// (see [`FaultConfig::set_crash_at`]); the command did not complete.
    PoweredOff {
        /// Virtual time of the power cut.
        crash_at: u64,
    },
    /// Submitted to a hardware queue id the device does not expose.
    NoSuchQueue {
        /// Requested queue id.
        qid: usize,
        /// Number of queues the device exposes.
        hw_queues: usize,
    },
    /// Byte-addressed access on a device that is not byte-addressable.
    NotByteAddressable,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfRange {
                lba,
                sectors,
                capacity_sectors,
            } => write!(
                f,
                "access at lba {lba} (+{sectors} sectors) beyond capacity {capacity_sectors}"
            ),
            DeviceError::BadTransfer { bytes } => {
                write!(
                    f,
                    "transfer of {bytes} bytes is not a positive sector multiple"
                )
            }
            DeviceError::MediaError { lba } => write!(f, "media error at lba {lba}"),
            DeviceError::TornWrite {
                lba,
                sectors_written,
                sectors_requested,
            } => write!(
                f,
                "torn write at lba {lba}: {sectors_written}/{sectors_requested} sectors landed"
            ),
            DeviceError::PoweredOff { crash_at } => {
                write!(f, "device powered off at virtual time {crash_at}")
            }
            DeviceError::NoSuchQueue { qid, hw_queues } => {
                write!(
                    f,
                    "hardware queue {qid} out of range (device has {hw_queues})"
                )
            }
            DeviceError::NotByteAddressable => {
                write!(f, "device is not byte-addressable")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Deterministic fault injection.
///
/// Every knob is period-based ("fail every nth command") or a fixed
/// virtual-time point, and torn-write prefix lengths derive from a seeded
/// mix of a per-config counter — so a `(seed, knob settings)` pair replays
/// the exact same fault schedule. A period of 0 (the default) disables the
/// corresponding injection. All counters are independent so enabling one
/// fault class does not perturb another's schedule.
///
/// Fault classes:
/// - **Media errors** ([`set_period`](Self::set_period)): the command
///   fails wholesale with [`DeviceError::MediaError`]; no data moves.
/// - **Torn writes** ([`set_torn`](Self::set_torn)): a seeded strict
///   prefix of the write's sectors lands. Loud mode surfaces
///   [`DeviceError::TornWrite`]; silent mode acks success (the journal
///   CRC must catch it on replay).
/// - **Dropped completions** ([`set_drop_period`](Self::set_drop_period)):
///   the media work happens but the completion is never delivered — the
///   host-visible signature of a lost CQ entry.
/// - **Delayed completions** ([`set_delay`](Self::set_delay)): the
///   completion's deadline slips by a fixed amount, deferring everything
///   behind it on the same in-order queue and reordering it against other
///   queues.
/// - **Power cut** ([`set_crash_at`](Self::set_crash_at)): commands at or
///   after the cut fail with [`DeviceError::PoweredOff`]; a write
///   straddling the cut lands a seeded prefix (torn by power loss).
#[derive(Debug)]
pub struct FaultConfig {
    period: AtomicU64,
    counter: AtomicU64,
    seed: AtomicU64,
    torn_period: AtomicU64,
    torn_counter: AtomicU64,
    torn_silent: AtomicBool,
    drop_period: AtomicU64,
    drop_counter: AtomicU64,
    delay_period: AtomicU64,
    delay_counter: AtomicU64,
    delay_ns: AtomicU64,
    /// Virtual time of the power cut; `u64::MAX` means "never".
    crash_at: AtomicU64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            period: AtomicU64::new(0),
            counter: AtomicU64::new(0),
            seed: AtomicU64::new(0x9E3779B97F4A7C15),
            torn_period: AtomicU64::new(0),
            torn_counter: AtomicU64::new(0),
            torn_silent: AtomicBool::new(false),
            drop_period: AtomicU64::new(0),
            drop_counter: AtomicU64::new(0),
            delay_period: AtomicU64::new(0),
            delay_counter: AtomicU64::new(0),
            delay_ns: AtomicU64::new(0),
            crash_at: AtomicU64::new(u64::MAX),
        }
    }
}

/// xorshift64* finalizer: decorrelates sequential counters into prefix
/// lengths without pulling in an RNG crate.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultConfig {
    /// Fail every `period`-th command from now on (0 disables).
    pub fn set_period(&self, period: u64) {
        self.period.store(period, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.counter.store(0, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Returns true if the current command should fail.
    pub fn should_fail(&self) -> bool {
        let period = self.period.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        if period == 0 {
            return false;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: fault-injection knob; guards no other memory
        n.is_multiple_of(period)
    }

    /// Seed the torn-write prefix generator (also resets its counter so a
    /// fresh seed replays a fresh deterministic schedule).
    pub fn set_seed(&self, seed: u64) {
        // Avoid the all-zero xorshift fixed point.
        self.seed.store(seed | 1, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.torn_counter.store(0, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Tear every `period`-th write (0 disables): only a seeded strict
    /// prefix of its sectors lands. With `silent` the device still acks
    /// success; otherwise it completes with [`DeviceError::TornWrite`].
    pub fn set_torn(&self, period: u64, silent: bool) {
        self.torn_period.store(period, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.torn_counter.store(0, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.torn_silent.store(silent, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// If the current write should tear, returns how many of its
    /// `sectors` land (a strict prefix, possibly zero). `None` means the
    /// write proceeds in full.
    pub fn torn_sectors(&self, sectors: u64) -> Option<u64> {
        let period = self.torn_period.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        if period == 0 || sectors == 0 {
            return None;
        }
        let n = self.torn_counter.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: fault-injection knob; guards no other memory
        if !n.is_multiple_of(period) {
            return None;
        }
        let seed = self.seed.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        Some(mix64(seed ^ n) % sectors)
    }

    /// Whether torn writes are silent (acked as success).
    pub fn torn_silent(&self) -> bool {
        self.torn_silent.load(Ordering::Relaxed) // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Drop every `period`-th async completion (0 disables): the media
    /// work happens, the host never hears about it.
    pub fn set_drop_period(&self, period: u64) {
        self.drop_period.store(period, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.drop_counter.store(0, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Returns true if the current async completion should be dropped.
    pub fn should_drop(&self) -> bool {
        let period = self.drop_period.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        if period == 0 {
            return false;
        }
        let n = self.drop_counter.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: fault-injection knob; guards no other memory
        n.is_multiple_of(period)
    }

    /// Delay every `period`-th async completion by `ns` virtual
    /// nanoseconds (0 disables).
    pub fn set_delay(&self, period: u64, ns: u64) {
        self.delay_period.store(period, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.delay_counter.store(0, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        self.delay_ns.store(ns, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Extra deadline slip for the current async completion, if any.
    pub fn delay_for(&self) -> Option<u64> {
        let period = self.delay_period.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        if period == 0 {
            return None;
        }
        let n = self.delay_counter.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: fault-injection knob; guards no other memory
        if n.is_multiple_of(period) {
            Some(self.delay_ns.load(Ordering::Relaxed)) // relaxed-ok: fault-injection knob; guards no other memory
        } else {
            None
        }
    }

    /// Cut power at virtual time `at`: commands submitted at or after it
    /// fail with [`DeviceError::PoweredOff`], and a write whose media work
    /// straddles it lands only a seeded prefix of sectors.
    pub fn set_crash_at(&self, at: u64) {
        self.crash_at.store(at, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// Restore power (recovery I/O after a crash runs fault-free).
    pub fn clear_crash(&self) {
        self.crash_at.store(u64::MAX, Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
    }

    /// The configured power-cut time, if one is armed.
    pub fn crash_at(&self) -> Option<u64> {
        let at = self.crash_at.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        (at != u64::MAX).then_some(at)
    }

    /// Seeded prefix length for a write torn by power loss: how many of
    /// its `sectors` land, keyed on the write's start LBA so distinct
    /// straddling writes tear differently.
    pub fn crash_torn_sectors(&self, lba: u64, sectors: u64) -> u64 {
        if sectors == 0 {
            return 0;
        }
        let seed = self.seed.load(Ordering::Relaxed); // relaxed-ok: fault-injection knob; guards no other memory
        mix64(seed ^ lba.wrapping_mul(0xA24B_AED4_963E_E407)) % sectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        let f = FaultConfig::default();
        assert!((0..100).all(|_| !f.should_fail()));
    }

    #[test]
    fn fails_every_nth() {
        let f = FaultConfig::default();
        f.set_period(3);
        let fails: Vec<bool> = (0..9).map(|_| f.should_fail()).collect();
        assert_eq!(
            fails,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn torn_writes_are_seeded_and_periodic() {
        let f = FaultConfig::default();
        f.set_seed(42);
        f.set_torn(2, false);
        let a: Vec<Option<u64>> = (0..6).map(|_| f.torn_sectors(8)).collect();
        assert!(a[0].is_none() && a[2].is_none() && a[4].is_none());
        for t in [a[1], a[3], a[5]] {
            assert!(t.expect("every 2nd tears") < 8, "strict prefix");
        }
        // Same seed replays the same schedule.
        let g = FaultConfig::default();
        g.set_seed(42);
        g.set_torn(2, false);
        let b: Vec<Option<u64>> = (0..6).map(|_| g.torn_sectors(8)).collect();
        assert_eq!(a, b);
        // A different seed gives a different schedule (for this seed pair).
        let h = FaultConfig::default();
        h.set_seed(45);
        h.set_torn(2, false);
        let c: Vec<Option<u64>> = (0..6).map(|_| h.torn_sectors(8)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn drop_and_delay_fire_every_nth() {
        let f = FaultConfig::default();
        f.set_drop_period(3);
        let drops: Vec<bool> = (0..6).map(|_| f.should_drop()).collect();
        assert_eq!(drops, vec![false, false, true, false, false, true]);
        f.set_delay(2, 500);
        let delays: Vec<Option<u64>> = (0..4).map(|_| f.delay_for()).collect();
        assert_eq!(delays, vec![None, Some(500), None, Some(500)]);
    }

    #[test]
    fn crash_point_arm_and_clear() {
        let f = FaultConfig::default();
        assert_eq!(f.crash_at(), None);
        f.set_crash_at(1_000);
        assert_eq!(f.crash_at(), Some(1_000));
        let torn = f.crash_torn_sectors(7, 16);
        assert!(torn < 16);
        assert_eq!(torn, f.crash_torn_sectors(7, 16), "lba-keyed, stable");
        f.clear_crash();
        assert_eq!(f.crash_at(), None);
    }

    #[test]
    fn display_messages() {
        let e = DeviceError::OutOfRange {
            lba: 10,
            sectors: 2,
            capacity_sectors: 8,
        };
        assert!(e.to_string().contains("lba 10"));
        assert!(DeviceError::NotByteAddressable
            .to_string()
            .contains("byte-addressable"));
    }
}
