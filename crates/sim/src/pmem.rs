//! Byte-addressable persistent-memory device (DAX substrate).
//!
//! The paper's PMEM experiments use bootloader-emulated persistent memory
//! accessed through DAX: the device is mapped into the application address
//! space and accessed with CPU loads/stores, bypassing all block I/O
//! conventions. [`PmemDevice`] reproduces that: byte-granular `load`/`store`
//! with a latency model of media access, no sector alignment, no queues.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::DeviceError;
use crate::model::DeviceModel;
use crate::stats::DeviceStats;
use crate::time::{ChannelPool, Ctx};

/// Bytes per lazily-allocated backing chunk.
const CHUNK_BYTES: usize = 128 * 1024;

/// A byte-addressable persistent-memory region.
pub struct PmemDevice {
    model: DeviceModel,
    stats: DeviceStats,
    channels: ChannelPool,
    chunks: Vec<RwLock<Option<Box<[u8]>>>>,
}

impl PmemDevice {
    /// Create a PMEM device. The model must be byte-addressable.
    pub fn new(model: DeviceModel) -> Result<Arc<Self>, DeviceError> {
        if !model.byte_addressable {
            return Err(DeviceError::NotByteAddressable);
        }
        let n_chunks = (model.capacity as usize).div_ceil(CHUNK_BYTES);
        Ok(Arc::new(PmemDevice {
            chunks: (0..n_chunks).map(|_| RwLock::new(None)).collect(),
            channels: ChannelPool::new(model.channels),
            stats: DeviceStats::default(),
            model,
        }))
    }

    /// Create a PMEM device with the default preset.
    pub fn preset() -> Arc<Self> {
        Self::new(DeviceModel::preset(crate::DeviceKind::Pmem)).expect("preset is byte-addressable")
    }

    /// The device's performance model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Capacity in bytes.
    pub fn len(&self) -> u64 {
        self.model.capacity
    }

    /// True if the region has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.model.capacity == 0
    }

    fn validate(&self, offset: u64, bytes: usize) -> Result<(), DeviceError> {
        if offset + bytes as u64 > self.model.capacity {
            return Err(DeviceError::OutOfRange {
                lba: offset / crate::SECTOR_SIZE as u64,
                sectors: bytes.div_ceil(crate::SECTOR_SIZE) as u64,
                capacity_sectors: self.model.capacity_sectors(),
            });
        }
        Ok(())
    }

    /// CPU-store `buf` at byte `offset`. Returns modeled ns.
    ///
    /// The store is a real memcpy; the modeled cost (media write latency +
    /// bandwidth) advances the caller's clock as *busy* time — a CPU
    /// stalled on `clwb`/`ntstore` drains is not idle.
    pub fn store(&self, ctx: &mut Ctx, offset: u64, buf: &[u8]) -> Result<u64, DeviceError> {
        self.validate(offset, buf.len())?;
        self.copy(true, offset, Some(buf), None);
        let ns = self.model.transfer_ns(true, buf.len());
        let (_, end) = self.channels.acquire(ctx.now(), ns); // lock-class: sim.channel
        ctx.poll_until(end);
        self.stats.record(true, buf.len(), ns, false);
        Ok(ns)
    }

    /// CPU-load into `buf` from byte `offset`. Returns modeled ns.
    pub fn load(&self, ctx: &mut Ctx, offset: u64, buf: &mut [u8]) -> Result<u64, DeviceError> {
        self.validate(offset, buf.len())?;
        self.copy(false, offset, None, Some(buf));
        let ns = self.model.transfer_ns(false, buf.len());
        let (_, end) = self.channels.acquire(ctx.now(), ns); // lock-class: sim.channel
        ctx.poll_until(end);
        self.stats.record(false, buf.len(), ns, false);
        Ok(ns)
    }

    /// Persistence barrier (sfence + cacheline writeback drain): a small
    /// fixed cost.
    pub fn drain(&self, ctx: &mut Ctx) -> u64 {
        let ns = 100;
        ctx.advance(ns);
        ns
    }

    fn copy(&self, write: bool, offset: u64, src: Option<&[u8]>, dst: Option<&mut [u8]>) {
        let bytes = src
            .map(|b| b.len())
            .or(dst.as_ref().map(|b| b.len()))
            .unwrap_or(0);
        let mut off = offset as usize;
        let mut done = 0usize;
        let mut dst = dst;
        while done < bytes {
            let idx = off / CHUNK_BYTES;
            let coff = off % CHUNK_BYTES;
            let n = (CHUNK_BYTES - coff).min(bytes - done);
            if write {
                let s = &src.expect("store source")[done..done + n];
                let mut slot = self.chunks[idx].write(); // lock-class: sim.chunk
                let chunk = slot.get_or_insert_with(|| vec![0u8; CHUNK_BYTES].into_boxed_slice());
                chunk[coff..coff + n].copy_from_slice(s);
            } else {
                let d = &mut dst.as_mut().expect("load destination")[done..done + n];
                let slot = self.chunks[idx].read(); // lock-class: sim.chunk
                match slot.as_ref() {
                    Some(chunk) => d.copy_from_slice(&chunk[coff..coff + n]),
                    None => d.fill(0),
                }
            }
            off += n;
            done += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_roundtrip_unaligned() {
        let p = PmemDevice::preset();
        let mut ctx = Ctx::new();
        let data = b"hello persistent world";
        p.store(&mut ctx, 12_345, data).unwrap();
        let mut out = vec![0u8; data.len()];
        p.load(&mut ctx, 12_345, &mut out).unwrap();
        assert_eq!(&out, data);
    }

    #[test]
    fn cross_chunk_store() {
        let p = PmemDevice::preset();
        let mut ctx = Ctx::new();
        let data: Vec<u8> = (0..300_000).map(|i| (i % 253) as u8).collect();
        let off = CHUNK_BYTES as u64 - 17;
        p.store(&mut ctx, off, &data).unwrap();
        let mut out = vec![0u8; data.len()];
        p.load(&mut ctx, off, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn out_of_range_rejected() {
        let p = PmemDevice::preset();
        let cap = p.len();
        let mut ctx = Ctx::new();
        assert!(p.store(&mut ctx, cap - 2, &[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn non_byte_addressable_model_rejected() {
        let m = DeviceModel::preset(crate::DeviceKind::Nvme);
        assert!(matches!(
            PmemDevice::new(m),
            Err(DeviceError::NotByteAddressable)
        ));
    }

    #[test]
    fn accesses_advance_clock_as_busy() {
        let p = PmemDevice::preset();
        let mut ctx = Ctx::new();
        p.store(&mut ctx, 0, &[0u8; 64]).unwrap();
        assert!(ctx.now() > 0);
        assert_eq!(ctx.busy(), ctx.now(), "pmem access is CPU-busy");
        let s = p.stats().snapshot();
        assert_eq!(s.writes, 1);
    }

    #[test]
    fn drain_has_fixed_cost() {
        let p = PmemDevice::preset();
        let mut ctx = Ctx::new();
        let ns = p.drain(&mut ctx);
        assert_eq!(ctx.now(), ns);
    }
}
