#![warn(missing_docs)]

//! # labstor-sim — simulated storage hardware substrate
//!
//! The LabStor paper evaluates on a Chameleon Cloud "storage hierarchy"
//! node with a real Intel P3700 NVMe drive, a SATA SSD, a SATA HDD and
//! kernel-emulated persistent memory. None of that hardware is available
//! here, so this crate provides the closest synthetic equivalent: RAM-backed
//! devices with *calibrated service-time models*.
//!
//! Two properties make the substitution faithful (see `DESIGN.md` §2):
//!
//! 1. **Data is really stored.** Every write lands in (sparsely allocated)
//!    memory and every read returns it, so filesystems and key-value stores
//!    built on top are testable end-to-end for correctness, crash
//!    consistency, and recovery.
//! 2. **Time is modeled in virtual nanoseconds.** Each operation computes a
//!    model service time (base latency + size/bandwidth + positioning
//!    penalties) and reserves one of a bounded pool of internal channels on
//!    the virtual timeline ([`time::ChannelPool`]). Saturation, queueing and
//!    device-parallelism effects emerge from the reservation algebra and are
//!    therefore *host-independent*: the same shapes reproduce on a laptop or
//!    a single-core CI box (see `crates/sim/src/time.rs` for the rationale).

pub mod device;
pub mod error;
pub mod model;
pub mod pmem;
pub mod queue;
pub mod stats;
pub mod time;

pub use device::{BlockDevice, SimDevice};
pub use error::{DeviceError, FaultConfig};
pub use model::{DeviceKind, DeviceModel};
pub use pmem::PmemDevice;
pub use queue::{Completion, HwQueue, IoOp, IoRequest};
pub use stats::DeviceStats;
pub use time::{ChannelPool, Ctx, Resource, Watermark};

/// Size of a device sector in bytes. All LBAs are sector-granular.
pub const SECTOR_SIZE: usize = 512;
