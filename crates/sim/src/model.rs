//! Device performance models calibrated against the paper's testbed.
//!
//! The paper's Chameleon "storage hierarchy" node carries an Intel P3700
//! NVMe (2 TB), an Intel SSDSC2BX01 SATA SSD (1.6 TB), a Seagate
//! ST600MP0005 SAS HDD (600 GB) and bootloader-emulated PMEM. The presets
//! below use the published datasheet characteristics of those parts.

/// Which class of storage hardware a model describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Rotational disk: single actuator, seek + rotational penalties.
    Hdd,
    /// SATA/SAS solid-state drive: AHCI single submission queue.
    SataSsd,
    /// NVMe SSD: many hardware queues, deep internal parallelism, pollable.
    Nvme,
    /// Persistent memory: byte-addressable, accessed with loads/stores.
    Pmem,
}

impl DeviceKind {
    /// Short lowercase label used in reports and bench output.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Hdd => "hdd",
            DeviceKind::SataSsd => "ssd",
            DeviceKind::Nvme => "nvme",
            DeviceKind::Pmem => "pmem",
        }
    }
}

/// Performance/shape parameters of a simulated device.
///
/// Service time of one transfer is
/// `base_latency + bytes / bandwidth (+ positioning penalty on HDDs)`,
/// executed on one of `channels` internal channels (concurrent transfers
/// beyond that queue up), submitted through one of `hw_queues` hardware
/// queues.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// Hardware class.
    pub kind: DeviceKind,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Fixed per-command read latency in ns (controller + media access).
    pub read_latency_ns: u64,
    /// Fixed per-command write latency in ns.
    pub write_latency_ns: u64,
    /// Sustained read bandwidth in bytes per second.
    pub read_bw_bps: u64,
    /// Sustained write bandwidth in bytes per second.
    pub write_bw_bps: u64,
    /// Internal parallelism: number of transfers serviced concurrently.
    pub channels: usize,
    /// Number of hardware submission/completion queue pairs exposed.
    pub hw_queues: usize,
    /// Average positioning penalty (seek + rotation) in ns for a
    /// non-contiguous access. Zero for solid-state devices.
    pub seek_ns: u64,
    /// LBA distance (in sectors) above which an access pays `seek_ns`.
    pub seek_threshold_sectors: u64,
    /// True if completions are discovered by polling (NVMe, PMEM); false
    /// if the device raises a (simulated) interrupt.
    pub poll_completions: bool,
    /// True if the device is byte-addressable via load/store (PMEM).
    pub byte_addressable: bool,
}

impl DeviceModel {
    /// Intel P3700-class NVMe SSD (the paper's NVMe device).
    ///
    /// Datasheet: ~20 µs read / ~20 µs write 4K latency class; we use
    /// 10 µs write base + bandwidth so a 4 KB write services in ~11.5 µs,
    /// matching Fig. 4a where "I/O" is ~66% of a ~17 µs total.
    pub fn nvme_p3700(capacity: u64) -> Self {
        DeviceModel {
            kind: DeviceKind::Nvme,
            capacity,
            read_latency_ns: 8_000,
            write_latency_ns: 10_000,
            read_bw_bps: 2_800_000_000,
            write_bw_bps: 1_900_000_000,
            channels: 16,
            hw_queues: 32,
            seek_ns: 0,
            seek_threshold_sectors: 0,
            poll_completions: true,
            byte_addressable: false,
        }
    }

    /// Intel SSDSC2BX01-class SATA SSD (the paper's SSD device).
    pub fn sata_ssd(capacity: u64) -> Self {
        DeviceModel {
            kind: DeviceKind::SataSsd,
            capacity,
            read_latency_ns: 55_000,
            write_latency_ns: 60_000,
            read_bw_bps: 550_000_000,
            write_bw_bps: 500_000_000,
            channels: 8,
            hw_queues: 1,
            seek_ns: 0,
            seek_threshold_sectors: 0,
            poll_completions: false,
            byte_addressable: false,
        }
    }

    /// Seagate ST600MP0005-class 15K SAS HDD (the paper's HDD device).
    ///
    /// 15 000 RPM → 2 ms average rotational latency; ~2.5 ms average seek.
    pub fn hdd_15k(capacity: u64) -> Self {
        DeviceModel {
            kind: DeviceKind::Hdd,
            capacity,
            read_latency_ns: 100_000,
            write_latency_ns: 100_000,
            read_bw_bps: 250_000_000,
            write_bw_bps: 230_000_000,
            channels: 1,
            hw_queues: 1,
            seek_ns: 4_500_000,
            seek_threshold_sectors: 256,
            poll_completions: false,
            byte_addressable: false,
        }
    }

    /// Bootloader-emulated persistent memory (DRAM-backed, as in the paper).
    pub fn pmem(capacity: u64) -> Self {
        DeviceModel {
            kind: DeviceKind::Pmem,
            capacity,
            read_latency_ns: 300,
            write_latency_ns: 500,
            read_bw_bps: 8_000_000_000,
            write_bw_bps: 6_000_000_000,
            channels: 8,
            hw_queues: 1,
            seek_ns: 0,
            seek_threshold_sectors: 0,
            poll_completions: true,
            byte_addressable: true,
        }
    }

    /// Preset for a device kind with a default lab-scale capacity
    /// (big enough for every experiment, small enough to stay sparse).
    pub fn preset(kind: DeviceKind) -> Self {
        // Capacities are the paper's devices scaled down 1000x; data is
        // sparse so this only bounds LBA ranges.
        match kind {
            DeviceKind::Nvme => Self::nvme_p3700(2_000_000_000),
            DeviceKind::SataSsd => Self::sata_ssd(1_600_000_000),
            DeviceKind::Hdd => Self::hdd_15k(600_000_000),
            DeviceKind::Pmem => Self::pmem(1_000_000_000),
        }
    }

    /// Model service time in ns for a transfer of `bytes`, ignoring
    /// positioning penalties (those depend on head position — see
    /// [`crate::SimDevice`]).
    pub fn transfer_ns(&self, write: bool, bytes: usize) -> u64 {
        let (lat, bw) = if write {
            (self.write_latency_ns, self.write_bw_bps)
        } else {
            (self.read_latency_ns, self.read_bw_bps)
        };
        lat + (bytes as u64).saturating_mul(1_000_000_000) / bw.max(1)
    }

    /// Capacity in 512-byte sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.capacity / crate::SECTOR_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_shapes() {
        let nvme = DeviceModel::preset(DeviceKind::Nvme);
        let ssd = DeviceModel::preset(DeviceKind::SataSsd);
        let hdd = DeviceModel::preset(DeviceKind::Hdd);
        let pmem = DeviceModel::preset(DeviceKind::Pmem);
        // Latency ordering: pmem < nvme < ssd < hdd.
        assert!(pmem.write_latency_ns < nvme.write_latency_ns);
        assert!(nvme.write_latency_ns < ssd.write_latency_ns);
        assert!(ssd.write_latency_ns < hdd.write_latency_ns + hdd.seek_ns);
        // Only the HDD seeks; only PMEM is byte-addressable.
        assert!(hdd.seek_ns > 0 && nvme.seek_ns == 0);
        assert!(pmem.byte_addressable && !nvme.byte_addressable);
        // NVMe is multi-queue, SATA is single-queue.
        assert!(nvme.hw_queues > 1 && ssd.hw_queues == 1);
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let m = DeviceModel::preset(DeviceKind::Nvme);
        let t4k = m.transfer_ns(true, 4096);
        let t128k = m.transfer_ns(true, 128 * 1024);
        assert!(t128k > t4k);
        // The size-dependent component should dominate at 128 KB.
        assert!(t128k - m.write_latency_ns > (t4k - m.write_latency_ns) * 20);
    }

    #[test]
    fn read_faster_than_write_on_nvme() {
        let m = DeviceModel::preset(DeviceKind::Nvme);
        assert!(m.transfer_ns(false, 4096) < m.transfer_ns(true, 4096));
    }

    #[test]
    fn capacity_sectors_round() {
        let m = DeviceModel::nvme_p3700(1024 * 1024);
        assert_eq!(m.capacity_sectors(), 2048);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DeviceKind::Nvme.label(), "nvme");
        assert_eq!(DeviceKind::Hdd.label(), "hdd");
        assert_eq!(DeviceKind::SataSsd.label(), "ssd");
        assert_eq!(DeviceKind::Pmem.label(), "pmem");
    }
}
