//! Lock-free per-device statistics counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative device statistics, updated with relaxed atomics on the hot
/// path and read coherently enough for reporting (individual counters are
/// exact; cross-counter snapshots are approximate, which is fine for the
/// throughput/latency aggregates the harnesses report).
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Completed read commands.
    pub reads: AtomicU64,
    /// Completed write commands.
    pub writes: AtomicU64,
    /// Bytes read from media.
    pub bytes_read: AtomicU64,
    /// Bytes written to media.
    pub bytes_written: AtomicU64,
    /// Total modeled service time spent on media, in ns.
    pub busy_ns: AtomicU64,
    /// Accesses that paid a positioning (seek) penalty.
    pub seeks: AtomicU64,
    /// Commands that failed (fault injection or out-of-range).
    pub errors: AtomicU64,
    /// Async completions swallowed by fault injection (never delivered).
    pub dropped: AtomicU64,
}

/// A point-in-time copy of [`DeviceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed read commands.
    pub reads: u64,
    /// Completed write commands.
    pub writes: u64,
    /// Bytes read from media.
    pub bytes_read: u64,
    /// Bytes written to media.
    pub bytes_written: u64,
    /// Total modeled media service time in ns.
    pub busy_ns: u64,
    /// Accesses that paid a positioning penalty.
    pub seeks: u64,
    /// Failed commands.
    pub errors: u64,
    /// Async completions swallowed by fault injection.
    pub dropped: u64,
}

impl DeviceStats {
    /// Record a completed command.
    pub fn record(&self, write: bool, bytes: usize, service_ns: u64, seeked: bool) {
        if write {
            self.writes.fetch_add(1, Ordering::Relaxed);
            self.bytes_written
                .fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
        }
        self.busy_ns.fetch_add(service_ns, Ordering::Relaxed);
        if seeked {
            self.seeks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a failed command.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an async completion dropped by fault injection.
    pub fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current counter values.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            busy_ns: self.busy_ns.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.busy_ns.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.errors.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total completed commands.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = DeviceStats::default();
        s.record(true, 4096, 1000, false);
        s.record(false, 512, 500, true);
        s.record_error();
        let snap = s.snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.bytes_written, 4096);
        assert_eq!(snap.bytes_read, 512);
        assert_eq!(snap.busy_ns, 1500);
        assert_eq!(snap.seeks, 1);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.ops(), 2);
        assert_eq!(snap.bytes(), 4608);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = DeviceStats::default();
        s.record(true, 1, 1, true);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = std::sync::Arc::new(DeviceStats::default());
        let mut handles = vec![];
        for _ in 0..8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.record(true, 1, 1, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().writes, 8000);
    }
}
