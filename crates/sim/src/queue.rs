//! Hardware submission/completion queues for simulated devices.
//!
//! A [`HwQueue`] mirrors an NVMe queue pair: commands are *submitted* and
//! their completions are later *polled*. Each submitted command carries a
//! virtual-time deadline computed by the device's channel model; `poll`
//! surfaces completions whose deadline has passed on the caller's
//! timeline. The device genuinely works "in parallel" with the CPU: a
//! submitting actor's clock does not advance while the command is in
//! flight.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::error::DeviceError;

/// Kind of I/O command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Read `len` bytes starting at `lba`.
    Read,
    /// Write the request payload starting at `lba`.
    Write,
    /// Barrier: completes when all previously submitted commands on the
    /// same queue have completed.
    Flush,
}

/// A block I/O command addressed to a device hardware queue.
#[derive(Debug, Clone)]
pub struct IoRequest {
    /// Command kind.
    pub op: IoOp,
    /// Starting logical block address (in 512-byte sectors).
    pub lba: u64,
    /// Transfer length in bytes (sector multiple). For writes this must
    /// equal `data.len()`.
    pub len: usize,
    /// Payload for writes; empty for reads and flushes.
    pub data: Vec<u8>,
    /// Caller-chosen tag returned in the matching [`Completion`].
    pub tag: u64,
}

impl IoRequest {
    /// Build a read request.
    pub fn read(lba: u64, len: usize, tag: u64) -> Self {
        IoRequest {
            op: IoOp::Read,
            lba,
            len,
            data: Vec::new(),
            tag,
        }
    }

    /// Build a write request.
    pub fn write(lba: u64, data: Vec<u8>, tag: u64) -> Self {
        let len = data.len();
        IoRequest {
            op: IoOp::Write,
            lba,
            len,
            data,
            tag,
        }
    }

    /// Build a flush barrier.
    pub fn flush(tag: u64) -> Self {
        IoRequest {
            op: IoOp::Flush,
            lba: 0,
            len: 0,
            data: Vec::new(),
            tag,
        }
    }
}

/// Result of a completed command.
#[derive(Debug)]
pub struct Completion {
    /// Tag of the originating [`IoRequest`].
    pub tag: u64,
    /// Read data (empty for writes/flushes) or the failure.
    pub result: Result<Vec<u8>, DeviceError>,
    /// Modeled media service time in ns.
    pub service_ns: u64,
    /// Virtual time at which the command completed.
    pub done_at: u64,
}

impl Completion {
    /// True if the command succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// A command whose media work has been scheduled and which becomes
/// visible to `poll` once the caller's virtual clock reaches `due`.
pub(crate) struct PendingIo {
    pub due: u64,
    pub completion: Completion,
}

/// One hardware submission/completion queue pair.
///
/// The mutex maps to per-queue hardware serialization: contention on one
/// `HwQueue` models doorbell/CQ contention on one NVMe queue pair, which is
/// exactly why real multi-queue drivers give each core its own pair.
#[derive(Default)]
pub struct HwQueue {
    pending: Mutex<VecDeque<PendingIo>>,
}

impl HwQueue {
    pub(crate) fn push(&self, io: PendingIo) {
        self.pending.lock().push_back(io); // lock-class: sim.queue
    }

    /// Number of commands submitted but not yet reaped.
    pub fn depth(&self) -> usize {
        self.pending.lock().len() // lock-class: sim.queue
    }

    /// Reap up to `max` completions due at or before virtual time `now`.
    ///
    /// Completions are reaped in submission order per queue (like an NVMe
    /// completion queue): a due entry behind a not-yet-due entry waits,
    /// which models in-order CQ consumption on one queue pair.
    pub fn poll(&self, now: u64, max: usize) -> Vec<Completion> {
        let mut out = Vec::new();
        let mut q = self.pending.lock(); // lock-class: sim.queue
        while out.len() < max {
            match q.front() {
                Some(p) if p.due <= now => {
                    out.push(q.pop_front().expect("front checked").completion);
                }
                _ => break,
            }
        }
        out
    }

    /// Virtual time at which the *next* (oldest) pending command completes.
    /// A poller can `poll_until` this to model spin-polling for it.
    pub fn next_due(&self) -> Option<u64> {
        self.pending.lock().front().map(|p| p.due) // lock-class: sim.queue
    }

    /// The latest deadline currently queued (used to implement flush
    /// barriers). `None` when the queue is empty.
    pub(crate) fn last_due(&self) -> Option<u64> {
        self.pending.lock().iter().map(|p| p.due).max() // lock-class: sim.queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(tag: u64, due: u64) -> PendingIo {
        PendingIo {
            due,
            completion: Completion {
                tag,
                result: Ok(Vec::new()),
                service_ns: 0,
                done_at: due,
            },
        }
    }

    #[test]
    fn poll_respects_deadlines() {
        let q = HwQueue::default();
        q.push(done(1, 100));
        q.push(done(2, 200));
        let c = q.poll(150, 16);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].tag, 1);
        assert_eq!(q.depth(), 1);
        assert_eq!(q.next_due(), Some(200));
    }

    #[test]
    fn poll_is_in_order() {
        let q = HwQueue::default();
        // First entry not due yet: the due one behind it must wait.
        q.push(done(1, 500));
        q.push(done(2, 100));
        assert!(q.poll(200, 16).is_empty());
        assert_eq!(q.poll(500, 16).len(), 2);
    }

    #[test]
    fn poll_honors_max() {
        let q = HwQueue::default();
        for t in 0..10 {
            q.push(done(t, 0));
        }
        assert_eq!(q.poll(0, 3).len(), 3);
        assert_eq!(q.depth(), 7);
    }

    #[test]
    fn request_constructors() {
        let r = IoRequest::write(8, vec![0u8; 1024], 7);
        assert_eq!(r.len, 1024);
        assert_eq!(r.op, IoOp::Write);
        let r = IoRequest::read(8, 512, 9);
        assert_eq!(r.op, IoOp::Read);
        assert!(r.data.is_empty());
        assert_eq!(IoRequest::flush(1).op, IoOp::Flush);
    }
}
