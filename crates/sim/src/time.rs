//! Virtual-time engine: per-actor clocks and contended-resource
//! reservations.
//!
//! ## Why virtual time
//!
//! The paper's evaluation sweeps up to 24 client threads and 16 Runtime
//! workers on a 48-hardware-thread testbed. Reproducing those *shapes* with
//! wall-clock measurement requires at least that much real parallelism;
//! this reproduction must run anywhere (including single-core CI boxes).
//! So the simulator separates **execution** from **time**:
//!
//! * Execution is real: clients, workers and devices are real threads and
//!   real lock-free data structures; requests genuinely flow through them.
//! * Time is virtual: every actor carries a [`Ctx`] clock (ns). Modeled
//!   costs — device service, syscalls, context switches, IPC hops —
//!   advance the clock arithmetically. Contended resources (device
//!   channels, kernel locks, worker CPUs) are [`Resource`]s reserved with
//!   an atomic compare-exchange max, so serialization, queueing and
//!   saturation emerge exactly as they would from contention on real
//!   hardware, independent of how many host cores execute the simulation.
//!
//! When actor A hands work to actor B (queue pair, completion), B's clock
//! merges forward to the handoff timestamp — the conservative causality
//! rule of a discrete-event simulation, applied at message boundaries.

use std::sync::atomic::{AtomicU64, Ordering};

/// A virtual-time actor context: one per client thread, worker, or other
/// timeline-owning entity.
///
/// Not `Clone`/`Sync` on purpose — a timeline has exactly one owner. Hand
/// timestamps (plain `u64` ns) across threads, not contexts.
#[derive(Debug)]
pub struct Ctx {
    now_ns: u64,
    /// Total ns this actor spent doing modeled work (vs idling forward).
    busy_ns: u64,
}

impl Ctx {
    /// A context starting at virtual time zero.
    pub fn new() -> Self {
        Ctx {
            now_ns: 0,
            busy_ns: 0,
        }
    }

    /// A context starting at `now_ns`.
    pub fn at(now_ns: u64) -> Self {
        Ctx { now_ns, busy_ns: 0 }
    }

    /// Current virtual time in ns.
    pub fn now(&self) -> u64 {
        self.now_ns
    }

    /// Total modeled busy time accumulated by this actor.
    pub fn busy(&self) -> u64 {
        self.busy_ns
    }

    /// Spend `ns` of modeled work (advances the clock and busy counter).
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
        self.busy_ns += ns;
    }

    /// Jump forward to `t` if it is in the future (idle wait — advances the
    /// clock, not the busy counter). Returns the idle ns skipped.
    pub fn idle_until(&mut self, t: u64) -> u64 {
        if t > self.now_ns {
            let idle = t - self.now_ns;
            self.now_ns = t;
            idle
        } else {
            0
        }
    }

    /// Busy-wait (polling) until `t`: advances the clock *and* the busy
    /// counter, like a polling driver burning its core. Returns ns spent.
    pub fn poll_until(&mut self, t: u64) -> u64 {
        if t > self.now_ns {
            let spent = t - self.now_ns;
            self.now_ns = t;
            self.busy_ns += spent;
            spent
        } else {
            0
        }
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Self::new()
    }
}

/// A serially-reusable resource on the virtual timeline: a device channel,
/// a kernel lock, a CPU core. Reservations linearize through an atomic.
#[derive(Debug, Default)]
pub struct Resource {
    free_at: AtomicU64,
}

impl Resource {
    /// New resource, free from time zero.
    pub fn new() -> Self {
        Resource {
            free_at: AtomicU64::new(0),
        }
    }

    /// Reserve the resource for `service_ns` starting no earlier than
    /// `at`. Returns `(start, end)` of the granted slot.
    ///
    /// This is the heart of contention modeling: if the resource is busy
    /// until `f > at`, the caller's slot starts at `f` — i.e. the caller
    /// queues, exactly like a thread spinning on a held lock or a command
    /// waiting for a device channel.
    pub fn acquire(&self, at: u64, service_ns: u64) -> (u64, u64) {
        let mut free = self.free_at.load(Ordering::Relaxed); // relaxed-ok: virtual-time arbitration; the counter is the only shared state
        loop {
            let start = free.max(at);
            let end = start + service_ns;
            match self
                .free_at
                .compare_exchange_weak(free, end, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return (start, end),
                Err(f) => free = f,
            }
        }
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at.load(Ordering::Relaxed) // relaxed-ok: virtual-time arbitration; the counter is the only shared state
    }

    /// Reset to free-from-zero (between experiment phases).
    pub fn reset(&self) {
        self.free_at.store(0, Ordering::Relaxed); // relaxed-ok: virtual-time arbitration; the counter is the only shared state
    }
}

/// A pool of interchangeable resources (e.g. a device's internal channels):
/// a reservation takes the channel that frees earliest.
#[derive(Debug)]
pub struct ChannelPool {
    channels: Vec<Resource>,
}

impl ChannelPool {
    /// Pool of `n` channels (minimum 1).
    pub fn new(n: usize) -> Self {
        ChannelPool {
            channels: (0..n.max(1)).map(|_| Resource::new()).collect(),
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True if the pool has no channels (never — minimum is 1).
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Reserve `service_ns` on the channel affine to `key` (e.g. a
    /// hardware-queue id). Queue-affine channels give each submission
    /// queue its own service chain — the arbitration that lets one
    /// queue's backlog not stall another queue's commands, as NVMe's
    /// round-robin SQ arbitration does.
    pub fn acquire_affine(&self, key: usize, at: u64, service_ns: u64) -> (u64, u64) {
        self.channels[key % self.channels.len()].acquire(at, service_ns) // lock-class: sim.channel
    }

    /// Reserve `service_ns` on the earliest-free channel from `at`.
    /// Returns `(start, end)`.
    pub fn acquire(&self, at: u64, service_ns: u64) -> (u64, u64) {
        loop {
            let (idx, free) = self
                .channels
                .iter()
                .enumerate()
                .map(|(i, c)| (i, c.free_at()))
                .min_by_key(|&(_, f)| f)
                .expect("pool has at least one channel");
            let start = free.max(at);
            let end = start + service_ns;
            if self.channels[idx]
                .free_at
                .compare_exchange(free, end, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return (start, end);
            }
        }
    }

    /// Earliest time any channel is free.
    pub fn earliest_free(&self) -> u64 {
        self.channels.iter().map(|c| c.free_at()).min().unwrap_or(0)
    }

    /// Latest reservation end across channels (makespan of work done).
    pub fn makespan(&self) -> u64 {
        self.channels.iter().map(|c| c.free_at()).max().unwrap_or(0)
    }

    /// Reset all channels.
    pub fn reset(&self) {
        for c in &self.channels {
            c.reset();
        }
    }
}

/// Monotonic high-watermark clock shared by an experiment: actors publish
/// their finish times so the harness can compute the virtual makespan.
#[derive(Debug, Default)]
pub struct Watermark {
    max_ns: AtomicU64,
}

impl Watermark {
    /// New watermark at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a timestamp; keeps the max.
    pub fn publish(&self, t: u64) {
        let mut cur = self.max_ns.load(Ordering::Relaxed); // relaxed-ok: watermark CAS; the counter is the only shared state
        while t > cur {
            match self.max_ns.compare_exchange_weak(cur, t, Ordering::Relaxed, Ordering::Relaxed) // relaxed-ok: watermark CAS; the counter is the only shared state
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Current high watermark.
    pub fn get(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed) // relaxed-ok: watermark CAS; the counter is the only shared state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_advances_and_tracks_busy() {
        let mut c = Ctx::new();
        c.advance(100);
        assert_eq!((c.now(), c.busy()), (100, 100));
        assert_eq!(c.idle_until(250), 150);
        assert_eq!((c.now(), c.busy()), (250, 100));
        assert_eq!(c.idle_until(10), 0); // past: no-op
        assert_eq!(c.poll_until(300), 50);
        assert_eq!((c.now(), c.busy()), (300, 150));
    }

    #[test]
    fn resource_serializes_overlapping_requests() {
        let r = Resource::new();
        let (s1, e1) = r.acquire(0, 100);
        let (s2, e2) = r.acquire(0, 100);
        assert_eq!((s1, e1), (0, 100));
        assert_eq!((s2, e2), (100, 200)); // queued behind the first
        let (s3, _) = r.acquire(500, 10);
        assert_eq!(s3, 500); // idle gap: starts on request
    }

    #[test]
    fn channel_pool_parallelizes_up_to_width() {
        let p = ChannelPool::new(2);
        let (s1, _) = p.acquire(0, 100);
        let (s2, _) = p.acquire(0, 100);
        let (s3, e3) = p.acquire(0, 100);
        assert_eq!((s1, s2), (0, 0)); // two channels run in parallel
        assert_eq!((s3, e3), (100, 200)); // third queues
        assert_eq!(p.makespan(), 200);
    }

    #[test]
    fn pool_reset_clears_reservations() {
        let p = ChannelPool::new(1);
        p.acquire(0, 1000);
        p.reset();
        assert_eq!(p.acquire(0, 10), (0, 10));
    }

    #[test]
    fn concurrent_resource_reservations_never_overlap() {
        use std::sync::Arc;
        let r = Arc::new(Resource::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut slots = Vec::new();
                for _ in 0..1000 {
                    slots.push(r.acquire(0, 7));
                }
                slots
            }));
        }
        let mut all: Vec<(u64, u64)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // Slots must tile [0, 7*4000) with no overlap and no gap.
        for (i, &(s, e)) in all.iter().enumerate() {
            assert_eq!(s, i as u64 * 7);
            assert_eq!(e, s + 7);
        }
    }

    #[test]
    fn watermark_keeps_max() {
        let w = Watermark::new();
        w.publish(5);
        w.publish(3);
        w.publish(9);
        assert_eq!(w.get(), 9);
    }
}
