//! Randomized property tests for the labtelem primitives: the
//! histogram's conservation/monotonicity/containment laws and the span
//! ring's loss discipline.

use proptest::prelude::*;

use labstor_telemetry::{LogHistogram, SpanEvent, SpanRing, Stage};

/// Values kept inside the histogram's exact domain (< 2^48) so sums are
/// conserved without clamping.
const DOMAIN: u64 = 1 << 48;

fn stage_of(i: u64) -> Stage {
    match i % 6 {
        0 => Stage::Submit,
        1 => Stage::HopReq,
        2 => Stage::Hop,
        3 => Stage::Vertex,
        4 => Stage::Device,
        _ => Stage::HopResp,
    }
}

/// A span whose fields round-trip the ring's packed encoding exactly
/// (stack ids are truncated to 24 bits in the ring).
fn span(i: u64) -> SpanEvent {
    SpanEvent {
        req_id: i.wrapping_mul(0x9E37_79B9),
        stage: stage_of(i),
        stack: (i as u32).wrapping_mul(7) & 0x00FF_FFFF,
        vertex: (i % 13) as u16,
        ring: (i % 5) as u16,
        t_start_vns: i * 1000,
        t_end_vns: i * 1000 + 450,
    }
}

proptest! {
    /// Merging histograms conserves both the value count and (within the
    /// clamp-free domain) the exact sum.
    #[test]
    fn hist_merge_conserves_count_and_sum(
        xs in proptest::collection::vec(0u64..DOMAIN, 0..200),
        ys in proptest::collection::vec(0u64..DOMAIN, 0..200),
    ) {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for &v in &xs {
            a.record(v);
        }
        for &v in &ys {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), (xs.len() + ys.len()) as u64);
        let expect: u64 = xs.iter().chain(ys.iter()).sum();
        prop_assert_eq!(a.sum(), expect);
        if !xs.is_empty() || !ys.is_empty() {
            let lo = xs.iter().chain(ys.iter()).min().copied().unwrap();
            let hi = xs.iter().chain(ys.iter()).max().copied().unwrap();
            prop_assert_eq!(a.min(), lo);
            prop_assert_eq!(a.max(), hi);
        }
    }

    /// Quantiles are monotone in `q` and live within `[min, max]`.
    #[test]
    fn hist_quantiles_monotone_and_bounded(
        xs in proptest::collection::vec(0u64..DOMAIN, 1..200),
        qa in 0u32..=100,
        qb in 0u32..=100,
    ) {
        let h = LogHistogram::new();
        for &v in &xs {
            h.record(v);
        }
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let lo = h.quantile(f64::from(lo_q) / 100.0);
        let hi = h.quantile(f64::from(hi_q) / 100.0);
        prop_assert!(lo <= hi, "q{lo_q}={lo} must not exceed q{hi_q}={hi}");
        prop_assert!(h.min() <= lo && hi <= h.max());
    }

    /// Every in-domain value lands in a bucket whose `[lo, hi)` bounds
    /// contain it, with relative width bounded by the sub-bucket count.
    #[test]
    fn hist_bucket_bounds_contain_value(v in 0u64..DOMAIN) {
        let (lo, hi) = LogHistogram::bucket_bounds(v);
        prop_assert!(lo <= v && v < hi, "{v} outside [{lo},{hi})");
        // Log-bucketing error contract: bucket width <= max(1, lo/16).
        prop_assert!(hi - lo <= (lo / 16).max(1));
    }

    /// Up to `capacity` pushes, the ring loses nothing and returns the
    /// spans oldest-first, bit-exact.
    #[test]
    fn ring_no_loss_up_to_capacity(
        cap_bits in 1u32..=7,
        fill in 0u32..=128,
    ) {
        let cap = 1usize << cap_bits;
        let n = (fill as usize).min(cap);
        let ring = SpanRing::new(cap, 3);
        for i in 0..n as u64 {
            ring.push(&span(i));
        }
        prop_assert_eq!(ring.dropped(), 0);
        let got = ring.snapshot();
        prop_assert_eq!(got.len(), n);
        for (i, ev) in got.iter().enumerate() {
            prop_assert_eq!(*ev, span(i as u64));
        }
    }

    /// Past capacity, the ring overwrites oldest-first: the snapshot is
    /// exactly the newest `capacity` spans in order, and `dropped()`
    /// counts the overwritten remainder.
    #[test]
    fn ring_drops_oldest_first(
        cap_bits in 1u32..=6,
        extra in 1u32..=200,
    ) {
        let cap = 1u64 << cap_bits;
        let total = cap + u64::from(extra);
        let ring = SpanRing::new(cap as usize, 0);
        for i in 0..total {
            ring.push(&span(i));
        }
        prop_assert_eq!(ring.dropped(), total - cap);
        let got = ring.snapshot();
        prop_assert_eq!(got.len(), cap as usize);
        for (k, ev) in got.iter().enumerate() {
            prop_assert_eq!(*ev, span(total - cap + k as u64));
        }
    }
}
