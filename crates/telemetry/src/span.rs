//! The span flight recorder: fixed-capacity, lock-free per-thread rings
//! of virtual-time spans.
//!
//! ## Design
//!
//! Each recording thread owns one [`SpanRing`] per [`FlightRecorder`]
//! (auto-registered through a thread-local on first record), so the hot
//! path is strictly single-writer: a push is a handful of atomic stores
//! with no CAS loop and no lock. Readers ([`SpanRing::snapshot`]) validate
//! each slot with a per-slot sequence counter that encodes the wrap count,
//! so a reader can always tell a stable slot from one being overwritten —
//! the classic seqlock, built from plain `AtomicU64`s (no `unsafe`).
//!
//! The ring overwrites oldest-first once full: the recorder is a *flight
//! recorder*, keeping the most recent `capacity` spans per thread and
//! counting what it dropped.
//!
//! ## Cost contract
//!
//! With the recorder disabled (the default), the entire record path is one
//! relaxed `AtomicBool` load and a branch — measured by the
//! `span_recorder` group in `crates/bench/benches/primitives.rs`. With the
//! `compile-off` cargo feature the path folds to a constant `false` and
//! the optimizer deletes the call sites entirely.

use std::cell::RefCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which leg of a request's journey a span covers. Spans of one request
/// tile its end-to-end latency exactly: `HopReq` + the entry `Vertex`
/// (which nests `Hop`/`Vertex`/`Device` children) + `HopResp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Client-side submission instant (zero duration, trace marker).
    Submit = 0,
    /// Submission-queue crossing: submit time → worker dequeue (includes
    /// queue wait and the domain hop).
    HopReq = 1,
    /// Inter-stage hand-off inside the DAG (`same_domain_hop`).
    Hop = 2,
    /// One LabStack vertex's `process`, inclusive of its downstream.
    Vertex = 3,
    /// A device service window observed by a driver LabMod.
    Device = 4,
    /// Completion-queue crossing: completion post → client reap.
    HopResp = 5,
}

impl Stage {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Submit => "submit",
            Stage::HopReq => "hop-req",
            Stage::Hop => "hop",
            Stage::Vertex => "vertex",
            Stage::Device => "device",
            Stage::HopResp => "hop-resp",
        }
    }

    fn from_u8(v: u8) -> Stage {
        match v {
            1 => Stage::HopReq,
            2 => Stage::Hop,
            3 => Stage::Vertex,
            4 => Stage::Device,
            5 => Stage::HopResp,
            _ => Stage::Submit,
        }
    }
}

/// One recorded span, stamped in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Request id the span belongs to.
    pub req_id: u64,
    /// Which leg of the journey.
    pub stage: Stage,
    /// LabStack id (truncated to 24 bits in the ring).
    pub stack: u32,
    /// DAG vertex index (for `Vertex`/`Hop`/`Device` stages).
    pub vertex: u16,
    /// Ring (thread) that recorded the span — the worker id in practice.
    pub ring: u16,
    /// Span start, virtual ns.
    pub t_start_vns: u64,
    /// Span end, virtual ns.
    pub t_end_vns: u64,
}

impl SpanEvent {
    /// Span duration in virtual ns.
    pub fn dur_vns(&self) -> u64 {
        self.t_end_vns.saturating_sub(self.t_start_vns)
    }

    fn meta(&self) -> u64 {
        ((self.stage as u64) << 56)
            | ((self.vertex as u64) << 40)
            | ((self.ring as u64) << 24)
            | (u64::from(self.stack) & 0x00FF_FFFF)
    }

    fn from_parts(req_id: u64, meta: u64, t_start: u64, t_end: u64) -> SpanEvent {
        SpanEvent {
            req_id,
            stage: Stage::from_u8((meta >> 56) as u8),
            stack: ((meta & 0x00FF_FFFF) as u32),
            vertex: ((meta >> 40) & 0xFFFF) as u16,
            ring: ((meta >> 24) & 0xFFFF) as u16,
            t_start_vns: t_start,
            t_end_vns: t_end,
        }
    }
}

/// One ring slot: a seqlock (seq odd = write in progress) over four data
/// words. The final seq value for the `w`-th overwrite of a slot is
/// `2 * (w + 1)`, which lets a snapshot detect being lapped.
struct Slot {
    seq: AtomicU64,
    req_id: AtomicU64,
    meta: AtomicU64,
    t_start: AtomicU64,
    t_end: AtomicU64,
}

/// Fixed-capacity single-writer span ring with overwrite-oldest
/// semantics. `push` is the single-writer hot path; `snapshot` may run
/// from any thread.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total spans ever pushed (the next push's global index).
    head: AtomicU64,
    mask: u64,
    cap_bits: u32,
    ring_id: u16,
}

impl SpanRing {
    /// Ring with at least `capacity` slots (rounded up to a power of two).
    pub fn new(capacity: usize, ring_id: u16) -> SpanRing {
        let cap = capacity.max(2).next_power_of_two();
        SpanRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    req_id: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                    t_start: AtomicU64::new(0),
                    t_end: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
            mask: (cap - 1) as u64,
            cap_bits: cap.trailing_zeros(),
            ring_id,
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// This ring's id (stamped into events it records).
    pub fn ring_id(&self) -> u16 {
        self.ring_id
    }

    /// Append one span, overwriting the oldest once full. Must only be
    /// called by the ring's owning thread (single writer).
    pub fn push(&self, ev: &SpanEvent) {
        let n = self.head.load(Ordering::Relaxed); // relaxed-ok: single-writer counter; publication is via the slot seq below
        let slot = &self.slots[(n & self.mask) as usize]; // panic-ok: index is masked to capacity
        let wrap = n >> self.cap_bits;
        // Seqlock write: mark the slot busy (odd), fence so the mark is
        // visible before any field store, write the fields, then publish
        // with the even seq (Release orders the field stores before it).
        slot.seq.store(2 * wrap + 1, Ordering::Relaxed); // relaxed-ok: the Release fence below orders this before the field stores
        fence(Ordering::Release);
        slot.req_id.store(ev.req_id, Ordering::Relaxed); // relaxed-ok: seqlock field; the seq counter carries the ordering
        slot.meta.store(ev.meta(), Ordering::Relaxed); // relaxed-ok: seqlock field; the seq counter carries the ordering
        slot.t_start.store(ev.t_start_vns, Ordering::Relaxed); // relaxed-ok: seqlock field; the seq counter carries the ordering
        slot.t_end.store(ev.t_end_vns, Ordering::Relaxed); // relaxed-ok: seqlock field; the seq counter carries the ordering
        slot.seq.store(2 * wrap + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }

    /// Total spans ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Spans lost to overwrite so far (oldest-dropped-first).
    pub fn dropped(&self) -> u64 {
        self.pushed().saturating_sub(self.slots.len() as u64)
    }

    /// The last `min(pushed, capacity)` spans, oldest first. Slots being
    /// concurrently overwritten (the writer lapped the reader) are
    /// skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((head - start) as usize);
        for n in start..head {
            let slot = &self.slots[(n & self.mask) as usize]; // panic-ok: index is masked to capacity
            let expect = 2 * (n >> self.cap_bits) + 2;
            // Seqlock read: seq, fields, fence, seq again — accept only a
            // stable slot still holding push `n`.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expect {
                continue; // torn or lapped; the span is gone
            }
            let req_id = slot.req_id.load(Ordering::Relaxed); // relaxed-ok: seqlock field; validated by the seq re-read below
            let meta = slot.meta.load(Ordering::Relaxed); // relaxed-ok: seqlock field; validated by the seq re-read below
            let t_start = slot.t_start.load(Ordering::Relaxed); // relaxed-ok: seqlock field; validated by the seq re-read below
            let t_end = slot.t_end.load(Ordering::Relaxed); // relaxed-ok: seqlock field; validated by the seq re-read below
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed); // relaxed-ok: the Acquire fence orders the field loads before this re-read
            if s2 != s1 {
                continue;
            }
            out.push(SpanEvent::from_parts(req_id, meta, t_start, t_end));
        }
        out
    }
}

/// Default per-thread ring capacity (spans). ~160 KB per ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Recorder ids are global so one thread can record into several
/// recorders (e.g. two Runtimes in one test process) without cross-talk.
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's rings, one per recorder it has recorded into.
    static TLS_RINGS: RefCell<Vec<(u64, Arc<SpanRing>)>> = const { RefCell::new(Vec::new()) };
}

/// The span flight recorder: a set of per-thread [`SpanRing`]s plus the
/// master enable switch. Owned by the Runtime's `ModuleManager`, so every
/// component that can reach the module registry can record — and separate
/// Runtimes (separate tests) never share spans.
pub struct FlightRecorder {
    id: u64,
    enabled: AtomicBool,
    ring_capacity: AtomicU64,
    rings: Mutex<Vec<Arc<SpanRing>>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// New recorder, **disabled**, with the given per-thread ring
    /// capacity.
    pub fn new(ring_capacity: usize) -> FlightRecorder {
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed), // relaxed-ok: fresh-id allocation; atomicity alone suffices
            enabled: AtomicBool::new(false),
            ring_capacity: AtomicU64::new(ring_capacity.max(2) as u64),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Whether spans are being recorded. This is the *entire* disabled
    /// cost: one relaxed load and a branch at each call site.
    #[cfg(not(feature = "compile-off"))]
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) // relaxed-ok: monitoring toggle; a lagging reader only delays span capture
    }

    /// Compiled-out mode: the recorder is a constant `false` and every
    /// guarded call site folds away.
    #[cfg(feature = "compile-off")]
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        false
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording (already-captured spans stay readable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Set the capacity used for rings created *after* this call (rings
    /// already registered keep their size). Call before `enable` when a
    /// run needs more than [`DEFAULT_RING_CAPACITY`] spans per thread.
    pub fn set_ring_capacity(&self, capacity: usize) {
        self.ring_capacity
            .store(capacity.max(2) as u64, Ordering::Release);
    }

    /// Record one span on the calling thread's ring (created and
    /// registered on first use). No-op while disabled.
    #[inline]
    pub fn record(&self, stage: Stage, req_id: u64, stack: u64, vertex: usize, t0: u64, t1: u64) {
        if !self.enabled() {
            return;
        }
        self.record_slow(stage, req_id, stack, vertex, t0, t1);
    }

    #[cold]
    fn record_slow(&self, stage: Stage, req_id: u64, stack: u64, vertex: usize, t0: u64, t1: u64) {
        self.with_thread_ring(|ring| {
            ring.push(&SpanEvent {
                req_id,
                stage,
                stack: (stack & 0x00FF_FFFF) as u32,
                vertex: (vertex & 0xFFFF) as u16,
                ring: ring.ring_id(),
                t_start_vns: t0,
                t_end_vns: t1,
            });
        });
    }

    /// Record a whole batch of spans on the calling thread's ring: one
    /// enabled check and one thread-local ring lookup for the batch, one
    /// seqlock push per span. The batched IPC hot path stamps its `HopReq`
    /// spans through this. Each event's `ring` field is overwritten with
    /// the calling thread's ring id and `stack` is truncated to 24 bits,
    /// exactly as [`FlightRecorder::record`] does. No-op while disabled.
    #[inline]
    pub fn record_batch<I>(&self, spans: I)
    where
        I: IntoIterator<Item = SpanEvent>,
    {
        if !self.enabled() {
            return;
        }
        self.record_batch_slow(spans.into_iter());
    }

    #[cold]
    fn record_batch_slow(&self, spans: impl Iterator<Item = SpanEvent>) {
        self.with_thread_ring(|ring| {
            for ev in spans {
                ring.push(&SpanEvent {
                    stack: ev.stack & 0x00FF_FFFF,
                    ring: ring.ring_id(),
                    ..ev
                });
            }
        });
    }

    /// Run `f` with the calling thread's ring for this recorder, creating
    /// and registering it on first use.
    fn with_thread_ring<R>(&self, f: impl FnOnce(&SpanRing) -> R) -> R {
        TLS_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            let ring = match rings.iter().find(|(id, _)| *id == self.id) {
                Some((_, r)) => r.clone(),
                None => {
                    let cap = self.ring_capacity.load(Ordering::Acquire) as usize;
                    let mut registry = self.rings.lock().unwrap_or_else(|e| e.into_inner());
                    let r = Arc::new(SpanRing::new(cap, registry.len() as u16));
                    registry.push(r.clone());
                    drop(registry);
                    rings.push((self.id, r.clone()));
                    r
                }
            };
            f(&ring)
        })
    }

    /// All captured spans across every thread's ring, sorted by start
    /// time (ties: longer span first, so parents precede their children).
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let rings: Vec<Arc<SpanRing>> =
            self.rings.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut out: Vec<SpanEvent> = rings.iter().flat_map(|r| r.snapshot()).collect();
        out.sort_by_key(|e| (e.t_start_vns, std::cmp::Reverse(e.t_end_vns), e.stage as u8));
        out
    }

    /// Total spans lost to ring overwrite across all threads.
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|r| r.dropped())
            .sum()
    }

    /// Number of per-thread rings registered so far.
    pub fn rings(&self) -> usize {
        self.rings.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

/// A worker's published virtual-clock snapshot: the single publication
/// path for worker-visible time (`now`, `busy`). Replaces the pair of
/// ad-hoc atomics the worker loop used to store into.
#[derive(Debug, Default)]
pub struct ClockCell {
    now_ns: AtomicU64,
    busy_ns: AtomicU64,
}

impl ClockCell {
    /// Zeroed clock.
    pub fn new() -> ClockCell {
        ClockCell::default()
    }

    /// Publish the owning worker's `(now, busy)` snapshot. Single writer;
    /// readers tolerate staleness (it is a metric, not a fence).
    pub fn publish(&self, now_ns: u64, busy_ns: u64) {
        self.now_ns.store(now_ns, Ordering::Relaxed); // relaxed-ok: published metric snapshot; staleness is acceptable
        self.busy_ns.store(busy_ns, Ordering::Relaxed); // relaxed-ok: published metric snapshot; staleness is acceptable
    }

    /// Last published virtual now.
    pub fn now(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed) // relaxed-ok: published metric snapshot; staleness is acceptable
    }

    /// Last published virtual busy time.
    pub fn busy(&self) -> u64 {
        self.busy_ns.load(Ordering::Relaxed) // relaxed-ok: published metric snapshot; staleness is acceptable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> SpanEvent {
        SpanEvent {
            req_id: i,
            stage: Stage::Vertex,
            stack: 3,
            vertex: (i % 5) as u16,
            ring: 0,
            t_start_vns: i * 10,
            t_end_vns: i * 10 + 7,
        }
    }

    #[test]
    fn ring_keeps_everything_up_to_capacity() {
        let r = SpanRing::new(8, 0);
        for i in 0..8 {
            r.push(&ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 8);
        assert_eq!(r.dropped(), 0);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.req_id, i as u64);
            assert_eq!(e.stage, Stage::Vertex);
            assert_eq!(e.stack, 3);
        }
    }

    #[test]
    fn ring_drops_oldest_first() {
        let r = SpanRing::new(4, 1);
        for i in 0..11 {
            r.push(&ev(i));
        }
        let snap = r.snapshot();
        assert_eq!(r.dropped(), 7);
        let ids: Vec<u64> = snap.iter().map(|e| e.req_id).collect();
        assert_eq!(ids, vec![7, 8, 9, 10]);
    }

    #[test]
    fn meta_roundtrip_preserves_fields() {
        let e = SpanEvent {
            req_id: u64::MAX,
            stage: Stage::HopResp,
            stack: 0x00AB_CDEF,
            vertex: 65_535,
            ring: 1_234,
            t_start_vns: 5,
            t_end_vns: 6,
        };
        let back = SpanEvent::from_parts(e.req_id, e.meta(), e.t_start_vns, e.t_end_vns);
        assert_eq!(back, e);
    }

    #[test]
    fn recorder_disabled_records_nothing() {
        let rec = FlightRecorder::new(64);
        rec.record(Stage::Vertex, 1, 1, 0, 0, 10);
        assert_eq!(rec.snapshot().len(), 0);
        assert_eq!(rec.rings(), 0);
    }

    #[test]
    fn recorder_enable_disable_cycle() {
        let rec = FlightRecorder::new(64);
        rec.enable();
        rec.record(Stage::Vertex, 1, 1, 0, 0, 10);
        rec.disable();
        rec.record(Stage::Vertex, 2, 1, 0, 20, 30);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].req_id, 1);
    }

    #[test]
    fn recorders_do_not_share_rings() {
        let a = FlightRecorder::new(64);
        let b = FlightRecorder::new(64);
        a.enable();
        b.enable();
        a.record(Stage::Vertex, 1, 1, 0, 0, 1);
        b.record(Stage::Device, 2, 1, 0, 0, 1);
        assert_eq!(a.snapshot().len(), 1);
        assert_eq!(b.snapshot().len(), 1);
        assert_eq!(a.snapshot()[0].req_id, 1);
        assert_eq!(b.snapshot()[0].req_id, 2);
    }

    #[test]
    fn record_batch_matches_singles_and_stamps_ring() {
        let rec = FlightRecorder::new(64);
        rec.enable();
        rec.record_batch((0..5u64).map(|i| SpanEvent {
            req_id: i,
            stage: Stage::HopReq,
            stack: 0xFFFF_FFFF, // must be truncated to 24 bits
            vertex: 2,
            ring: 999, // must be overwritten with the real ring id
            t_start_vns: 10 * i,
            t_end_vns: 10 * i + 3,
        }));
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 5);
        for (i, e) in snap.iter().enumerate() {
            assert_eq!(e.req_id, i as u64);
            assert_eq!(e.stack, 0x00FF_FFFF);
            assert_eq!(e.ring, 0);
            assert_eq!(e.stage, Stage::HopReq);
        }
        assert_eq!(rec.rings(), 1);
    }

    #[test]
    fn record_batch_disabled_is_noop() {
        let rec = FlightRecorder::new(64);
        rec.record_batch(std::iter::once(ev(1)));
        assert_eq!(rec.snapshot().len(), 0);
        assert_eq!(rec.rings(), 0);
    }

    #[test]
    fn snapshot_merges_threads_sorted() {
        let rec = Arc::new(FlightRecorder::new(256));
        rec.enable();
        let r2 = rec.clone();
        let t = std::thread::spawn(move || {
            for i in 0..50u64 {
                r2.record(Stage::Vertex, i, 1, 0, 2 * i, 2 * i + 1);
            }
        });
        for i in 0..50u64 {
            rec.record(Stage::Hop, 100 + i, 1, 0, 2 * i + 1, 2 * i + 2);
        }
        t.join().expect("recorder thread");
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 100);
        assert!(snap
            .windows(2)
            .all(|w| w[0].t_start_vns <= w[1].t_start_vns));
        assert_eq!(rec.rings(), 2);
    }

    #[test]
    fn clock_cell_publishes() {
        let c = ClockCell::new();
        c.publish(100, 40);
        assert_eq!((c.now(), c.busy()), (100, 40));
        c.publish(200, 90);
        assert_eq!((c.now(), c.busy()), (200, 90));
    }
}
