//! Lock-free HDR-style log-bucketed histogram.
//!
//! Values (virtual nanoseconds) are binned into base-2 octaves, each
//! split into [`SUB`] linear sub-buckets, giving a worst-case relative
//! quantile error of `1/SUB` (6.25%) across the whole range — the same
//! scheme HdrHistogram uses. Every counter is an atomic, so `record` is
//! wait-free and safe from any number of threads; `merge` and `quantile`
//! read concurrently-updated counters and are approximate by design
//! (monitoring, not accounting).

use std::sync::atomic::{AtomicU64, Ordering};

/// Log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (bounds the relative error at 1/SUB).
const SUB: u64 = 1 << SUB_BITS;
/// Octaves above the direct range; covers values up to 2^48 ns (~3 days
/// of virtual time), far beyond any simulated latency.
const OCTAVES: u64 = 44;
/// Total buckets: SUB direct (exact, width 1) + OCTAVES * SUB log-linear.
const N_BUCKETS: usize = (SUB + OCTAVES * SUB) as usize;
/// Values at or above this clamp into the last bucket.
const MAX_VALUE: u64 = (1u64 << (SUB_BITS as u64 + OCTAVES)) - 1;

/// Bucket index for a (clamped) value.
fn index(v: u64) -> usize {
    let v = v.min(MAX_VALUE);
    if v < SUB {
        return v as usize;
    }
    let top = 63 - u64::from(v.leading_zeros()); // >= SUB_BITS
    let octave = top - u64::from(SUB_BITS); // 0-based octave above direct range
    let sub = (v >> (top - u64::from(SUB_BITS))) - SUB; // 0..SUB
    (SUB + octave * SUB + sub) as usize
}

/// `[lo, hi)` bounds of bucket `idx`.
fn bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < SUB {
        return (idx, idx + 1);
    }
    let octave = (idx - SUB) / SUB;
    let sub = (idx - SUB) % SUB;
    let top = octave + u64::from(SUB_BITS);
    let width = 1u64 << (top - u64::from(SUB_BITS));
    let lo = (1u64 << top) + sub * width;
    (lo, lo + width)
}

/// A concurrent log-bucketed histogram of `u64` values (ns).
pub struct LogHistogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram (~5.8 KB of counters).
    pub fn new() -> Self {
        LogHistogram {
            counts: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free (a handful of relaxed atomic RMWs).
    /// Values above the histogram's domain clamp to [`MAX_VALUE`] —
    /// everywhere, including `min`/`max`/`sum`, so all statistics
    /// describe the same clamped stream.
    pub fn record(&self, v: u64) {
        let v = v.min(MAX_VALUE);
        self.counts[index(v)].fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.sum.fetch_add(v, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let mut cur = self.min.load(Ordering::Relaxed); // relaxed-ok: self-contained stat extremum; CAS guards no other memory
        while v < cur {
            match self.min.compare_exchange_weak(
                cur,
                v,
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let mut cur = self.max.load(Ordering::Relaxed); // relaxed-ok: self-contained stat extremum; CAS guards no other memory
        while v > cur {
            match self.max.compare_exchange_weak(
                cur,
                v,
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Fold `other`'s recordings into `self` (used when aggregating
    /// per-worker histograms).
    pub fn merge(&self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let omin = other.min.load(Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let mut cur = self.min.load(Ordering::Relaxed); // relaxed-ok: self-contained stat extremum; CAS guards no other memory
        while omin < cur {
            match self.min.compare_exchange_weak(
                cur,
                omin,
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let omax = other.max.load(Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let mut cur = self.max.load(Ordering::Relaxed); // relaxed-ok: self-contained stat extremum; CAS guards no other memory
        while omax > cur {
            match self.max.compare_exchange_weak(
                cur,
                omax,
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
                Ordering::Relaxed, // relaxed-ok: self-contained stat extremum; CAS guards no other memory
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Value at quantile `q` in `[0, 1]`: the highest value equivalent to
    /// the bucket holding rank `ceil(q * count)` (HdrHistogram semantics),
    /// clamped to the recorded `[min, max]`. 0 when empty. Within-bucket
    /// error is bounded by 1/16 of the value.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without float edge cases; rank is 1-based.
        let target = (((n as f64) * q).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            if cum >= target {
                let (_, hi) = bounds(idx);
                return (hi - 1).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Tail estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// `[lo, hi)` bounds of the bucket `v` lands in (for tests and docs).
    pub fn bucket_bounds(v: u64) -> (u64, u64) {
        bounds(index(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 7, 15] {
            h.record(v);
            let (lo, hi) = LogHistogram::bucket_bounds(v);
            assert_eq!((lo, hi), (v, v + 1));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
    }

    #[test]
    fn index_is_monotone_and_bounds_contain() {
        let mut last = 0usize;
        for v in (0..4096u64).chain((1u64 << 30) - 4..(1 << 30) + 4) {
            let idx = index(v);
            assert!(idx >= last, "index must be monotone at {v}");
            last = idx;
            let (lo, hi) = bounds(idx);
            assert!(lo <= v && v < hi, "{v} outside [{lo},{hi})");
        }
    }

    #[test]
    fn quantiles_bound_error() {
        let h = LogHistogram::new();
        for _ in 0..1000 {
            h.record(100_000);
        }
        let p50 = h.p50();
        // Within one sub-bucket (6.25%) of the true value.
        assert!((100_000..=100_000 + 100_000 / 16 + 1).contains(&p50));
        assert_eq!(h.quantile(1.0), 100_000); // clamped to recorded max
        assert_eq!(h.mean(), 100_000);
    }

    #[test]
    fn merge_conserves_counts() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in 0..100u64 {
            a.record(v * 97);
            b.record(v * 1013);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        assert_eq!(a.sum(), (0..100u64).map(|v| v * 97 + v * 1013).sum());
        assert_eq!(a.max(), 99 * 1013);
        assert_eq!(a.min(), 0);
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        // Everything above the domain clamps to MAX_VALUE, consistently
        // across max/min/quantile.
        assert_eq!(h.max(), MAX_VALUE);
        assert_eq!(h.min(), MAX_VALUE);
        assert_eq!(h.quantile(0.5), MAX_VALUE);
    }
}
