//! Per-LabMod performance counters: the facade LabMods use to back
//! `est_processing_time` / `est_total_time` with *observed* cost instead
//! of a hard-coded model constant.
//!
//! A module calls [`PerfCounters::observe`] (or
//! [`PerfCounters::observe_split`] when the accounted total differs from
//! the cost the estimator should learn) once per request. After
//! [`MIN_SAMPLES`] observations, [`PerfCounters::est_ns`] returns the
//! EWMA of observed costs; before that it falls through to the module's
//! analytic model, so cold stacks schedule exactly as they did before
//! telemetry existed.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::LogHistogram;

/// Observations required before the EWMA overrides the model estimate.
pub const MIN_SAMPLES: u64 = 8;

/// EWMA weight of a new sample, in 1/16ths (3/16 ≈ 0.19).
const EWMA_NUM: u64 = 3;
const EWMA_DEN: u64 = 16;

/// Concurrent per-module counters: lifetime totals, an EWMA of observed
/// per-request cost, and a [`LogHistogram`] of the same.
#[derive(Default)]
pub struct PerfCounters {
    total_ns: AtomicU64,
    ops: AtomicU64,
    ewma_ns: AtomicU64,
    hist: LogHistogram,
}

impl PerfCounters {
    /// Zeroed counters.
    pub fn new() -> PerfCounters {
        PerfCounters::default()
    }

    /// Record one request whose accounted total and learnable cost are
    /// the same `ns`.
    pub fn observe(&self, ns: u64) {
        self.observe_split(ns, ns);
    }

    /// Record one request: `total_ns` is added to the lifetime total
    /// (what `est_total_time` reports), while `cost_ns` feeds the EWMA
    /// and histogram (what `est_processing_time` learns). Drivers use
    /// this to account device-inclusive busy time while learning only
    /// their software cost, caches to learn hit-path cost while
    /// accounting exclusive time.
    pub fn observe_split(&self, total_ns: u64, cost_ns: u64) {
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let n = self.ops.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        self.hist.record(cost_ns);
        if n == 0 {
            self.ewma_ns.store(cost_ns, Ordering::Relaxed); // relaxed-ok: EWMA seed; a racing observe just re-smooths
        } else {
            // Single RMW-free update: the EWMA is a smoothed estimate, a
            // lost race costs one sample's worth of smoothing, not
            // correctness.
            let cur = self.ewma_ns.load(Ordering::Relaxed); // relaxed-ok: smoothed estimate; lost races only delay convergence
            let next = (cur * (EWMA_DEN - EWMA_NUM) + cost_ns * EWMA_NUM) / EWMA_DEN;
            self.ewma_ns.store(next, Ordering::Relaxed); // relaxed-ok: smoothed estimate; lost races only delay convergence
        }
    }

    /// The estimate the module should report: the EWMA of observed costs
    /// once warm ([`MIN_SAMPLES`] observations), else `model_ns` — the
    /// module's analytic estimate for this request.
    pub fn est_ns(&self, model_ns: u64) -> u64 {
        let warm = self.ops.load(Ordering::Relaxed) >= MIN_SAMPLES; // relaxed-ok: stat counter
        if warm {
            self.ewma_ns.load(Ordering::Relaxed) // relaxed-ok: smoothed estimate; staleness is acceptable
        } else {
            model_ns
        }
    }

    /// Lifetime accounted busy time (backs `est_total_time`).
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Requests observed.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed) // relaxed-ok: stat counter; readers tolerate lag
    }

    /// Current EWMA of observed cost (0 before any observation).
    pub fn ewma_ns(&self) -> u64 {
        self.ewma_ns.load(Ordering::Relaxed) // relaxed-ok: smoothed estimate; staleness is acceptable
    }

    /// Median observed cost.
    pub fn p50(&self) -> u64 {
        self.hist.p50()
    }

    /// Tail observed cost.
    pub fn p99(&self) -> u64 {
        self.hist.p99()
    }

    /// The cost histogram (for exporters and tests).
    pub fn hist(&self) -> &LogHistogram {
        &self.hist
    }

    /// Fold `other` into `self` — used by `state_update` when a module
    /// upgrade carries its predecessor's counters forward.
    pub fn absorb(&self, other: &PerfCounters) {
        self.total_ns.fetch_add(other.total_ns(), Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
        let theirs = other.ops();
        if theirs > 0 {
            let mine = self.ops.fetch_add(theirs, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            if mine == 0 {
                // Fresh module inherits the predecessor's warm estimate.
                self.ewma_ns.store(other.ewma_ns(), Ordering::Relaxed); // relaxed-ok: EWMA seed; a racing observe just re-smooths
            }
        }
        self.hist.merge(other.hist());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn est_uses_model_until_warm() {
        let p = PerfCounters::new();
        assert_eq!(p.est_ns(777), 777);
        for _ in 0..MIN_SAMPLES - 1 {
            p.observe(1000);
        }
        assert_eq!(p.est_ns(777), 777, "one short of warm");
        p.observe(1000);
        assert_eq!(p.est_ns(777), 1000, "warm EWMA of a constant is exact");
    }

    #[test]
    fn ewma_tracks_shift() {
        let p = PerfCounters::new();
        for _ in 0..16 {
            p.observe(1000);
        }
        assert_eq!(p.ewma_ns(), 1000);
        for _ in 0..64 {
            p.observe(5000);
        }
        let e = p.ewma_ns();
        assert!(e > 4500 && e <= 5000, "ewma {e} should approach 5000");
    }

    #[test]
    fn observe_split_separates_total_and_cost() {
        let p = PerfCounters::new();
        for _ in 0..MIN_SAMPLES {
            p.observe_split(10_000, 250);
        }
        assert_eq!(p.total_ns(), 10_000 * MIN_SAMPLES);
        assert_eq!(p.est_ns(999), 250);
        assert!(p.p99() >= 250);
    }

    #[test]
    fn absorb_carries_counters_across_upgrade() {
        let old = PerfCounters::new();
        for _ in 0..20 {
            old.observe(400);
        }
        let new = PerfCounters::new();
        new.absorb(&old);
        assert_eq!(new.total_ns(), 8000);
        assert_eq!(new.ops(), 20);
        assert_eq!(new.est_ns(123), 400, "inherits warm estimate");
    }
}
