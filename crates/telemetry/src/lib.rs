#![warn(missing_docs)]

//! # labtelem — virtual-time telemetry for LabStor-RS
//!
//! The paper's Work Orchestrator and Fig. 4a anatomy both hinge on
//! per-LabMod performance counters; this crate is the cross-layer record
//! of where a request's *virtual* time actually went (see DESIGN.md §8):
//!
//! * [`SpanRing`] / [`FlightRecorder`] — a fixed-capacity, lock-free
//!   per-thread ring of [`SpanEvent`]s stamped in virtual nanoseconds,
//!   recording client submit → IPC hop → worker dequeue → each LabStack
//!   vertex → device completion → completion hop. Disabled by default;
//!   the disabled cost is one relaxed load and a branch.
//! * [`LogHistogram`] — an HDR-style log-bucketed concurrent histogram
//!   (record / merge / quantile) replacing ad-hoc latency vectors.
//! * [`PerfCounters`] — the per-LabMod facade backing
//!   `est_processing_time` / `est_total_time` with an EWMA and quantiles
//!   of observed spans instead of raw point estimates.
//! * [`ClockCell`] — a worker's published `(now, busy)` virtual-clock
//!   snapshot: one publication path for worker-visible time.
//! * [`export`] — Chrome trace-event JSON (loadable in `chrome://tracing`
//!   or Perfetto) and the Fig. 4a text anatomy built from recorded spans.
//!
//! All timestamps are **virtual nanoseconds** from `labstor_sim::Ctx`;
//! recording never advances a virtual clock, so enabling telemetry cannot
//! perturb simulated results — only host-time overhead changes (measured
//! by `crates/bench/benches/primitives.rs`).

pub mod counters;
pub mod export;
pub mod hist;
pub mod span;

pub use counters::PerfCounters;
pub use export::{anatomy, chrome_trace, Anatomy};
pub use hist::LogHistogram;
pub use span::{ClockCell, FlightRecorder, SpanEvent, SpanRing, Stage};
