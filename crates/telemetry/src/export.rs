//! Span exporters: Chrome trace-event JSON and the Fig. 4a-style text
//! anatomy.
//!
//! Both consume a flat `&[SpanEvent]` (usually
//! `FlightRecorder::snapshot()`); callers supply a labeling closure that
//! maps a span to a display/category name, so the exporters stay ignorant
//! of LabStack layouts.
//!
//! The anatomy assigns each span its **exclusive** time — duration minus
//! the durations of directly nested spans of the same request — so the
//! per-category totals of one request sum exactly (in ns) to its
//! end-to-end span extent. The Chrome export rounds to µs with three
//! decimals, preserving full ns precision.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::span::{SpanEvent, Stage};

/// Escape a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Virtual ns → Chrome's µs timestamps, keeping ns precision as three
/// decimals.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Render spans as Chrome trace-event JSON (open in `chrome://tracing`
/// or [Perfetto](https://ui.perfetto.dev)). `label` names each span;
/// the stage name becomes the category, the recording ring the Chrome
/// `tid`, so per-worker timelines render as separate tracks. `Submit`
/// spans become instant markers; everything else a complete (`"X"`)
/// event.
pub fn chrome_trace(spans: &[SpanEvent], label: impl Fn(&SpanEvent) -> String) -> String {
    let mut out = String::with_capacity(spans.len() * 160 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = json_escape(&label(e));
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\
             \"args\":{{\"req\":{},\"stack\":{},\"vertex\":{}}}",
            name,
            e.stage.name(),
            e.ring,
            us(e.t_start_vns),
            e.req_id,
            e.stack,
            e.vertex
        );
        if e.stage == Stage::Submit {
            let _ = write!(out, "{{\"ph\":\"i\",\"s\":\"t\",{common}}}");
        } else {
            let _ = write!(out, "{{\"ph\":\"X\",\"dur\":{},{common}}}", us(e.dur_vns()));
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// A per-category breakdown of exclusive virtual time, built by
/// [`anatomy`].
#[derive(Debug, Clone)]
pub struct Anatomy {
    /// `(category, exclusive virtual ns)`, sorted descending by time.
    pub categories: Vec<(String, u64)>,
    /// Sum of all exclusive times — equals the summed end-to-end span
    /// extents of the covered requests.
    pub total_ns: u64,
    /// Distinct requests covered.
    pub requests: u64,
}

impl Anatomy {
    /// Exclusive ns attributed to `category` (0 when absent).
    pub fn ns(&self, category: &str) -> u64 {
        self.categories
            .iter()
            .find(|(c, _)| c == category)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Share of the total attributed to `category`, in percent.
    pub fn pct(&self, category: &str) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.ns(category) as f64 * 100.0 / self.total_ns as f64
        }
    }
}

/// Compute the per-category anatomy of the given spans. Each span's
/// *exclusive* time (duration minus directly nested spans of the same
/// request) is credited to `label(span)`; per request, the exclusive
/// times tile its end-to-end extent exactly, so `total_ns` is the summed
/// end-to-end virtual latency of all covered requests (assuming each
/// request's spans abut, which the recorder's stages guarantee).
pub fn anatomy(spans: &[SpanEvent], label: impl Fn(&SpanEvent) -> String) -> Anatomy {
    let mut sorted: Vec<&SpanEvent> = spans.iter().collect();
    sorted.sort_by_key(|e| {
        (
            e.req_id,
            e.t_start_vns,
            std::cmp::Reverse(e.t_end_vns),
            e.stage as u8,
        )
    });

    let mut per_cat: BTreeMap<String, u64> = BTreeMap::new();
    let mut total = 0u64;
    let mut requests = 0u64;
    // (t_end, exclusive-so-far, category) of currently open ancestors.
    let mut stack: Vec<(u64, u64, String)> = Vec::new();
    let mut cur_req = None;

    let flush = |stack: &mut Vec<(u64, u64, String)>,
                 per_cat: &mut BTreeMap<String, u64>,
                 total: &mut u64| {
        while let Some((_, excl, cat)) = stack.pop() {
            *per_cat.entry(cat).or_insert(0) += excl;
            *total += excl;
        }
    };

    for e in sorted {
        if cur_req != Some(e.req_id) {
            flush(&mut stack, &mut per_cat, &mut total);
            cur_req = Some(e.req_id);
            requests += 1;
        }
        // Close ancestors that ended at or before this span's start.
        while stack
            .last()
            .is_some_and(|(end, _, _)| *end <= e.t_start_vns)
        {
            let (_, excl, cat) = stack.pop().unwrap_or_default(); // panic-ok: guarded by is_some_and above
            *per_cat.entry(cat).or_insert(0) += excl;
            total += excl;
        }
        let dur = e.dur_vns();
        // This span's full duration is carved out of its parent's
        // exclusive time.
        if let Some((_, excl, _)) = stack.last_mut() {
            *excl = excl.saturating_sub(dur);
        }
        stack.push((e.t_end_vns, dur, label(e)));
    }
    flush(&mut stack, &mut per_cat, &mut total);

    let mut categories: Vec<(String, u64)> = per_cat.into_iter().collect();
    categories.sort_by_key(|(_, ns)| std::cmp::Reverse(*ns));
    Anatomy {
        categories,
        total_ns: total,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(req: u64, stage: Stage, vertex: u16, t0: u64, t1: u64) -> SpanEvent {
        SpanEvent {
            req_id: req,
            stage,
            stack: 1,
            vertex,
            ring: 0,
            t_start_vns: t0,
            t_end_vns: t1,
        }
    }

    /// One request tiled the way the recorder's stages are: hop-req,
    /// entry vertex nesting a hop, a child vertex and a device window,
    /// hop-resp.
    fn request_spans() -> Vec<SpanEvent> {
        vec![
            span(7, Stage::Submit, 0, 0, 0),
            span(7, Stage::HopReq, 0, 0, 600),
            span(7, Stage::Vertex, 0, 600, 2000),
            span(7, Stage::Hop, 1, 1000, 1020),
            span(7, Stage::Vertex, 1, 1020, 1900),
            span(7, Stage::Device, 1, 1400, 1900),
            span(7, Stage::HopResp, 0, 2000, 2600),
        ]
    }

    #[test]
    fn anatomy_exclusive_times_tile_the_request() {
        let a = anatomy(&request_spans(), |e| match e.stage {
            Stage::Vertex => format!("vertex{}", e.vertex),
            s => s.name().to_string(),
        });
        assert_eq!(a.requests, 1);
        // Exclusives: hop-req 600, vertex0 1400-(20+880)=500, hop 20,
        // vertex1 880-500=380, device 500, hop-resp 600. Sum = 2600 =
        // end-to-end extent, exactly.
        assert_eq!(a.ns("hop-req"), 600);
        assert_eq!(a.ns("vertex0"), 500);
        assert_eq!(a.ns("hop"), 20);
        assert_eq!(a.ns("vertex1"), 380);
        assert_eq!(a.ns("device"), 500);
        assert_eq!(a.ns("hop-resp"), 600);
        assert_eq!(a.total_ns, 2600);
        assert!((a.pct("device") - 500.0 * 100.0 / 2600.0).abs() < 1e-9);
    }

    #[test]
    fn anatomy_sums_across_requests() {
        let mut spans = request_spans();
        spans.extend(request_spans().into_iter().map(|mut e| {
            e.req_id = 8;
            e.t_start_vns += 10_000;
            if e.t_end_vns > 0 {
                e.t_end_vns += 10_000;
            } else {
                e.t_end_vns = e.t_start_vns;
            }
            e
        }));
        let a = anatomy(&spans, |e| e.stage.name().to_string());
        assert_eq!(a.requests, 2);
        assert_eq!(a.total_ns, 5200);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let spans = request_spans();
        let json = chrome_trace(&spans, |e| format!("{}#{}", e.stage.name(), e.vertex));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ns\"}"));
        // One instant (Submit) + six complete events.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 6);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // ns precision survives as µs decimals: 2600 ns -> "2.600".
        assert!(json.contains("\"ts\":2.000"));
        assert!(json.contains("\"dur\":0.600"));
    }

    #[test]
    fn json_labels_are_escaped() {
        let spans = vec![span(1, Stage::Vertex, 0, 0, 5)];
        let json = chrome_trace(&spans, |_| "a\"b\\c".to_string());
        assert!(json.contains("a\\\"b\\\\c"));
    }
}
