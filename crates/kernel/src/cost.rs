//! Calibrated costs of kernel crossings and in-kernel work.
//!
//! These constants model the Linux 5.4 path on the paper's testbed
//! (Xeon E5-2670 v3 @ 2.3 GHz, KPTI-era syscall cost). They are the knobs
//! the whole baseline model hangs on; `EXPERIMENTS.md` records how the
//! resulting shapes line up against the paper's figures.

use labstor_sim::Ctx;

/// One user→kernel→user syscall round trip (mode switches, entry assembly,
/// KPTI page-table swap).
pub const SYSCALL_NS: u64 = 700;

/// A full context switch to another thread (scheduler pick, register and
/// address-space switch, cache disturbance). Paid e.g. when an AIO thread
/// or an interrupt wakeup hands control.
pub const CONTEXT_SWITCH_NS: u64 = 1_800;

/// Hard interrupt + completion soft-irq processing for interrupt-driven
/// devices (SATA, HDD).
pub const INTERRUPT_NS: u64 = 1_500;

/// Allocating and initializing a `bio`/`request` pair in the block layer.
pub const BIO_ALLOC_NS: u64 = 450;

/// Per-request block-layer bookkeeping (plug list, merge attempt, tag
/// allocation, software-queue insertion).
pub const BLOCK_LAYER_NS: u64 = 550;

/// I/O scheduler decision cost (even NoOp keys a request to a queue).
pub const SCHED_DECIDE_NS: u64 = 120;

/// MQ driver doorbell write + command packaging.
pub const DRIVER_SUBMIT_NS: u64 = 150;

/// Fixed cost of touching one page-cache page (lookup in the per-file
/// tree, locking the page).
pub const PAGE_LOOKUP_NS: u64 = 250;

/// Copying between user and kernel buffers, per byte (≈3.3 GB/s single
/// threaded, memcpy through cold cache).
pub const COPY_NS_PER_KB: u64 = 300;

/// VFS path-walk cost per path component (dcache hash lookup + RCU walk).
pub const PATH_COMPONENT_NS: u64 = 180;

/// Client-side predicate scan over payload bytes, per KiB (branchy
/// record-at-a-time compare loop, ≈1 GB/s — slower than straight memcpy
/// because of the per-record control flow). This is the cost pushdown
/// avoids by filtering in-stack and shipping bytes, not pages.
pub const SCAN_NS_PER_KB: u64 = 1_000;

/// Scheduler wakeup of a task blocked on I/O completion.
pub const WAKEUP_NS: u64 = 900;

/// Charge one syscall round trip.
pub fn syscall(ctx: &mut Ctx) {
    ctx.advance(SYSCALL_NS);
}

/// Charge a context switch.
pub fn context_switch(ctx: &mut Ctx) {
    ctx.advance(CONTEXT_SWITCH_NS);
}

/// Charge an interrupt delivery + completion processing.
pub fn interrupt(ctx: &mut Ctx) {
    ctx.advance(INTERRUPT_NS);
}

/// Charge a user↔kernel copy of `bytes`.
pub fn copy(ctx: &mut Ctx, bytes: usize) {
    ctx.advance(copy_ns(bytes));
}

/// Modeled cost of copying `bytes` between user and kernel space.
pub fn copy_ns(bytes: usize) -> u64 {
    (bytes as u64 * COPY_NS_PER_KB) / 1024
}

/// Modeled cost of a client-side predicate scan over `bytes` of payload.
pub fn scan_ns(bytes: usize) -> u64 {
    (bytes as u64 * SCAN_NS_PER_KB) / 1024
}

/// Charge a client-side predicate scan over `bytes`.
pub fn scan(ctx: &mut Ctx, bytes: usize) {
    ctx.advance(scan_ns(bytes));
}

/// Charge a VFS path resolution over `components` path elements.
pub fn path_walk(ctx: &mut Ctx, components: usize) {
    ctx.advance(PATH_COMPONENT_NS * components.max(1) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_add_up() {
        let mut ctx = Ctx::new();
        syscall(&mut ctx);
        context_switch(&mut ctx);
        interrupt(&mut ctx);
        assert_eq!(ctx.now(), SYSCALL_NS + CONTEXT_SWITCH_NS + INTERRUPT_NS);
    }

    #[test]
    fn copy_scales_with_size() {
        assert_eq!(copy_ns(1024), COPY_NS_PER_KB);
        assert_eq!(copy_ns(4096), 4 * COPY_NS_PER_KB);
        let mut ctx = Ctx::new();
        copy(&mut ctx, 2048);
        assert_eq!(ctx.now(), 2 * COPY_NS_PER_KB);
    }

    #[test]
    fn scan_is_slower_than_copy() {
        // The client-side scan the pushdown path displaces costs more
        // per byte than a straight memcpy.
        assert!(scan_ns(4096) > copy_ns(4096));
        let mut ctx = Ctx::new();
        scan(&mut ctx, 1024);
        assert_eq!(ctx.now(), SCAN_NS_PER_KB);
    }

    #[test]
    fn path_walk_charges_per_component() {
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        path_walk(&mut a, 1);
        path_walk(&mut b, 4);
        assert_eq!(b.now(), 4 * a.now());
    }

    #[test]
    fn relative_magnitudes_match_linux() {
        // A context switch costs more than a bare syscall; an interrupt
        // round trip sits in between.
        const _: () = assert!(CONTEXT_SWITCH_NS > SYSCALL_NS);
        const _: () = assert!(INTERRUPT_NS > SYSCALL_NS);
        // The block layer path (bio + bookkeeping + sched + driver) is
        // over a microsecond — the overhead Fig. 6 shows SPDK avoiding.
        let blk = BIO_ALLOC_NS + BLOCK_LAYER_NS + SCHED_DECIDE_NS + DRIVER_SUBMIT_NS;
        assert!(blk > 1_000);
    }
}
