//! Userspace I/O engines over raw device files (Fig. 6 baselines).
//!
//! The paper's storage-interface evaluation writes directly to device
//! files (`/dev/nvme0n1`) with O_DIRECT through four kernel interfaces:
//!
//! * **POSIX** — synchronous `pread`/`pwrite`: a syscall per operation and
//!   a blocked (interrupt + wakeup) completion.
//! * **POSIX AIO** — glibc's thread-pool AIO: the POSIX path plus two
//!   extra context switches (hand-off to the AIO thread and completion
//!   notification) — "amounting up to 60-70% overhead on NVMe and PMEM".
//! * **libaio** — `io_submit`/`io_getevents`: two syscalls per batch, no
//!   AIO threads, still the full block layer per command.
//! * **io_uring** — SQ/CQ rings in shared memory: one `io_uring_enter`
//!   per submitted batch, completions reaped from the CQ with *no*
//!   syscall.
//!
//! LabStor's own storage paths (Kernel Driver, SPDK, DAX LabMods) live in
//! `labstor-mods`; Fig. 6 compares them against these.

use std::sync::Arc;

use labstor_sim::{Completion, Ctx, DeviceError, IoRequest};

use crate::block::{BlockLayer, CompletionMode};
use crate::cost;
use crate::sched::IoClass;

/// Which kernel interface an engine models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoEngineKind {
    /// Synchronous POSIX read/write with O_DIRECT.
    Posix,
    /// POSIX AIO (glibc thread pool).
    PosixAio,
    /// Linux native AIO (io_submit/io_getevents).
    Libaio,
    /// io_uring with polled completion reaping.
    IoUring,
}

impl IoEngineKind {
    /// Label used in bench output (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            IoEngineKind::Posix => "posix",
            IoEngineKind::PosixAio => "posix-aio",
            IoEngineKind::Libaio => "libaio",
            IoEngineKind::IoUring => "io_uring",
        }
    }

    /// All baseline engines, in the paper's presentation order.
    pub fn all() -> [IoEngineKind; 4] {
        [
            IoEngineKind::Posix,
            IoEngineKind::PosixAio,
            IoEngineKind::Libaio,
            IoEngineKind::IoUring,
        ]
    }
}

/// Cost of pinning user pages for O_DIRECT (get_user_pages).
const GUP_NS: u64 = 250;
/// Writing one SQE into the io_uring submission ring (user memory).
const SQE_WRITE_NS: u64 = 90;
/// Reaping one CQE from the io_uring completion ring (user memory).
const CQE_READ_NS: u64 = 70;

/// Handle for an in-flight asynchronous operation.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    tag: u64,
    qid: usize,
}

/// A raw-device I/O engine of a given kind.
pub struct RawEngine {
    kind: IoEngineKind,
    block: Arc<BlockLayer>,
    /// SQEs staged in the ring but not yet submitted (io_uring only).
    staged: parking_lot::Mutex<Vec<(IoRequest, IoClass, usize)>>,
}

impl RawEngine {
    /// Create an engine over a block layer.
    pub fn new(kind: IoEngineKind, block: Arc<BlockLayer>) -> Self {
        RawEngine {
            kind,
            block,
            staged: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Engine kind.
    pub fn kind(&self) -> IoEngineKind {
        self.kind
    }

    /// The block layer this engine submits through.
    pub fn block_layer(&self) -> &Arc<BlockLayer> {
        &self.block
    }

    /// Queue one operation. For POSIX/AIO/libaio the submission syscall is
    /// charged here; for io_uring the SQE is only staged until [`Self::kick`].
    ///
    /// The caller's tag is replaced with a block-layer-unique one (returned
    /// in the [`Token`]): engines sharing a device must never collide on
    /// tags or they would reap each other's completions.
    pub fn submit(
        &self,
        ctx: &mut Ctx,
        core: usize,
        class: IoClass,
        mut req: IoRequest,
    ) -> Result<Token, DeviceError> {
        req.tag = self.block.alloc_tag();
        let tag = req.tag;
        match self.kind {
            IoEngineKind::Posix => {
                cost::syscall(ctx);
                ctx.advance(GUP_NS);
                let qid = self.block.submit_io_to_blk(ctx, core, class, req)?;
                Ok(Token { tag, qid })
            }
            IoEngineKind::PosixAio => {
                // Enqueue to the AIO thread pool: library bookkeeping, a
                // futex wake of the worker thread and the switch into it;
                // the worker then runs the POSIX path.
                cost::syscall(ctx);
                cost::context_switch(ctx);
                cost::context_switch(ctx);
                ctx.advance(cost::WAKEUP_NS + GUP_NS);
                let qid = self.block.submit_io_to_blk(ctx, core, class, req)?;
                Ok(Token { tag, qid })
            }
            IoEngineKind::Libaio => {
                cost::syscall(ctx); // io_submit
                ctx.advance(GUP_NS);
                let qid = self.block.submit_io_to_blk(ctx, core, class, req)?;
                Ok(Token { tag, qid })
            }
            IoEngineKind::IoUring => {
                ctx.advance(SQE_WRITE_NS);
                self.staged.lock().push((req, class, core)); // lock-class: engines.staged
                                                             // qid resolved at kick time; report the scheduler's static
                                                             // choice so wait() knows where to look.
                Ok(Token {
                    tag,
                    qid: usize::MAX,
                })
            }
        }
    }

    /// Submit all staged SQEs with one `io_uring_enter` (no-op for other
    /// engines). Returns tokens in staging order.
    pub fn kick(&self, ctx: &mut Ctx) -> Result<Vec<Token>, DeviceError> {
        if self.kind != IoEngineKind::IoUring {
            return Ok(Vec::new());
        }
        let staged: Vec<_> = std::mem::take(&mut *self.staged.lock()); // lock-class: engines.staged
        if staged.is_empty() {
            return Ok(Vec::new());
        }
        cost::syscall(ctx); // one enter for the whole batch
        let mut tokens = Vec::with_capacity(staged.len());
        for (mut req, class, core) in staged {
            req.tag = self.block.alloc_tag();
            let tag = req.tag;
            let qid = self.block.submit_io_to_blk(ctx, core, class, req)?;
            tokens.push(Token { tag, qid });
        }
        Ok(tokens)
    }

    /// Wait for one operation to complete, charging the engine's
    /// completion discipline.
    pub fn wait(&self, ctx: &mut Ctx, token: Token) -> Completion {
        match self.kind {
            IoEngineKind::Posix => {
                self.block
                    .wait_for_tag(ctx, token.qid, token.tag, CompletionMode::Block)
            }
            IoEngineKind::PosixAio => {
                // aio_suspend syscall; the AIO worker takes the completion
                // wakeup, then signals and switches back to the caller.
                cost::syscall(ctx);
                let c = self
                    .block
                    .wait_for_tag(ctx, token.qid, token.tag, CompletionMode::Block);
                cost::context_switch(ctx);
                cost::context_switch(ctx);
                ctx.advance(cost::WAKEUP_NS);
                c
            }
            IoEngineKind::Libaio => {
                cost::syscall(ctx); // io_getevents
                self.block
                    .wait_for_tag(ctx, token.qid, token.tag, CompletionMode::Block)
            }
            IoEngineKind::IoUring => {
                ctx.advance(CQE_READ_NS);
                self.block
                    .wait_for_tag(ctx, token.qid, token.tag, CompletionMode::PollCq)
            }
        }
    }

    /// One complete synchronous operation (submit + kick + wait): the
    /// queue-depth-1 discipline Fig. 6 measures.
    pub fn rw_sync(
        &self,
        ctx: &mut Ctx,
        core: usize,
        class: IoClass,
        req: IoRequest,
    ) -> Result<Completion, DeviceError> {
        let token = self.submit(ctx, core, class, req)?;
        let token = match self.kind {
            IoEngineKind::IoUring => self.kick(ctx)?.pop().expect("one staged SQE"),
            _ => token,
        };
        Ok(self.wait(ctx, token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_sim::{DeviceKind, SimDevice};

    fn engine(kind: IoEngineKind) -> RawEngine {
        RawEngine::new(kind, BlockLayer::new(SimDevice::preset(DeviceKind::Nvme)))
    }

    fn one_write(kind: IoEngineKind, bytes: usize) -> u64 {
        let e = engine(kind);
        let mut ctx = Ctx::new();
        let c = e
            .rw_sync(
                &mut ctx,
                0,
                IoClass::Latency,
                IoRequest::write(0, vec![0u8; bytes], 1),
            )
            .unwrap();
        assert!(c.is_ok());
        ctx.now()
    }

    #[test]
    fn data_roundtrips_through_every_engine() {
        for kind in IoEngineKind::all() {
            let e = engine(kind);
            let mut ctx = Ctx::new();
            let data: Vec<u8> = (0..4096).map(|i| (i % 239) as u8).collect();
            e.rw_sync(
                &mut ctx,
                0,
                IoClass::Latency,
                IoRequest::write(64, data.clone(), 1),
            )
            .unwrap();
            let c = e
                .rw_sync(&mut ctx, 0, IoClass::Latency, IoRequest::read(64, 4096, 2))
                .unwrap();
            assert_eq!(c.result.unwrap(), data, "engine {}", kind.label());
        }
    }

    #[test]
    fn engine_latency_ordering_matches_fig6() {
        // At 4 KB / QD1 on NVMe: AIO > POSIX > libaio > io_uring.
        let aio = one_write(IoEngineKind::PosixAio, 4096);
        let posix = one_write(IoEngineKind::Posix, 4096);
        let libaio = one_write(IoEngineKind::Libaio, 4096);
        let uring = one_write(IoEngineKind::IoUring, 4096);
        assert!(aio > posix, "aio {aio} vs posix {posix}");
        assert!(
            posix > libaio || posix > uring,
            "posix must beat at most one async engine"
        );
        assert!(
            uring < libaio,
            "io_uring avoids the getevents syscall: {uring} vs {libaio}"
        );
    }

    #[test]
    fn large_requests_shrink_relative_gaps() {
        let small_gap = one_write(IoEngineKind::PosixAio, 4096) as f64
            / one_write(IoEngineKind::IoUring, 4096) as f64;
        let large_gap = one_write(IoEngineKind::PosixAio, 128 * 1024) as f64
            / one_write(IoEngineKind::IoUring, 128 * 1024) as f64;
        assert!(
            large_gap < small_gap,
            "software overhead must wash out at 128 KB: {large_gap:.3} vs {small_gap:.3}"
        );
    }

    #[test]
    fn uring_batches_one_syscall_for_many_sqes() {
        let e = engine(IoEngineKind::IoUring);
        let mut ctx = Ctx::new();
        for i in 0..8 {
            e.submit(
                &mut ctx,
                0,
                IoClass::Throughput,
                IoRequest::write(i * 8, vec![0u8; 512], i),
            )
            .unwrap();
        }
        let before = ctx.now();
        let tokens = e.kick(&mut ctx).unwrap();
        assert_eq!(tokens.len(), 8);
        // Exactly one syscall was charged in the kick (plus per-req block
        // layer work).
        let per_req = cost::BIO_ALLOC_NS
            + cost::BLOCK_LAYER_NS
            + cost::SCHED_DECIDE_NS
            + cost::DRIVER_SUBMIT_NS;
        assert_eq!(ctx.now() - before, cost::SYSCALL_NS + 8 * per_req);
        for t in tokens {
            assert!(e.wait(&mut ctx, t).is_ok());
        }
    }

    #[test]
    fn injected_device_faults_surface_through_every_engine() {
        for kind in IoEngineKind::all() {
            let dev = SimDevice::preset(DeviceKind::Nvme);
            dev.faults().set_period(1); // everything fails
            let e = RawEngine::new(kind, BlockLayer::new(dev));
            let mut ctx = Ctx::new();
            let c = e
                .rw_sync(
                    &mut ctx,
                    0,
                    IoClass::Latency,
                    IoRequest::write(0, vec![0u8; 512], 1),
                )
                .unwrap();
            assert!(
                c.result.is_err(),
                "{} must surface the media error",
                kind.label()
            );
        }
    }

    #[test]
    fn kick_is_noop_for_sync_engines() {
        let e = engine(IoEngineKind::Posix);
        let mut ctx = Ctx::new();
        assert!(e.kick(&mut ctx).unwrap().is_empty());
        assert_eq!(ctx.now(), 0);
    }
}
