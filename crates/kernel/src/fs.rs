//! Baseline kernel filesystems: ext4-, XFS- and F2FS-like.
//!
//! The paper compares LabFS/LabKVS against EXT4, XFS and F2FS (Figs. 7,
//! 9b, 9c). What matters for those comparisons is not byte-exact on-disk
//! formats but the *cost structure* of the kernel FS path:
//!
//! * every operation enters through a syscall and the VFS;
//! * metadata operations serialize on journaling/log locks — "the kernel
//!   filesystems scale very poorly, as they use locking in order to ensure
//!   the correctness of their data structures" (Fig. 7 discussion);
//! * data goes through the page cache (copy) and reaches the device via
//!   the block layer on writeback/fsync.
//!
//! [`KernelFs`] implements a real filesystem (hierarchical namespace, real
//! data blocks on the simulated device, journal region, fsync semantics)
//! parameterized by an [`FsProfile`] that captures how the three baselines
//! differ: journal-lock domains (ext4/F2FS global vs XFS per-allocation-
//! group), per-operation lock hold times, and log-structured vs in-place
//! allocation.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use labstor_sim::{BlockDevice, Ctx, Resource};

use crate::block::BlockLayer;
use crate::cost;
use crate::page_cache::{PageCache, PAGE_SIZE};
use crate::sched::IoClass;
use crate::vfs::{Cred, FileKind, Filesystem, Stat};

/// Filesystem errors (mapped to errno-style failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component or file not found (ENOENT).
    NotFound,
    /// File already exists (EEXIST).
    Exists,
    /// Path component is not a directory (ENOTDIR).
    NotDir,
    /// Operation on a directory where a file is required (EISDIR).
    IsDir,
    /// Directory not empty on rmdir (ENOTEMPTY).
    NotEmpty,
    /// Out of data blocks (ENOSPC).
    NoSpace,
    /// Permission denied (EACCES).
    Perm,
    /// Device failure during I/O (EIO).
    Io(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::Perm => write!(f, "permission denied"),
            FsError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Cost/locking profile distinguishing the baseline filesystems.
#[derive(Debug, Clone)]
pub struct FsProfile {
    /// Reported name ("ext4", "xfs", "f2fs").
    pub name: &'static str,
    /// Number of independent metadata-lock domains. ext4's jbd2 journal
    /// and F2FS's log are global (1); XFS has per-AG locks (16).
    pub lock_domains: usize,
    /// Virtual hold time of the metadata lock per namespace operation
    /// (journal handle start/stop, log reservation).
    pub meta_hold_ns: u64,
    /// CPU cost of creating an inode (init, bitmap, dirent insert).
    pub create_cpu_ns: u64,
    /// Journal bytes persisted per metadata operation at commit time.
    pub journal_bytes_per_op: usize,
    /// Log-structured data allocation (F2FS): strictly sequential LBAs,
    /// which HDDs love and which skips in-place extent lookup cost.
    pub log_structured: bool,
    /// Block-allocator lock hold per extent allocation.
    pub alloc_hold_ns: u64,
}

impl FsProfile {
    /// ext4-like: global jbd2 journal, moderate per-op costs.
    pub fn ext4_like() -> Self {
        FsProfile {
            name: "ext4",
            lock_domains: 1,
            meta_hold_ns: 9_000,
            create_cpu_ns: 3_500,
            journal_bytes_per_op: 256,
            log_structured: false,
            alloc_hold_ns: 350,
        }
    }

    /// XFS-like: per-allocation-group metadata locks, heavier single-op
    /// CPU (btree manipulation), larger log records.
    pub fn xfs_like() -> Self {
        FsProfile {
            name: "xfs",
            lock_domains: 16,
            meta_hold_ns: 10_000,
            create_cpu_ns: 4_000,
            journal_bytes_per_op: 384,
            log_structured: false,
            alloc_hold_ns: 400,
        }
    }

    /// F2FS-like: log-structured, global node/segment locks, cheaper
    /// allocation.
    pub fn f2fs_like() -> Self {
        FsProfile {
            name: "f2fs",
            lock_domains: 1,
            meta_hold_ns: 8_000,
            create_cpu_ns: 3_000,
            journal_bytes_per_op: 192,
            log_structured: true,
            alloc_hold_ns: 200,
        }
    }
}

const BLOCK_SECTORS: u64 = (PAGE_SIZE / labstor_sim::SECTOR_SIZE) as u64;
/// Blocks reserved for the journal at the front of the device.
const JOURNAL_BLOCKS: u64 = 4096;
/// Root inode number.
pub const ROOT_INO: u64 = 1;

struct Inode {
    kind: FileKind,
    size: u64,
    uid: u32,
    gid: u32,
    mode: u16,
    /// page index → data block number (sparse).
    blocks: HashMap<u64, u64>,
    /// Directory entries (dirs only).
    children: HashMap<String, u64>,
    nlink: u32,
}

impl Inode {
    fn new(kind: FileKind, uid: u32, gid: u32, mode: u16) -> Self {
        Inode {
            kind,
            size: 0,
            uid,
            gid,
            mode,
            blocks: HashMap::new(),
            children: HashMap::new(),
            nlink: 1,
        }
    }
}

/// A kernel filesystem instance over one block device.
pub struct KernelFs {
    profile: FsProfile,
    block: Arc<BlockLayer>,
    cache: PageCache,
    inodes: RwLock<HashMap<u64, Inode>>,
    next_ino: AtomicU64,
    /// Per-domain bump allocators over disjoint device regions.
    alloc_next: Vec<AtomicU64>,
    alloc_end: Vec<u64>,
    /// Virtual metadata-lock domains (journal handles / AG locks).
    meta_locks: Vec<Resource>,
    /// Virtual per-directory locks (i_rwsem), hashed by parent ino.
    dir_locks: Vec<Resource>,
    /// Virtual allocator locks, one per domain.
    alloc_locks: Vec<Resource>,
    /// Journal running state: pending record bytes + next journal block.
    journal: Mutex<JournalState>,
    /// Dirty-byte threshold that triggers foreground writeback.
    dirty_threshold: usize,
}

struct JournalState {
    pending_bytes: usize,
    next_block: u64,
}

impl KernelFs {
    /// Create a filesystem over `block` with `cache_bytes` of page cache.
    pub fn new(profile: FsProfile, block: Arc<BlockLayer>, cache_bytes: usize) -> Arc<Self> {
        Self::with_dirty_threshold(profile, block, cache_bytes, 64 << 20)
    }

    /// Like [`KernelFs::new`] with an explicit dirty threshold.
    pub fn with_dirty_threshold(
        profile: FsProfile,
        block: Arc<BlockLayer>,
        cache_bytes: usize,
        dirty_threshold: usize,
    ) -> Arc<Self> {
        let total_blocks = block.device().model().capacity_sectors() / BLOCK_SECTORS;
        let data_blocks = total_blocks.saturating_sub(JOURNAL_BLOCKS);
        let domains = profile.lock_domains.max(1);
        let per_domain = data_blocks / domains as u64;
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, Inode::new(FileKind::Dir, 0, 0, 0o755));
        let fs = KernelFs {
            cache: PageCache::new(cache_bytes),
            inodes: RwLock::new(inodes),
            next_ino: AtomicU64::new(ROOT_INO + 1),
            alloc_next: (0..domains)
                .map(|d| AtomicU64::new(JOURNAL_BLOCKS + d as u64 * per_domain))
                .collect(),
            alloc_end: (0..domains)
                .map(|d| JOURNAL_BLOCKS + (d as u64 + 1) * per_domain)
                .collect(),
            meta_locks: (0..domains).map(|_| Resource::new()).collect(),
            dir_locks: (0..64).map(|_| Resource::new()).collect(),
            alloc_locks: (0..domains).map(|_| Resource::new()).collect(),
            journal: Mutex::new(JournalState {
                pending_bytes: 0,
                next_block: 0,
            }),
            dirty_threshold,
            profile,
            block,
        };
        Arc::new(fs)
    }

    /// The filesystem's profile.
    pub fn profile(&self) -> &FsProfile {
        &self.profile
    }

    /// Dirty-byte threshold that triggers foreground writeback throttling
    /// (Linux's dirty_ratio analog). Sustained write workloads become
    /// device-bound once they cross it.
    pub fn set_dirty_threshold(&mut self, bytes: usize) {
        self.dirty_threshold = bytes;
    }

    /// Number of inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.inodes.read().len() // lock-class: fs.inodes
    }

    // ---- internal helpers ---------------------------------------------

    fn domain_of(&self, ino: u64) -> usize {
        (ino as usize) % self.meta_locks.len()
    }

    /// Serialize on the metadata (journal/log) lock of a domain.
    fn take_meta_lock(&self, ctx: &mut Ctx, domain: usize) {
        let (_, end) = self.meta_locks[domain].acquire(ctx.now(), self.profile.meta_hold_ns); // lock-class: fs.meta
        ctx.poll_until(end);
    }

    /// Serialize on the per-directory lock.
    fn take_dir_lock(&self, ctx: &mut Ctx, parent: u64) {
        let idx = (parent as usize) % self.dir_locks.len();
        let (_, end) = self.dir_locks[idx].acquire(ctx.now(), 300); // lock-class: fs.dir
        ctx.poll_until(end);
    }

    /// Append a journal record for one metadata operation.
    fn journal_append(&self, bytes: usize) {
        self.journal.lock().pending_bytes += bytes; // lock-class: fs.journal
    }

    /// Allocate one data block in `domain`. Charges the allocator lock.
    fn alloc_block(&self, ctx: &mut Ctx, domain: usize) -> Result<u64, FsError> {
        let (_, end) = self.alloc_locks[domain].acquire(ctx.now(), self.profile.alloc_hold_ns); // lock-class: fs.alloc
        ctx.poll_until(end);
        // Log-structured FSes allocate strictly sequentially from a single
        // head; in-place FSes allocate inside the inode's group.
        let d = if self.profile.log_structured {
            0
        } else {
            domain
        };
        let b = self.alloc_next[d].fetch_add(1, Ordering::Relaxed); // relaxed-ok: fresh-id allocation; atomicity alone suffices
        if b >= self.alloc_end[d] {
            return Err(FsError::NoSpace);
        }
        Ok(b)
    }

    /// Resolve a `/`-separated path to an inode, charging the VFS walk.
    fn resolve(&self, ctx: &mut Ctx, path: &str) -> Result<u64, FsError> {
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        cost::path_walk(ctx, parts.len().max(1));
        let inodes = self.inodes.read(); // lock-class: fs.inodes
        let mut cur = ROOT_INO;
        for part in parts {
            let node = inodes.get(&cur).ok_or(FsError::NotFound)?;
            if node.kind != FileKind::Dir {
                return Err(FsError::NotDir);
            }
            cur = *node.children.get(part).ok_or(FsError::NotFound)?;
        }
        Ok(cur)
    }

    /// Split a path into (parent inode, final component).
    fn resolve_parent<'p>(&self, ctx: &mut Ctx, path: &'p str) -> Result<(u64, &'p str), FsError> {
        let trimmed = path.trim_end_matches('/');
        let (dir, name) = match trimmed.rfind('/') {
            Some(i) => (&trimmed[..i], &trimmed[i + 1..]),
            None => ("", trimmed),
        };
        if name.is_empty() {
            return Err(FsError::Exists); // the root itself
        }
        let parent = self.resolve(ctx, dir)?;
        Ok((parent, name))
    }

    fn make_node(
        &self,
        ctx: &mut Ctx,
        path: &str,
        kind: FileKind,
        mode: u16,
        cred: Cred,
    ) -> Result<u64, FsError> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        self.take_dir_lock(ctx, parent);
        self.take_meta_lock(ctx, self.domain_of(parent));
        ctx.advance(self.profile.create_cpu_ns);
        let mut inodes = self.inodes.write(); // lock-class: fs.inodes
        let pnode = inodes.get(&parent).ok_or(FsError::NotFound)?;
        if pnode.kind != FileKind::Dir {
            return Err(FsError::NotDir);
        }
        if !cred.allows(pnode.uid, pnode.gid, pnode.mode, 0o2) {
            return Err(FsError::Perm);
        }
        if pnode.children.contains_key(name) {
            return Err(FsError::Exists);
        }
        let ino = self.next_ino.fetch_add(1, Ordering::Relaxed); // relaxed-ok: fresh-id allocation; atomicity alone suffices
        inodes.insert(ino, Inode::new(kind, cred.uid, cred.gid, mode));
        inodes
            .get_mut(&parent)
            .expect("parent present")
            .children
            .insert(name.to_string(), ino);
        drop(inodes);
        self.journal_append(self.profile.journal_bytes_per_op);
        Ok(ino)
    }

    /// Write back a set of dirty pages through the block layer, merging
    /// pages that map to contiguous device blocks into single requests —
    /// the block layer's plug/merge behavior (its cost is part of
    /// `BLOCK_LAYER_NS`).
    fn writeback(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pages: Vec<crate::page_cache::Evicted>,
    ) -> Result<(), FsError> {
        // Resolve block numbers, dropping pages of unlinked inodes.
        let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
        {
            let inodes = self.inodes.read(); // lock-class: fs.inodes
            let mut resolved: Vec<(u64, labstor_ipc::BufHandle)> = pages
                .into_iter()
                .filter_map(|p| {
                    let (ino, pgidx) = p.key;
                    inodes
                        .get(&ino)
                        .and_then(|n| n.blocks.get(&pgidx))
                        .map(|&b| (b, p.data))
                })
                .collect();
            resolved.sort_by_key(|(b, _)| *b);
            for (b, data) in resolved {
                match runs.last_mut() {
                    Some((start, buf)) if *start + (buf.len() / PAGE_SIZE) as u64 == b => {
                        buf.extend_from_slice(data.as_slice());
                    }
                    _ => runs.push((b, data.as_slice().to_vec())),
                }
            }
        }
        for (blockno, buf) in runs {
            self.block
                .sync_write(ctx, core, IoClass::Throughput, blockno * BLOCK_SECTORS, buf)
                .map_err(|e| FsError::Io(e.to_string()))?;
        }
        Ok(())
    }

    /// Flush pending journal records sequentially into the journal region.
    fn journal_commit(&self, ctx: &mut Ctx, core: usize) -> Result<(), FsError> {
        let (bytes, start_block) = {
            let mut j = self.journal.lock(); // lock-class: fs.journal
            let bytes = j.pending_bytes;
            j.pending_bytes = 0;
            let blocks = bytes.div_ceil(PAGE_SIZE) as u64;
            let start = j.next_block;
            j.next_block = (j.next_block + blocks) % JOURNAL_BLOCKS;
            (bytes, start)
        };
        if bytes == 0 {
            return Ok(());
        }
        let mut remaining = bytes;
        let mut block_no = start_block;
        while remaining > 0 {
            let n = remaining.min(PAGE_SIZE);
            self.block
                .sync_write(
                    ctx,
                    core,
                    IoClass::Latency,
                    (block_no % JOURNAL_BLOCKS) * BLOCK_SECTORS,
                    vec![0u8; PAGE_SIZE],
                )
                .map_err(|e| FsError::Io(e.to_string()))?;
            block_no += 1;
            remaining -= n;
        }
        Ok(())
    }
}

impl Filesystem for KernelFs {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn create(
        &self,
        ctx: &mut Ctx,
        _core: usize,
        path: &str,
        mode: u16,
        cred: Cred,
    ) -> Result<u64, FsError> {
        self.make_node(ctx, path, FileKind::File, mode, cred)
    }

    fn mkdir(
        &self,
        ctx: &mut Ctx,
        _core: usize,
        path: &str,
        mode: u16,
        cred: Cred,
    ) -> Result<u64, FsError> {
        self.make_node(ctx, path, FileKind::Dir, mode, cred)
    }

    fn lookup(&self, ctx: &mut Ctx, path: &str) -> Result<u64, FsError> {
        self.resolve(ctx, path)
    }

    fn write(
        &self,
        ctx: &mut Ctx,
        core: usize,
        ino: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<usize, FsError> {
        // Allocate backing blocks for any new pages.
        let first_pg = offset / PAGE_SIZE as u64;
        let last_pg = (offset + data.len() as u64).div_ceil(PAGE_SIZE as u64);
        let domain = self.domain_of(ino);
        {
            // Collect missing pages under the read lock, then allocate.
            let missing: Vec<u64> = {
                let inodes = self.inodes.read(); // lock-class: fs.inodes
                let node = inodes.get(&ino).ok_or(FsError::NotFound)?;
                if node.kind == FileKind::Dir {
                    return Err(FsError::IsDir);
                }
                (first_pg..last_pg)
                    .filter(|p| !node.blocks.contains_key(p))
                    .collect()
            };
            if !missing.is_empty() {
                let mut allocated = Vec::with_capacity(missing.len());
                for _ in &missing {
                    allocated.push(self.alloc_block(ctx, domain)?);
                }
                let mut inodes = self.inodes.write(); // lock-class: fs.inodes
                let node = inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
                for (p, b) in missing.into_iter().zip(allocated) {
                    node.blocks.entry(p).or_insert(b);
                }
            }
        }
        // Copy into the page cache.
        let evicted = self.cache.write(ctx, ino, offset, data);
        self.writeback(ctx, core, evicted)?;
        // Update size.
        {
            let mut inodes = self.inodes.write(); // lock-class: fs.inodes
            let node = inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
            node.size = node.size.max(offset + data.len() as u64);
        }
        // Foreground writeback throttling past the dirty threshold.
        if self.cache.dirty_bytes() > self.dirty_threshold {
            let dirty = self.cache.take_dirty(ctx, None);
            self.writeback(ctx, core, dirty)?;
        }
        Ok(data.len())
    }

    fn read(
        &self,
        ctx: &mut Ctx,
        core: usize,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize, FsError> {
        let size = {
            let inodes = self.inodes.read(); // lock-class: fs.inodes
            let node = inodes.get(&ino).ok_or(FsError::NotFound)?;
            if node.kind == FileKind::Dir {
                return Err(FsError::IsDir);
            }
            node.size
        };
        if offset >= size {
            return Ok(0);
        }
        let n = buf.len().min((size - offset) as usize);
        let block = &self.block;
        let inodes = &self.inodes;
        let mut io_err = None;
        let res = self
            .cache
            .read(ctx, ino, offset, &mut buf[..n], |ctx, pgidx, page| {
                let blockno = {
                    let map = inodes.read(); // lock-class: fs.inodes
                    map.get(&ino).and_then(|nd| nd.blocks.get(&pgidx)).copied()
                };
                match blockno {
                    Some(b) => match block.sync_read(
                        ctx,
                        core,
                        IoClass::Latency,
                        b * BLOCK_SECTORS,
                        PAGE_SIZE,
                    ) {
                        Ok(c) => match c.result {
                            Ok(data) => {
                                page.copy_from_slice(&data);
                                true
                            }
                            Err(e) => {
                                io_err = Some(FsError::Io(e.to_string()));
                                false
                            }
                        },
                        Err(e) => {
                            io_err = Some(FsError::Io(e.to_string()));
                            false
                        }
                    },
                    // Hole: reads as zeroes.
                    None => true,
                }
            });
        match res {
            Ok(_) => Ok(n),
            Err(()) => Err(io_err.unwrap_or(FsError::Io("page fill failed".into()))),
        }
    }

    fn unlink(&self, ctx: &mut Ctx, _core: usize, path: &str, cred: Cred) -> Result<(), FsError> {
        let (parent, name) = self.resolve_parent(ctx, path)?;
        self.take_dir_lock(ctx, parent);
        self.take_meta_lock(ctx, self.domain_of(parent));
        ctx.advance(self.profile.create_cpu_ns / 2);
        let mut inodes = self.inodes.write(); // lock-class: fs.inodes
        let pnode = inodes.get(&parent).ok_or(FsError::NotFound)?;
        if !cred.allows(pnode.uid, pnode.gid, pnode.mode, 0o2) {
            return Err(FsError::Perm);
        }
        let ino = *pnode.children.get(name).ok_or(FsError::NotFound)?;
        if let Some(node) = inodes.get(&ino) {
            if node.kind == FileKind::Dir && !node.children.is_empty() {
                return Err(FsError::NotEmpty);
            }
        }
        inodes
            .get_mut(&parent)
            .expect("parent present")
            .children
            .remove(name);
        inodes.remove(&ino);
        drop(inodes);
        self.cache.invalidate(ino);
        self.journal_append(self.profile.journal_bytes_per_op);
        Ok(())
    }

    fn rename(
        &self,
        ctx: &mut Ctx,
        _core: usize,
        from: &str,
        to: &str,
        cred: Cred,
    ) -> Result<(), FsError> {
        let (fparent, fname) = self.resolve_parent(ctx, from)?;
        let (tparent, tname) = self.resolve_parent(ctx, to)?;
        self.take_dir_lock(ctx, fparent.min(tparent));
        if fparent != tparent {
            self.take_dir_lock(ctx, fparent.max(tparent));
        }
        self.take_meta_lock(ctx, self.domain_of(fparent));
        ctx.advance(self.profile.create_cpu_ns / 2);
        let mut inodes = self.inodes.write(); // lock-class: fs.inodes
        for parent in [fparent, tparent] {
            let p = inodes.get(&parent).ok_or(FsError::NotFound)?;
            if !cred.allows(p.uid, p.gid, p.mode, 0o2) {
                return Err(FsError::Perm);
            }
        }
        let ino = *inodes
            .get(&fparent)
            .and_then(|p| p.children.get(fname))
            .ok_or(FsError::NotFound)?;
        // POSIX: renaming a file onto itself succeeds and does nothing.
        if fparent == tparent && fname == tname {
            return Ok(());
        }
        // Replace any existing target (dropping its inode), then move.
        let replaced = inodes
            .get_mut(&tparent)
            .expect("checked")
            .children
            .insert(tname.to_string(), ino);
        inodes
            .get_mut(&fparent)
            .expect("checked")
            .children
            .remove(fname);
        if let Some(old) = replaced {
            if old != ino {
                inodes.remove(&old);
                drop(inodes);
                self.cache.invalidate(old);
            }
        }
        self.journal_append(self.profile.journal_bytes_per_op);
        Ok(())
    }

    fn stat(&self, ctx: &mut Ctx, path: &str) -> Result<Stat, FsError> {
        let ino = self.resolve(ctx, path)?;
        ctx.advance(200);
        let inodes = self.inodes.read(); // lock-class: fs.inodes
        let node = inodes.get(&ino).ok_or(FsError::NotFound)?;
        Ok(Stat {
            ino,
            kind: node.kind,
            size: node.size,
            uid: node.uid,
            gid: node.gid,
            mode: node.mode,
            nlink: node.nlink,
        })
    }

    fn readdir(&self, ctx: &mut Ctx, path: &str) -> Result<Vec<String>, FsError> {
        let ino = self.resolve(ctx, path)?;
        let inodes = self.inodes.read(); // lock-class: fs.inodes
        let node = inodes.get(&ino).ok_or(FsError::NotFound)?;
        if node.kind != FileKind::Dir {
            return Err(FsError::NotDir);
        }
        ctx.advance(100 * node.children.len().max(1) as u64);
        Ok(node.children.keys().cloned().collect())
    }

    fn truncate(&self, ctx: &mut Ctx, _core: usize, ino: u64, size: u64) -> Result<(), FsError> {
        self.take_meta_lock(ctx, self.domain_of(ino));
        let old_size;
        {
            let mut inodes = self.inodes.write(); // lock-class: fs.inodes
            let node = inodes.get_mut(&ino).ok_or(FsError::NotFound)?;
            if node.kind == FileKind::Dir {
                return Err(FsError::IsDir);
            }
            old_size = node.size;
            node.size = size;
            let keep = size.div_ceil(PAGE_SIZE as u64);
            node.blocks.retain(|&pg, _| pg < keep);
        }
        if size < old_size {
            // Stale cached bytes beyond the new EOF must disappear: zero
            // the tail of the partial EOF page and drop whole pages past it
            // (i_size truncation semantics).
            let keep = size.div_ceil(PAGE_SIZE as u64);
            self.cache.invalidate_from(ino, keep);
            let tail = (size % PAGE_SIZE as u64) as usize;
            if tail != 0 {
                let zero_to = (old_size.min(keep * PAGE_SIZE as u64) - size) as usize;
                if zero_to > 0 {
                    self.cache.write(ctx, ino, size, &vec![0u8; zero_to]);
                }
            }
        }
        self.journal_append(self.profile.journal_bytes_per_op / 2);
        Ok(())
    }

    fn fsync(&self, ctx: &mut Ctx, core: usize, ino: u64) -> Result<(), FsError> {
        let dirty = self.cache.take_dirty(ctx, Some(ino));
        self.writeback(ctx, core, dirty)?;
        self.journal_commit(ctx, core)?;
        self.block
            .sync_flush(ctx, core)
            .map_err(|e| FsError::Io(e.to_string()))
    }

    fn sync(&self, ctx: &mut Ctx, core: usize) -> Result<(), FsError> {
        let dirty = self.cache.take_dirty(ctx, None);
        self.writeback(ctx, core, dirty)?;
        self.journal_commit(ctx, core)?;
        self.block
            .sync_flush(ctx, core)
            .map_err(|e| FsError::Io(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_sim::{DeviceKind, DeviceModel, SimDevice};

    fn fs(profile: FsProfile) -> Arc<KernelFs> {
        let dev = SimDevice::new(DeviceModel::preset(DeviceKind::Nvme));
        KernelFs::new(profile, BlockLayer::new(dev), 16 << 20)
    }

    fn root() -> Cred {
        Cred { uid: 0, gid: 0 }
    }

    #[test]
    fn create_write_read_roundtrip() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        let ino = f.create(&mut ctx, 0, "/a.txt", 0o644, root()).unwrap();
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        assert_eq!(f.write(&mut ctx, 0, ino, 0, &data).unwrap(), data.len());
        let mut out = vec![0u8; data.len()];
        assert_eq!(f.read(&mut ctx, 0, ino, 0, &mut out).unwrap(), data.len());
        assert_eq!(out, data);
    }

    #[test]
    fn read_survives_fsync_and_cache_invalidation() {
        // Data must round-trip through the real device, not just the cache.
        let f = fs(FsProfile::xfs_like());
        let mut ctx = Ctx::new();
        let ino = f.create(&mut ctx, 0, "/b", 0o644, root()).unwrap();
        let data = vec![42u8; 3 * PAGE_SIZE];
        f.write(&mut ctx, 0, ino, 0, &data).unwrap();
        f.fsync(&mut ctx, 0, ino).unwrap();
        f.cache.invalidate(ino);
        let mut out = vec![0u8; data.len()];
        f.read(&mut ctx, 0, ino, 0, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn directories_nest() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        f.mkdir(&mut ctx, 0, "/d", 0o755, root()).unwrap();
        f.mkdir(&mut ctx, 0, "/d/e", 0o755, root()).unwrap();
        f.create(&mut ctx, 0, "/d/e/f", 0o644, root()).unwrap();
        assert!(f.lookup(&mut ctx, "/d/e/f").is_ok());
        assert_eq!(f.readdir(&mut ctx, "/d").unwrap(), vec!["e".to_string()]);
    }

    #[test]
    fn duplicate_create_rejected() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        f.create(&mut ctx, 0, "/x", 0o644, root()).unwrap();
        assert_eq!(
            f.create(&mut ctx, 0, "/x", 0o644, root()),
            Err(FsError::Exists)
        );
    }

    #[test]
    fn missing_path_is_not_found() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        assert_eq!(f.lookup(&mut ctx, "/nope"), Err(FsError::NotFound));
        assert_eq!(
            f.create(&mut ctx, 0, "/no/dir/file", 0o644, root()),
            Err(FsError::NotFound)
        );
    }

    #[test]
    fn unlink_removes_and_stat_reflects() {
        let f = fs(FsProfile::f2fs_like());
        let mut ctx = Ctx::new();
        let ino = f.create(&mut ctx, 0, "/gone", 0o644, root()).unwrap();
        f.write(&mut ctx, 0, ino, 0, &[1u8; 100]).unwrap();
        let st = f.stat(&mut ctx, "/gone").unwrap();
        assert_eq!((st.size, st.kind), (100, FileKind::File));
        f.unlink(&mut ctx, 0, "/gone", root()).unwrap();
        assert_eq!(f.lookup(&mut ctx, "/gone"), Err(FsError::NotFound));
    }

    #[test]
    fn rmdir_nonempty_rejected() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        f.mkdir(&mut ctx, 0, "/d", 0o755, root()).unwrap();
        f.create(&mut ctx, 0, "/d/f", 0o644, root()).unwrap();
        assert_eq!(f.unlink(&mut ctx, 0, "/d", root()), Err(FsError::NotEmpty));
    }

    #[test]
    fn permissions_enforced_on_create() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        // Root dir is 0755 owned by root: a non-root user cannot create.
        let user = Cred {
            uid: 1000,
            gid: 1000,
        };
        assert_eq!(
            f.create(&mut ctx, 0, "/denied", 0o644, user),
            Err(FsError::Perm)
        );
    }

    #[test]
    fn truncate_shrinks() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        let ino = f.create(&mut ctx, 0, "/t", 0o644, root()).unwrap();
        f.write(&mut ctx, 0, ino, 0, &vec![9u8; 3 * PAGE_SIZE])
            .unwrap();
        f.truncate(&mut ctx, 0, ino, 10).unwrap();
        assert_eq!(f.stat(&mut ctx, "/t").unwrap().size, 10);
        let mut out = vec![0u8; 100];
        assert_eq!(f.read(&mut ctx, 0, ino, 0, &mut out).unwrap(), 10);
    }

    #[test]
    fn sparse_holes_read_zero() {
        let f = fs(FsProfile::ext4_like());
        let mut ctx = Ctx::new();
        let ino = f.create(&mut ctx, 0, "/s", 0o644, root()).unwrap();
        // Write only the third page; pages 0-1 are holes.
        f.write(&mut ctx, 0, ino, 2 * PAGE_SIZE as u64, &[5u8; PAGE_SIZE])
            .unwrap();
        let mut out = vec![0xFFu8; PAGE_SIZE];
        f.read(&mut ctx, 0, ino, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn metadata_lock_serializes_creates() {
        // Two actors creating at the same virtual instant on a 1-domain FS
        // must serialize on the journal lock.
        let f = fs(FsProfile::ext4_like());
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        f.create(&mut a, 0, "/f1", 0o644, root()).unwrap();
        f.create(&mut b, 1, "/f2", 0o644, root()).unwrap();
        let hold = f.profile().meta_hold_ns;
        assert!(
            b.now() >= a.now().min(2 * hold),
            "second create must queue behind the first's journal hold: a={} b={}",
            a.now(),
            b.now()
        );
    }

    #[test]
    fn xfs_domains_allow_parallel_metadata() {
        // With 16 lock domains, creates under different parents mostly
        // land in different domains and do not serialize.
        let f = fs(FsProfile::xfs_like());
        let mut setup = Ctx::new();
        f.mkdir(&mut setup, 0, "/d0", 0o755, root()).unwrap();
        f.mkdir(&mut setup, 0, "/d1", 0o755, root()).unwrap();
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        f.create(&mut a, 0, "/d0/f", 0o644, root()).unwrap();
        f.create(&mut b, 1, "/d1/f", 0o644, root()).unwrap();
        // d0 is ino 2, d1 is ino 3 → domains 2 and 3: independent locks.
        let serial = a.now() + f.profile().meta_hold_ns;
        assert!(b.now() < serial, "independent domains must not serialize");
    }

    #[test]
    fn f2fs_allocates_sequentially() {
        let f = fs(FsProfile::f2fs_like());
        let mut ctx = Ctx::new();
        let i1 = f.create(&mut ctx, 0, "/a", 0o644, root()).unwrap();
        let i2 = f.create(&mut ctx, 0, "/b", 0o644, root()).unwrap();
        f.write(&mut ctx, 0, i1, 0, &[1u8; PAGE_SIZE]).unwrap();
        f.write(&mut ctx, 0, i2, 0, &[2u8; PAGE_SIZE]).unwrap();
        f.write(&mut ctx, 0, i1, PAGE_SIZE as u64, &[3u8; PAGE_SIZE])
            .unwrap();
        let inodes = f.inodes.read();
        let b1: Vec<u64> = {
            let n = inodes.get(&i1).unwrap();
            let mut v: Vec<u64> = n.blocks.values().copied().collect();
            v.sort_unstable();
            v
        };
        let b2: Vec<u64> = inodes.get(&i2).unwrap().blocks.values().copied().collect();
        // All three blocks come from one sequential head.
        assert_eq!(b1, vec![JOURNAL_BLOCKS, JOURNAL_BLOCKS + 2]);
        assert_eq!(b2, vec![JOURNAL_BLOCKS + 1]);
    }
}
