//! The multi-queue block layer.
//!
//! Models the Linux `blk-mq` path: bio/request allocation, per-request
//! bookkeeping, an I/O scheduler decision, and dispatch into one of the
//! device's hardware queues. Completions are discovered either by blocking
//! (interrupt + wakeup — the default kernel path) or by polling.
//!
//! It also exposes the two submission entry points LabStor's Kernel Driver
//! LabMod gets from the Kernel Ops Manager (paper §III-F):
//!
//! * `submit_io_to_hctx` — place a request *directly* on a hardware
//!   dispatch queue, bypassing the block layer's allocation, bookkeeping
//!   and scheduling (the re-implemented `blk_mq_try_issue_directly`).
//! * `submit_io_to_blk` — the standard full block-layer path.
//! * `poll_completions` — poll-based completion reaping for pollable
//!   devices.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use labstor_sim::{BlockDevice, Completion, Ctx, DeviceError, IoRequest, SimDevice};

use crate::cost;
use crate::sched::{IoClass, KernelSched, NoopSched};

/// How a waiter discovers its completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionMode {
    /// Block until an interrupt wakes the task (POSIX, libaio, AIO):
    /// idle wait + interrupt + wakeup + context switch back in.
    Block,
    /// Busy-poll a completion ring in user memory (io_uring CQ): the
    /// interrupt still posts the completion but no wakeup/context switch
    /// is paid.
    PollCq,
    /// Pure driver polling of the device CQ (LabStor Kernel Driver LabMod,
    /// SPDK): no interrupt at all; the polling core is busy.
    DriverPoll,
}

/// The block layer instance fronting one device.
pub struct BlockLayer {
    dev: Arc<SimDevice>,
    sched: RwLock<Arc<dyn KernelSched>>,
    next_tag: AtomicU64,
    /// Completions reaped from a shared hardware queue on behalf of other
    /// waiters (the IRQ handler completes everything it finds).
    stash: Mutex<HashMap<u64, Completion>>,
}

impl BlockLayer {
    /// Wrap a device with the default NoOp scheduler.
    pub fn new(dev: Arc<SimDevice>) -> Arc<Self> {
        Self::with_sched(dev, Arc::new(NoopSched))
    }

    /// Wrap a device with an explicit scheduler.
    pub fn with_sched(dev: Arc<SimDevice>, sched: Arc<dyn KernelSched>) -> Arc<Self> {
        Arc::new(BlockLayer {
            dev,
            sched: RwLock::new(sched),
            next_tag: AtomicU64::new(1),
            stash: Mutex::new(HashMap::new()),
        })
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<SimDevice> {
        &self.dev
    }

    /// Swap the I/O scheduler (like writing to
    /// `/sys/block/<dev>/queue/scheduler`).
    pub fn set_sched(&self, sched: Arc<dyn KernelSched>) {
        *self.sched.write() = sched; // lock-class: block.sched
    }

    /// Name of the active scheduler.
    pub fn sched_name(&self) -> &'static str {
        self.sched.read().name() // lock-class: block.sched
    }

    /// Allocate a unique request tag.
    pub fn alloc_tag(&self) -> u64 {
        self.next_tag.fetch_add(1, Ordering::Relaxed) // relaxed-ok: fresh-id allocation; atomicity alone suffices
    }

    /// Full block-layer submission (`submit_io_to_blk`): bio allocation,
    /// bookkeeping, scheduler decision, driver dispatch. Returns the
    /// hardware queue chosen.
    pub fn submit_io_to_blk(
        &self,
        ctx: &mut Ctx,
        core: usize,
        class: IoClass,
        req: IoRequest,
    ) -> Result<usize, DeviceError> {
        ctx.advance(cost::BIO_ALLOC_NS + cost::BLOCK_LAYER_NS + cost::SCHED_DECIDE_NS);
        let qid = self
            .sched
            .read() // lock-class: block.sched
            .select_queue(&self.dev, core, req.len, class);
        ctx.advance(cost::DRIVER_SUBMIT_NS);
        self.dev.submit_at(qid, req, ctx.now())?;
        Ok(qid)
    }

    /// Direct hardware-queue submission (`submit_io_to_hctx`): bypasses
    /// allocation, bookkeeping and scheduling — the path LabStor's Kernel
    /// Driver LabMod uses. Only the doorbell/command packaging is paid.
    pub fn submit_io_to_hctx(
        &self,
        ctx: &mut Ctx,
        qid: usize,
        req: IoRequest,
    ) -> Result<(), DeviceError> {
        ctx.advance(cost::DRIVER_SUBMIT_NS);
        self.dev.submit_at(qid, req, ctx.now())
    }

    /// Poll-based completion reaping (`poll_completions`): reap up to
    /// `max` completions due by the caller's current time, without
    /// advancing it. No interrupt cost.
    pub fn poll_completions(&self, ctx: &Ctx, qid: usize, max: usize) -> Vec<Completion> {
        self.dev.poll(qid, ctx.now(), max)
    }

    /// Wait for the completion of `tag` on hardware queue `qid`.
    ///
    /// Shared queues are handled like Linux's IRQ path: whoever processes
    /// completions completes *everything* it finds, stashing other
    /// waiters' results. In-order CQ consumption (and therefore
    /// head-of-line blocking behind slow commands ahead of `tag`) is
    /// preserved by the device's queue model.
    pub fn wait_for_tag(
        &self,
        ctx: &mut Ctx,
        qid: usize,
        tag: u64,
        mode: CompletionMode,
    ) -> Completion {
        loop {
            // lock-class: block.stash
            if let Some(c) = self.stash.lock().remove(&tag) {
                self.charge_completion(ctx, c.done_at, mode);
                return c;
            }
            match self.dev.next_due(qid) {
                Some(due) => {
                    // Advance to the deadline of the CQ head, then reap.
                    match mode {
                        CompletionMode::Block => ctx.idle_until(due),
                        CompletionMode::PollCq | CompletionMode::DriverPoll => ctx.poll_until(due),
                    };
                    let batch = self.dev.poll(qid, ctx.now(), 64);
                    let mut found = None;
                    let mut stash = self.stash.lock(); // lock-class: block.stash
                    for c in batch {
                        if c.tag == tag {
                            found = Some(c);
                        } else {
                            stash.insert(c.tag, c);
                        }
                    }
                    drop(stash);
                    if let Some(c) = found {
                        self.charge_completion(ctx, c.done_at, mode);
                        return c;
                    }
                }
                None => {
                    // Nothing in flight here: another thread must be about
                    // to stash our completion (it reaped a batch containing
                    // it). Let it run.
                    std::thread::yield_now();
                }
            }
        }
    }

    fn charge_completion(&self, ctx: &mut Ctx, done_at: u64, mode: CompletionMode) {
        match mode {
            CompletionMode::Block => {
                ctx.idle_until(done_at);
                ctx.advance(cost::INTERRUPT_NS + cost::WAKEUP_NS + cost::CONTEXT_SWITCH_NS);
            }
            CompletionMode::PollCq => {
                ctx.poll_until(done_at);
                ctx.advance(cost::INTERRUPT_NS);
            }
            CompletionMode::DriverPoll => {
                ctx.poll_until(done_at);
            }
        }
    }

    /// Convenience: synchronous write through the full block layer
    /// (submit + blocked wait). Returns the completion.
    pub fn sync_write(
        &self,
        ctx: &mut Ctx,
        core: usize,
        class: IoClass,
        lba: u64,
        data: Vec<u8>,
    ) -> Result<Completion, DeviceError> {
        let tag = self.alloc_tag();
        let qid = self.submit_io_to_blk(ctx, core, class, IoRequest::write(lba, data, tag))?;
        Ok(self.wait_for_tag(ctx, qid, tag, CompletionMode::Block))
    }

    /// Convenience: synchronous read through the full block layer.
    pub fn sync_read(
        &self,
        ctx: &mut Ctx,
        core: usize,
        class: IoClass,
        lba: u64,
        len: usize,
    ) -> Result<Completion, DeviceError> {
        let tag = self.alloc_tag();
        let qid = self.submit_io_to_blk(ctx, core, class, IoRequest::read(lba, len, tag))?;
        Ok(self.wait_for_tag(ctx, qid, tag, CompletionMode::Block))
    }

    /// Flush barrier on the queue the scheduler picks for `core`.
    pub fn sync_flush(&self, ctx: &mut Ctx, core: usize) -> Result<(), DeviceError> {
        let tag = self.alloc_tag();
        let qid = self.submit_io_to_blk(ctx, core, IoClass::Throughput, IoRequest::flush(tag))?;
        self.wait_for_tag(ctx, qid, tag, CompletionMode::Block);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_sim::{DeviceKind, DeviceModel};

    fn layer() -> Arc<BlockLayer> {
        BlockLayer::new(SimDevice::new(DeviceModel::preset(DeviceKind::Nvme)))
    }

    #[test]
    fn sync_write_read_roundtrip() {
        let b = layer();
        let mut ctx = Ctx::new();
        let data: Vec<u8> = (0..4096).map(|i| (i % 241) as u8).collect();
        let c = b
            .sync_write(&mut ctx, 0, IoClass::Throughput, 64, data.clone())
            .unwrap();
        assert!(c.is_ok());
        let c = b
            .sync_read(&mut ctx, 0, IoClass::Throughput, 64, 4096)
            .unwrap();
        assert_eq!(c.result.unwrap(), data);
    }

    #[test]
    fn blocked_wait_charges_interrupt_path() {
        let b = layer();
        let mut ctx = Ctx::new();
        b.sync_write(&mut ctx, 0, IoClass::Latency, 0, vec![0u8; 4096])
            .unwrap();
        let sw_cost = cost::BIO_ALLOC_NS
            + cost::BLOCK_LAYER_NS
            + cost::SCHED_DECIDE_NS
            + cost::DRIVER_SUBMIT_NS
            + cost::INTERRUPT_NS
            + cost::WAKEUP_NS
            + cost::CONTEXT_SWITCH_NS;
        let media = b.device().model().transfer_ns(true, 4096);
        assert_eq!(ctx.now(), sw_cost + media);
        // The media portion was idle (interrupt-driven), software busy.
        assert_eq!(ctx.busy(), sw_cost);
    }

    #[test]
    fn hctx_path_is_cheaper_than_blk_path() {
        let b = layer();
        let mut full = Ctx::new();
        let mut direct = Ctx::new();
        let t1 = b.alloc_tag();
        b.submit_io_to_blk(
            &mut full,
            0,
            IoClass::Latency,
            IoRequest::write(0, vec![0u8; 512], t1),
        )
        .unwrap();
        let t2 = b.alloc_tag();
        b.submit_io_to_hctx(&mut direct, 1, IoRequest::write(8, vec![0u8; 512], t2))
            .unwrap();
        assert!(direct.now() < full.now());
        assert_eq!(direct.now(), cost::DRIVER_SUBMIT_NS);
    }

    #[test]
    fn driver_poll_mode_skips_interrupt() {
        let b = layer();
        let mut ctx = Ctx::new();
        let tag = b.alloc_tag();
        b.submit_io_to_hctx(&mut ctx, 0, IoRequest::write(0, vec![0u8; 4096], tag))
            .unwrap();
        let c = b.wait_for_tag(&mut ctx, 0, tag, CompletionMode::DriverPoll);
        assert!(c.is_ok());
        let media = b.device().model().transfer_ns(true, 4096);
        assert_eq!(ctx.now(), cost::DRIVER_SUBMIT_NS + media);
        // Polling burns the core: everything is busy time.
        assert_eq!(ctx.busy(), ctx.now());
    }

    #[test]
    fn shared_queue_stash_delivers_other_waiters_completion() {
        let b = layer();
        let mut a = Ctx::new();
        let t1 = b.alloc_tag();
        let t2 = b.alloc_tag();
        // Submit two commands on the same queue, then wait for the SECOND
        // first: the first gets stashed, and a later wait finds it.
        b.submit_io_to_hctx(&mut a, 0, IoRequest::write(0, vec![0u8; 512], t1))
            .unwrap();
        b.submit_io_to_hctx(&mut a, 0, IoRequest::write(8, vec![0u8; 512], t2))
            .unwrap();
        let c2 = b.wait_for_tag(&mut a, 0, t2, CompletionMode::DriverPoll);
        assert_eq!(c2.tag, t2);
        let c1 = b.wait_for_tag(&mut a, 0, t1, CompletionMode::DriverPoll);
        assert_eq!(c1.tag, t1);
    }

    #[test]
    fn scheduler_swap_takes_effect() {
        let b = layer();
        assert_eq!(b.sched_name(), "noop");
        b.set_sched(Arc::new(crate::sched::BlkSwitchSched::default()));
        assert_eq!(b.sched_name(), "blk-switch");
    }

    #[test]
    fn flush_completes() {
        let b = layer();
        let mut ctx = Ctx::new();
        b.sync_write(&mut ctx, 0, IoClass::Throughput, 0, vec![1u8; 512])
            .unwrap();
        b.sync_flush(&mut ctx, 0).unwrap();
    }
}
