//! The Virtual Filesystem layer: the kernel's syscall surface for files.
//!
//! Baseline workloads (FxMark, Filebench, LABIOS's POSIX backend) enter
//! here: every call charges a syscall crossing, resolves the mount, and
//! dispatches to the mounted [`Filesystem`]. Per-process fd tables
//! reproduce the open-modify-close discipline whose cost Fig. 9b contrasts
//! with LabKVS's single put/get.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use labstor_sim::Ctx;

use crate::cost;
use crate::fs::FsError;

/// Kernel-side credentials (the kernel has its own copy of the identity a
/// process carries; LabStor's IPC credentials convert into this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cred {
    /// User id.
    pub uid: u32,
    /// Primary group id.
    pub gid: u32,
}

impl Cred {
    /// The superuser.
    pub const ROOT: Cred = Cred { uid: 0, gid: 0 };

    /// Unix permission check against `(owner_uid, owner_gid, mode)`;
    /// `want` is an rwx bitmask (4=r, 2=w, 1=x).
    pub fn allows(&self, owner_uid: u32, owner_gid: u32, mode: u16, want: u16) -> bool {
        if self.uid == 0 {
            return true;
        }
        let bits = if self.uid == owner_uid {
            (mode >> 6) & 0o7
        } else if self.gid == owner_gid {
            (mode >> 3) & 0o7
        } else {
            mode & 0o7
        };
        bits & want == want
    }
}

/// What an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// Result of a `stat` call.
#[derive(Debug, Clone, Copy)]
pub struct Stat {
    /// Inode number.
    pub ino: u64,
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes.
    pub size: u64,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Permission bits.
    pub mode: u16,
    /// Hard link count.
    pub nlink: u32,
}

/// The interface every mountable filesystem implements (kernel baselines
/// here; FUSE-style adapters could too).
pub trait Filesystem: Send + Sync {
    /// Filesystem name (for reports).
    fn name(&self) -> &str;
    /// Create a regular file. Returns its inode.
    fn create(
        &self,
        ctx: &mut Ctx,
        core: usize,
        path: &str,
        mode: u16,
        cred: Cred,
    ) -> Result<u64, FsError>;
    /// Create a directory.
    fn mkdir(
        &self,
        ctx: &mut Ctx,
        core: usize,
        path: &str,
        mode: u16,
        cred: Cred,
    ) -> Result<u64, FsError>;
    /// Resolve a path to an inode.
    fn lookup(&self, ctx: &mut Ctx, path: &str) -> Result<u64, FsError>;
    /// Write at an offset. Returns bytes written.
    fn write(
        &self,
        ctx: &mut Ctx,
        core: usize,
        ino: u64,
        offset: u64,
        data: &[u8],
    ) -> Result<usize, FsError>;
    /// Read at an offset. Returns bytes read (short at EOF).
    fn read(
        &self,
        ctx: &mut Ctx,
        core: usize,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize, FsError>;
    /// Remove a file or empty directory.
    fn unlink(&self, ctx: &mut Ctx, core: usize, path: &str, cred: Cred) -> Result<(), FsError>;
    /// Rename a file or directory (replaces an existing target).
    fn rename(
        &self,
        ctx: &mut Ctx,
        core: usize,
        from: &str,
        to: &str,
        cred: Cred,
    ) -> Result<(), FsError>;
    /// Stat a path.
    fn stat(&self, ctx: &mut Ctx, path: &str) -> Result<Stat, FsError>;
    /// List a directory.
    fn readdir(&self, ctx: &mut Ctx, path: &str) -> Result<Vec<String>, FsError>;
    /// Set file size.
    fn truncate(&self, ctx: &mut Ctx, core: usize, ino: u64, size: u64) -> Result<(), FsError>;
    /// Persist one file's data and metadata.
    fn fsync(&self, ctx: &mut Ctx, core: usize, ino: u64) -> Result<(), FsError>;
    /// Persist everything.
    fn sync(&self, ctx: &mut Ctx, core: usize) -> Result<(), FsError>;
}

/// `open(2)` flags subset used by the workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenFlags {
    /// Create if missing (O_CREAT).
    pub create: bool,
    /// Truncate to zero on open (O_TRUNC).
    pub truncate: bool,
    /// All writes go to EOF (O_APPEND).
    pub append: bool,
}

/// VFS-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// No filesystem mounted for the path.
    NoMount(String),
    /// Bad file descriptor.
    BadFd(i32),
    /// Underlying filesystem error.
    Fs(FsError),
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NoMount(p) => write!(f, "no filesystem mounted for {p}"),
            VfsError::BadFd(fd) => write!(f, "bad file descriptor {fd}"),
            VfsError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VfsError {}

impl From<FsError> for VfsError {
    fn from(e: FsError) -> Self {
        VfsError::Fs(e)
    }
}

struct OpenFile {
    fs: Arc<dyn Filesystem>,
    ino: u64,
    pos: u64,
    append: bool,
}

#[derive(Default)]
struct FdTable {
    next_fd: i32,
    open: HashMap<i32, OpenFile>,
}

/// The VFS: mount table + per-process fd tables + the syscall surface.
#[derive(Default)]
pub struct Vfs {
    mounts: RwLock<Vec<(String, Arc<dyn Filesystem>)>>,
    tables: RwLock<HashMap<u32, FdTable>>,
}

impl Vfs {
    /// Empty VFS.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Mount `fs` at `prefix` (longest-prefix dispatch).
    pub fn mount(&self, prefix: &str, fs: Arc<dyn Filesystem>) {
        let mut mounts = self.mounts.write(); // lock-class: vfs.mounts
        mounts.push((prefix.trim_end_matches('/').to_string(), fs));
        mounts.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
    }

    /// Resolve a path to `(filesystem, fs-relative path)`.
    fn route<'p>(&self, path: &'p str) -> Result<(Arc<dyn Filesystem>, &'p str), VfsError> {
        let mounts = self.mounts.read(); // lock-class: vfs.mounts
        for (prefix, fs) in mounts.iter() {
            if let Some(rest) = path.strip_prefix(prefix.as_str()) {
                if rest.is_empty() || rest.starts_with('/') || prefix.is_empty() {
                    let rel = if rest.is_empty() { "/" } else { rest };
                    return Ok((fs.clone(), rel));
                }
            }
        }
        Err(VfsError::NoMount(path.to_string()))
    }

    fn with_fd<R>(
        &self,
        pid: u32,
        fd: i32,
        f: impl FnOnce(&mut OpenFile) -> R,
    ) -> Result<R, VfsError> {
        let mut tables = self.tables.write(); // lock-class: vfs.table
        let table = tables.get_mut(&pid).ok_or(VfsError::BadFd(fd))?;
        let file = table.open.get_mut(&fd).ok_or(VfsError::BadFd(fd))?;
        Ok(f(file))
    }

    /// `open(2)`. Returns a process-local fd.
    #[allow(clippy::too_many_arguments)] // mirrors the syscall surface
    pub fn open(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pid: u32,
        cred: Cred,
        path: &str,
        flags: OpenFlags,
        mode: u16,
    ) -> Result<i32, VfsError> {
        cost::syscall(ctx);
        let (fs, rel) = self.route(path)?;
        let ino = match fs.lookup(ctx, rel) {
            Ok(ino) => ino,
            Err(FsError::NotFound) if flags.create => fs.create(ctx, core, rel, mode, cred)?,
            Err(e) => return Err(e.into()),
        };
        if flags.truncate {
            fs.truncate(ctx, core, ino, 0)?;
        }
        // O_APPEND starts the cursor at EOF; each write then re-lands at
        // the position this fd's own writes advanced to.
        let pos = if flags.append {
            fs.stat(ctx, rel)?.size
        } else {
            0
        };
        let mut tables = self.tables.write(); // lock-class: vfs.table
        let table = tables.entry(pid).or_default();
        table.next_fd += 1;
        let fd = table.next_fd;
        table.open.insert(
            fd,
            OpenFile {
                fs,
                ino,
                pos,
                append: flags.append,
            },
        );
        Ok(fd)
    }

    /// `close(2)`.
    pub fn close(&self, ctx: &mut Ctx, pid: u32, fd: i32) -> Result<(), VfsError> {
        cost::syscall(ctx);
        let mut tables = self.tables.write(); // lock-class: vfs.table
        let table = tables.get_mut(&pid).ok_or(VfsError::BadFd(fd))?;
        table
            .open
            .remove(&fd)
            .map(|_| ())
            .ok_or(VfsError::BadFd(fd))
    }

    /// `write(2)` at the current position (or EOF with O_APPEND).
    pub fn write(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pid: u32,
        fd: i32,
        data: &[u8],
    ) -> Result<usize, VfsError> {
        cost::syscall(ctx);
        let (fs, ino, off) = self.with_fd(pid, fd, |f| (f.fs.clone(), f.ino, f.pos))?;
        let n = fs.write(ctx, core, ino, off, data)?;
        self.with_fd(pid, fd, |f| f.pos = off + n as u64)?;
        Ok(n)
    }

    /// `read(2)` at the current position.
    pub fn read(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pid: u32,
        fd: i32,
        buf: &mut [u8],
    ) -> Result<usize, VfsError> {
        cost::syscall(ctx);
        let (fs, ino, off) = self.with_fd(pid, fd, |f| (f.fs.clone(), f.ino, f.pos))?;
        let n = fs.read(ctx, core, ino, off, buf)?;
        self.with_fd(pid, fd, |f| f.pos = off + n as u64)?;
        Ok(n)
    }

    /// `pwrite(2)`: positional write, fd position unchanged.
    pub fn pwrite(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pid: u32,
        fd: i32,
        off: u64,
        data: &[u8],
    ) -> Result<usize, VfsError> {
        cost::syscall(ctx);
        let (fs, ino) = self.with_fd(pid, fd, |f| (f.fs.clone(), f.ino))?;
        Ok(fs.write(ctx, core, ino, off, data)?)
    }

    /// `pread(2)`: positional read.
    pub fn pread(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pid: u32,
        fd: i32,
        off: u64,
        buf: &mut [u8],
    ) -> Result<usize, VfsError> {
        cost::syscall(ctx);
        let (fs, ino) = self.with_fd(pid, fd, |f| (f.fs.clone(), f.ino))?;
        Ok(fs.read(ctx, core, ino, off, buf)?)
    }

    /// `lseek(2)` (SEEK_SET only — what the workloads use).
    pub fn seek(&self, ctx: &mut Ctx, pid: u32, fd: i32, pos: u64) -> Result<(), VfsError> {
        cost::syscall(ctx);
        self.with_fd(pid, fd, |f| f.pos = pos)
    }

    /// `fsync(2)`.
    pub fn fsync(&self, ctx: &mut Ctx, core: usize, pid: u32, fd: i32) -> Result<(), VfsError> {
        cost::syscall(ctx);
        let (fs, ino) = self.with_fd(pid, fd, |f| (f.fs.clone(), f.ino))?;
        Ok(fs.fsync(ctx, core, ino)?)
    }

    /// `ftruncate(2)`.
    pub fn ftruncate(
        &self,
        ctx: &mut Ctx,
        core: usize,
        pid: u32,
        fd: i32,
        size: u64,
    ) -> Result<(), VfsError> {
        cost::syscall(ctx);
        let (fs, ino) = self.with_fd(pid, fd, |f| (f.fs.clone(), f.ino))?;
        Ok(fs.truncate(ctx, core, ino, size)?)
    }

    /// `unlink(2)`.
    pub fn unlink(
        &self,
        ctx: &mut Ctx,
        core: usize,
        cred: Cred,
        path: &str,
    ) -> Result<(), VfsError> {
        cost::syscall(ctx);
        let (fs, rel) = self.route(path)?;
        Ok(fs.unlink(ctx, core, rel, cred)?)
    }

    /// `rename(2)`: both paths must resolve into the same mount.
    pub fn rename(
        &self,
        ctx: &mut Ctx,
        core: usize,
        cred: Cred,
        from: &str,
        to: &str,
    ) -> Result<(), VfsError> {
        cost::syscall(ctx);
        let (fs_a, rel_from) = self.route(from)?;
        let rel_from = rel_from.to_string();
        let (fs_b, rel_to) = self.route(to)?;
        let rel_to = rel_to.to_string();
        if !Arc::ptr_eq(&fs_a, &fs_b) {
            return Err(VfsError::Fs(FsError::Io(
                "cross-mount rename (EXDEV)".into(),
            )));
        }
        Ok(fs_a.rename(ctx, core, &rel_from, &rel_to, cred)?)
    }

    /// `mkdir(2)`.
    pub fn mkdir(
        &self,
        ctx: &mut Ctx,
        core: usize,
        cred: Cred,
        path: &str,
        mode: u16,
    ) -> Result<(), VfsError> {
        cost::syscall(ctx);
        let (fs, rel) = self.route(path)?;
        fs.mkdir(ctx, core, rel, mode, cred)?;
        Ok(())
    }

    /// `stat(2)`.
    pub fn stat(&self, ctx: &mut Ctx, path: &str) -> Result<Stat, VfsError> {
        cost::syscall(ctx);
        let (fs, rel) = self.route(path)?;
        Ok(fs.stat(ctx, rel)?)
    }

    /// `readdir(3)` (whole directory at once).
    pub fn readdir(&self, ctx: &mut Ctx, path: &str) -> Result<Vec<String>, VfsError> {
        cost::syscall(ctx);
        let (fs, rel) = self.route(path)?;
        Ok(fs.readdir(ctx, rel)?)
    }

    /// Duplicate a process's fd table into a child (fork/clone semantics;
    /// GenericFS intercepts the same calls on the LabStor side, §III-F).
    pub fn fork_fds(&self, parent: u32, child: u32) {
        let mut tables = self.tables.write(); // lock-class: vfs.table
        let copied: Option<FdTable> = tables.get(&parent).map(|t| FdTable {
            next_fd: t.next_fd,
            open: t
                .open
                .iter()
                .map(|(fd, f)| {
                    (
                        *fd,
                        OpenFile {
                            fs: f.fs.clone(),
                            ino: f.ino,
                            pos: f.pos,
                            append: f.append,
                        },
                    )
                })
                .collect(),
        });
        if let Some(t) = copied {
            tables.insert(child, t);
        }
    }

    /// Open fd count for a process.
    pub fn open_fds(&self, pid: u32) -> usize {
        self.tables
            .read() // lock-class: vfs.table
            .get(&pid)
            .map(|t| t.open.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockLayer;
    use crate::fs::{FsProfile, KernelFs};
    use labstor_sim::{DeviceKind, SimDevice};

    fn vfs() -> Arc<Vfs> {
        let v = Vfs::new();
        let dev = SimDevice::preset(DeviceKind::Nvme);
        let fs = KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(dev), 8 << 20);
        v.mount("/mnt", fs);
        v
    }

    #[test]
    fn open_write_read_close() {
        let v = vfs();
        let mut ctx = Ctx::new();
        let fd = v
            .open(
                &mut ctx,
                0,
                1,
                Cred::ROOT,
                "/mnt/hello",
                OpenFlags {
                    create: true,
                    ..Default::default()
                },
                0o644,
            )
            .unwrap();
        v.write(&mut ctx, 0, 1, fd, b"hello world").unwrap();
        v.seek(&mut ctx, 1, fd, 0).unwrap();
        let mut out = [0u8; 11];
        assert_eq!(v.read(&mut ctx, 0, 1, fd, &mut out).unwrap(), 11);
        assert_eq!(&out, b"hello world");
        v.close(&mut ctx, 1, fd).unwrap();
        assert_eq!(v.open_fds(1), 0);
    }

    #[test]
    fn unmounted_path_rejected() {
        let v = vfs();
        let mut ctx = Ctx::new();
        assert!(matches!(
            v.open(
                &mut ctx,
                0,
                1,
                Cred::ROOT,
                "/other/x",
                OpenFlags::default(),
                0
            ),
            Err(VfsError::NoMount(_))
        ));
    }

    #[test]
    fn bad_fd_rejected() {
        let v = vfs();
        let mut ctx = Ctx::new();
        assert_eq!(v.close(&mut ctx, 1, 42), Err(VfsError::BadFd(42)));
        let mut b = [0u8; 1];
        assert!(matches!(
            v.read(&mut ctx, 0, 1, 42, &mut b),
            Err(VfsError::BadFd(42))
        ));
    }

    #[test]
    fn positional_io_does_not_move_cursor() {
        let v = vfs();
        let mut ctx = Ctx::new();
        let fd = v
            .open(
                &mut ctx,
                0,
                1,
                Cred::ROOT,
                "/mnt/p",
                OpenFlags {
                    create: true,
                    ..Default::default()
                },
                0o644,
            )
            .unwrap();
        v.pwrite(&mut ctx, 0, 1, fd, 100, b"xyz").unwrap();
        let mut out = [0u8; 3];
        v.pread(&mut ctx, 0, 1, fd, 100, &mut out).unwrap();
        assert_eq!(&out, b"xyz");
        // Cursor still at 0: a plain write lands at the start.
        v.write(&mut ctx, 0, 1, fd, b"a").unwrap();
        v.pread(&mut ctx, 0, 1, fd, 0, &mut out[..1]).unwrap();
        assert_eq!(&out[..1], b"a");
    }

    #[test]
    fn fork_copies_fd_table() {
        let v = vfs();
        let mut ctx = Ctx::new();
        let fd = v
            .open(
                &mut ctx,
                0,
                1,
                Cred::ROOT,
                "/mnt/f",
                OpenFlags {
                    create: true,
                    ..Default::default()
                },
                0o644,
            )
            .unwrap();
        v.fork_fds(1, 2);
        assert_eq!(v.open_fds(2), 1);
        // Child can use the inherited fd.
        v.write(&mut ctx, 0, 2, fd, b"child").unwrap();
    }

    #[test]
    fn mount_precedence_longest_prefix() {
        let v = Vfs::new();
        let d1 = SimDevice::preset(DeviceKind::Nvme);
        let d2 = SimDevice::preset(DeviceKind::Nvme);
        let fs1 = KernelFs::new(FsProfile::ext4_like(), BlockLayer::new(d1), 1 << 20);
        let fs2 = KernelFs::new(FsProfile::xfs_like(), BlockLayer::new(d2), 1 << 20);
        v.mount("/a", fs1);
        v.mount("/a/b", fs2);
        let (fs, rel) = v.route("/a/b/file").unwrap();
        assert_eq!(fs.name(), "xfs");
        assert_eq!(rel, "/file");
        let (fs, _) = v.route("/a/file").unwrap();
        assert_eq!(fs.name(), "ext4");
    }

    #[test]
    fn each_syscall_charges_crossing() {
        let v = vfs();
        let mut ctx = Ctx::new();
        let before = ctx.now();
        let _ = v.stat(&mut ctx, "/mnt/");
        assert!(ctx.now() >= before + cost::SYSCALL_NS);
    }
}
