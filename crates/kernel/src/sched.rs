//! In-kernel I/O schedulers (Fig. 8 baselines).
//!
//! The paper integrates two schedulers both in the kernel and as LabMods:
//!
//! * **NoOp** — "maps I/O requests to device queues based on the CPU core
//!   the request originated" — Linux's `none` elevator with the default
//!   core→hctx mapping.
//! * **blk-switch** \[20\] — "takes into consideration the load emplaced
//!   on a queue": it steers requests away from congested hardware queues,
//!   eliminating head-of-line blocking between throughput- and
//!   latency-bound applications sharing a core.
//!
//! The scheduler picks a hardware queue; head-of-line blocking then
//! emerges naturally because completion queues are consumed in order (see
//! `labstor_sim::queue::HwQueue::poll`).

use std::sync::Arc;

use labstor_sim::{BlockDevice, SimDevice};

/// Priority class a submitter can attach to a request. Blk-switch uses it
/// to separate latency-sensitive from throughput traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoClass {
    /// Small, latency-critical requests (QD1 style).
    Latency,
    /// Bulk throughput requests.
    Throughput,
}

/// An in-kernel I/O scheduler: selects the hardware queue a request is
/// dispatched to.
pub trait KernelSched: Send + Sync {
    /// Scheduler name (reported in bench output).
    fn name(&self) -> &'static str;

    /// Pick the hardware queue for a request of `bytes` issued from
    /// `core` with class `class`.
    fn select_queue(
        &self,
        dev: &Arc<SimDevice>,
        core: usize,
        bytes: usize,
        class: IoClass,
    ) -> usize;
}

/// NoOp: static core→queue mapping, no load awareness.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSched;

impl KernelSched for NoopSched {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn select_queue(
        &self,
        dev: &Arc<SimDevice>,
        core: usize,
        _bytes: usize,
        _class: IoClass,
    ) -> usize {
        core % dev.num_queues()
    }
}

/// Blk-switch-like: latency-class requests are steered to the least-loaded
/// queue; throughput requests keep core affinity unless their home queue
/// is heavily congested, in which case they spill to the least-loaded one
/// (app-steering + req-steering from the blk-switch paper).
#[derive(Debug)]
pub struct BlkSwitchSched {
    /// Queue depth above which throughput requests spill over.
    pub congestion_threshold: usize,
    /// Rotates tie-breaks so concurrent latency flows spread out.
    cursor: std::sync::atomic::AtomicUsize,
    /// Bulk-traffic history (app steering).
    history: BulkHistory,
}

impl Default for BlkSwitchSched {
    fn default() -> Self {
        BlkSwitchSched {
            congestion_threshold: 64,
            cursor: std::sync::atomic::AtomicUsize::new(0),
            history: BulkHistory::new(64),
        }
    }
}

impl BlkSwitchSched {
    /// Least-loaded queue, weighing the *service-channel group* a queue
    /// maps to (queues sharing a channel share its backlog) ahead of the
    /// queue's own depth, with a rotating scan start to spread ties.
    pub(crate) fn least_loaded(&self, dev: &Arc<SimDevice>) -> usize {
        least_loaded_queue(
            dev,
            &self.history,
            self.cursor
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed), // relaxed-ok: fresh-id allocation; atomicity alone suffices
        )
    }
}

/// Per-queue bulk-traffic history: blk-switch's *app steering* keeps
/// latency requests off queues (and their service channels) that
/// throughput applications use, even between bursts when instantaneous
/// depth looks low.
#[derive(Debug)]
pub struct BulkHistory {
    per_queue: Vec<std::sync::atomic::AtomicU64>,
}

impl BulkHistory {
    /// History over `queues` queues.
    pub fn new(queues: usize) -> Self {
        BulkHistory {
            per_queue: (0..queues.max(1))
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        }
    }

    /// Record bulk bytes submitted to `qid`.
    pub fn record(&self, qid: usize, bytes: usize) {
        let slot = &self.per_queue[qid % self.per_queue.len()];
        // EMA-ish: decay an eighth, add the new sample.
        let cur = slot.load(std::sync::atomic::Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
                                                                   // relaxed-ok: single-writer EMA, approximate by design
        slot.store(
            cur - cur / 8 + bytes as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    }

    /// Recent bulk pressure on `qid`.
    pub fn pressure(&self, qid: usize) -> u64 {
        // relaxed-ok: stat counter; readers tolerate lag
        self.per_queue[qid % self.per_queue.len()].load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Shared steering helper (also used by the userspace scheduler LabMod):
/// pick the queue whose *service-channel group* carries the least bulk
/// history and the least instantaneous depth.
pub fn least_loaded_queue(dev: &Arc<SimDevice>, history: &BulkHistory, rotate: usize) -> usize {
    let n = dev.num_queues();
    let c = dev.model().channels.max(1);
    let mut group_depth = vec![0usize; c];
    let mut group_bulk = vec![0u64; c];
    for q in 0..n {
        group_depth[q % c] += dev.queue_depth(q);
        group_bulk[q % c] += history.pressure(q);
    }
    (0..n)
        .map(|i| (rotate + i) % n)
        .min_by_key(|&q| (group_bulk[q % c], group_depth[q % c], dev.queue_depth(q)))
        .unwrap_or(0)
}

impl KernelSched for BlkSwitchSched {
    fn name(&self) -> &'static str {
        "blk-switch"
    }

    fn select_queue(
        &self,
        dev: &Arc<SimDevice>,
        core: usize,
        bytes: usize,
        class: IoClass,
    ) -> usize {
        match class {
            IoClass::Latency => self.least_loaded(dev),
            IoClass::Throughput => {
                let home = core % dev.num_queues();
                let qid = if dev.queue_depth(home) > self.congestion_threshold {
                    self.least_loaded(dev)
                } else {
                    home
                };
                self.history.record(qid, bytes);
                qid
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labstor_sim::{BlockDevice, DeviceKind, DeviceModel, IoRequest};

    fn nvme() -> Arc<SimDevice> {
        SimDevice::new(DeviceModel::preset(DeviceKind::Nvme))
    }

    #[test]
    fn noop_maps_by_core() {
        let d = nvme();
        let s = NoopSched;
        let n = d.num_queues();
        assert_eq!(s.select_queue(&d, 0, 4096, IoClass::Latency), 0);
        assert_eq!(s.select_queue(&d, 3, 4096, IoClass::Throughput), 3 % n);
        assert_eq!(s.select_queue(&d, n + 1, 4096, IoClass::Latency), 1);
    }

    #[test]
    fn blk_switch_steers_latency_away_from_congestion() {
        let d = nvme();
        let s = BlkSwitchSched::default();
        // Congest queue 0 with a pile of writes.
        for i in 0..8 {
            d.submit_at(0, IoRequest::write(i * 8, vec![0u8; 512], i), 0)
                .unwrap();
        }
        let q = s.select_queue(&d, 0, 4096, IoClass::Latency);
        assert_ne!(q, 0, "latency request must avoid the congested queue");
    }

    #[test]
    fn blk_switch_keeps_throughput_affinity_when_uncongested() {
        let d = nvme();
        let s = BlkSwitchSched::default();
        assert_eq!(
            s.select_queue(&d, 5, 65536, IoClass::Throughput),
            5 % d.num_queues()
        );
    }

    #[test]
    fn blk_switch_spills_throughput_past_threshold() {
        let d = nvme();
        let s = BlkSwitchSched {
            congestion_threshold: 4,
            ..Default::default()
        };
        for i in 0..6 {
            d.submit_at(2, IoRequest::write(i * 8, vec![0u8; 512], i), 0)
                .unwrap();
        }
        let q = s.select_queue(&d, 2, 65536, IoClass::Throughput);
        assert_ne!(q, 2, "congested home queue must spill");
    }
}
