//! The kernel page cache model.
//!
//! Buffered I/O in Linux lands in the page cache: reads fill 4 KB pages
//! from the device and copy them to user space; writes copy user data into
//! pages and mark them dirty for later writeback. Fig. 4a of the paper
//! charges 17% of a 4 KB write to "the page cache … due to data copying" —
//! the copy and lookup costs here are calibrated to that.
//!
//! Concurrency: real data is protected by a real mutex; *modeled* lock
//! contention (what multiple threads would pay on the testbed) is charged
//! through a virtual [`Resource`], so scalability shapes survive the
//! virtual-time design (see `labstor_sim::time`).

use std::collections::HashMap;

use labstor_ipc::lockwitness::{OrderedMutex, PAGECACHE_SHARD};
use labstor_ipc::{BufHandle, BufferPool, PoolConfig, TenantId};
use labstor_sim::{Ctx, Resource};

use crate::cost;

/// Page size in bytes (x86-64).
pub const PAGE_SIZE: usize = 4096;

/// Key of a cached page: (inode, page index).
pub type PageKey = (u64, u64);

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// An LRU map with O(1) touch/insert/evict, built on a slab of doubly
/// linked entries. Used by the page cache and reusable for other caches.
pub struct LruMap<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: std::hash::Hash + Eq + Clone, V> LruMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        LruMap {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Get a value and mark it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx].value.as_mut()
    }

    /// Peek without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&i| self.slab[i].value.as_ref())
    }

    /// Insert (or replace) a value as most-recently-used. Returns the
    /// previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return self.slab[idx].value.replace(value);
        }
        let idx = if let Some(i) = self.free.pop() {
            self.slab[i] = Entry {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }

    /// Remove a key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slab[idx].value.take()
    }

    /// Evict the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slab[idx].key.clone();
        self.map.remove(&key);
        self.unlink(idx);
        self.free.push(idx);
        let value = self.slab[idx].value.take().expect("live entry has a value");
        Some((key, value))
    }

    /// Iterate over `(key, &value)` pairs in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map
            .iter()
            .filter_map(|(k, &idx)| self.slab[idx].value.as_ref().map(|v| (k, v)))
    }
}

impl<K: std::hash::Hash + Eq + Clone, V> Default for LruMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A cached page: a shared-memory pool buffer plus dirty state. The
/// handle is what zero-copy readers clone — a hit is a refcount bump.
pub struct Page {
    /// Page contents (a full-page pool buffer).
    pub data: BufHandle,
    /// Set when the page holds data not yet written back.
    pub dirty: bool,
}

/// A dirty page handed back to the filesystem for writeback. `data` is a
/// refcounted view of the page bytes (no deep copy at eviction); if the
/// page is written again before writeback completes, copy-on-write in
/// [`PageCache::write`] preserves this snapshot.
pub struct Evicted {
    /// (inode, page index) of the evicted page.
    pub key: PageKey,
    /// Page contents at eviction time.
    pub data: BufHandle,
}

/// One cache shard: its own LRU, real mutex and virtual mapping lock.
struct Shard {
    inner: OrderedMutex<LruMap<PageKey, Page>>,
    /// Virtual-time serialization of tree/LRU manipulation (mapping lock).
    lock: Resource,
}

/// The page cache: 4 KB pages with dirty tracking, sharded by page-key
/// hash into independent LRUs so the (zero-copy-cheap) hit path is not
/// serialized on one global lock. [`PageCache::new`] keeps the historical
/// single-shard shape; [`PageCache::with_shards`] spreads both the real
/// mutex and the *modeled* lock contention (the per-shard [`Resource`])
/// across N shards, which is what `bench_datapath`'s shard sweep measures.
pub struct PageCache {
    shards: Box<[Shard]>,
    /// Per-shard page budget (total capacity / shard count).
    per_shard_pages: usize,
    /// Eviction batching: a shard may overshoot its budget by this many
    /// pages before an insert triggers eviction, which then drains the
    /// whole overshoot in one locked pass (amortized eviction). 0 =
    /// evict-exactly-at-capacity (the single-shard historical behavior).
    evict_slack: usize,
    /// Backing store for page buffers.
    pool: BufferPool,
}

impl PageCache {
    /// Cache bounded at `capacity_bytes` (rounded down to whole pages,
    /// minimum one page). Single shard, exact eviction — the historical
    /// shape.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::build(capacity_bytes, 1, 0)
    }

    /// Sharded cache: `shards` independent LRUs keyed by page hash, with
    /// batched eviction (a shard evicts only after overshooting its
    /// budget by a small slack, then drains the overshoot in one pass).
    pub fn with_shards(capacity_bytes: usize, shards: usize) -> Self {
        Self::build(capacity_bytes, shards.max(1), 8)
    }

    fn build(capacity_bytes: usize, shards: usize, evict_slack: usize) -> Self {
        let capacity_pages = (capacity_bytes / PAGE_SIZE).max(1);
        let per_shard_pages = capacity_pages.div_ceil(shards).max(1);
        // Pool budget: every resident page, the eviction slack, plus
        // headroom for pages pinned by in-flight reader handles and
        // copy-on-write doubling.
        let slots = capacity_pages + shards * evict_slack + 256;
        let pool = BufferPool::new(PoolConfig {
            classes: vec![(PAGE_SIZE, slots)],
        });
        PageCache {
            shards: (0..shards)
                .map(|_| Shard {
                    inner: OrderedMutex::new(&PAGECACHE_SHARD, LruMap::new()),
                    lock: Resource::new(),
                })
                .collect(),
            per_shard_pages,
            evict_slack,
            pool,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The pool backing this cache's pages (stats/tests).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().len()).sum() // lock-class: pagecache.maplock
    }

    /// True when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard owning `key` (FNV-1a over the key bytes).
    fn shard_of(&self, key: &PageKey) -> &Shard {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.0.to_le_bytes().into_iter().chain(key.1.to_le_bytes()) {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Charge the per-page mapping-lock cost, serialized across threads
    /// *within a shard* (shards contend independently).
    fn charge_lock(shard: &Shard, ctx: &mut Ctx) {
        let (_, end) = shard.lock.acquire(ctx.now(), cost::PAGE_LOOKUP_NS); // lock-class: pagecache.maplock
        ctx.poll_until(end);
    }

    /// Pop a zeroed full-page buffer straight off the pool billed to
    /// `tenant`, or `None` when the pool is dry (or the tenant is over
    /// its byte quota — shedding its own clean pages uncharges it).
    fn pool_page_for(&self, tenant: TenantId) -> Option<BufHandle> {
        let mut h = self.pool.alloc_for(tenant, PAGE_SIZE)?;
        h.write_with(|b| b.fill(0));
        Some(h)
    }

    /// Evict clean LRU pages from `inner` until a pool slot frees up,
    /// attributing every victim to its owning tenant (pool-dry exhaustion
    /// is no longer anonymous). Stops at the first dirty victim (pushed
    /// back as most-recent so it is not lost) or when the shard runs out
    /// of pages. The freed slot is re-allocated billed to `tenant`.
    fn shed_clean(&self, inner: &mut LruMap<PageKey, Page>, tenant: TenantId) -> Option<BufHandle> {
        while !inner.is_empty() {
            match inner.pop_lru() {
                Some((k, p)) if p.dirty => {
                    inner.insert(k, p);
                    return None;
                }
                Some((_, p)) => {
                    self.pool.note_tenant_shed(p.data.tenant());
                    drop(p);
                    if let Some(h) = self.pool_page_for(tenant) {
                        return Some(h);
                    }
                }
                None => return None,
            }
        }
        None
    }

    /// The tenant-aware shed pass: evict the *offending* tenant's clean
    /// pages first — the allocator whose pressure dried the pool gives up
    /// its own cache before anyone else's (and, when it is over its byte
    /// quota, shedding its own pages is the only thing that uncharges it).
    /// Falls back to the global LRU pass when the offender has nothing
    /// clean resident.
    fn shed_offender_first(
        &self,
        inner: &mut LruMap<PageKey, Page>,
        tenant: TenantId,
    ) -> Option<BufHandle> {
        if !tenant.is_none() {
            let own: Vec<PageKey> = inner
                .iter()
                .filter(|(_, p)| !p.dirty && p.data.tenant() == tenant)
                .map(|(k, _)| *k)
                .collect();
            for k in own {
                if let Some(p) = inner.remove(&k) {
                    self.pool.note_tenant_shed(p.data.tenant());
                    drop(p);
                    if let Some(h) = self.pool_page_for(tenant) {
                        return Some(h);
                    }
                }
            }
        }
        self.shed_clean(inner, tenant)
    }

    /// Allocate a zeroed full-page buffer from the pool, evicting clean
    /// pages if the pool is pinned dry by in-flight reader handles.
    ///
    /// Must be called with NO shard lock held: the pool-dry fallback
    /// locks `shard.inner` itself (and the shim mutex is non-reentrant),
    /// and on a second failure walks every other shard shedding clean
    /// pages — reclaimable memory elsewhere in the cache must not strand
    /// this shard on the exhaustion panic.
    fn alloc_page_for(&self, shard: &Shard, tenant: TenantId) -> BufHandle {
        if let Some(h) = self.pool_page_for(tenant) {
            return h;
        }
        // Pool dry: shed clean pages from this shard to unpin slots.
        {
            let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
            if let Some(h) = self.shed_offender_first(&mut inner, tenant) {
                return h;
            }
        }
        // Still dry: clean pages resident in other shards pin pool slots
        // too — shed those before giving up. One shard lock is held at a
        // time, so there is no lock-order cycle.
        for other in self.shards.iter() {
            if std::ptr::eq(other, shard) {
                continue;
            }
            let mut inner = other.inner.lock(); // lock-class: pagecache.maplock
            if let Some(h) = self.shed_offender_first(&mut inner, tenant) {
                return h;
            }
        }
        self.pool_page_for(tenant)
            .expect("page-cache pool exhausted: too many pinned page handles")
    }

    /// Evict down to the shard budget once it overshoots budget + slack,
    /// collecting dirty victims for writeback. One locked pass drains the
    /// whole overshoot (batched eviction).
    fn evict_overflow(&self, inner: &mut LruMap<PageKey, Page>, evicted: &mut Vec<Evicted>) {
        if inner.len() <= self.per_shard_pages + self.evict_slack {
            return;
        }
        while inner.len() > self.per_shard_pages {
            match inner.pop_lru() {
                Some((k, p)) if p.dirty => evicted.push(Evicted {
                    key: k,
                    data: p.data,
                }),
                Some(_) => {}
                None => break,
            }
        }
    }

    /// Copy `data` into the cache at byte `offset` of `ino`, marking pages
    /// dirty. Returns dirty pages evicted to make room (for writeback);
    /// clean victims are silently dropped. Untenanted: see
    /// [`PageCache::write_for`].
    pub fn write(&self, ctx: &mut Ctx, ino: u64, offset: u64, data: &[u8]) -> Vec<Evicted> {
        self.write_for(ctx, TenantId::NONE, ino, offset, data)
    }

    /// [`PageCache::write`] billed to `tenant`: freshly allocated pages
    /// (including copy-on-write replacements) are charged to the tenant's
    /// pool accounting, and a pool-dry shed pass evicts the tenant's own
    /// clean pages first.
    pub fn write_for(
        &self,
        ctx: &mut Ctx,
        tenant: TenantId,
        ino: u64,
        offset: u64,
        data: &[u8],
    ) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let pgidx = abs / PAGE_SIZE as u64;
            let pgoff = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - pgoff).min(data.len() - pos);
            let key = (ino, pgidx);
            let shard = self.shard_of(&key);
            Self::charge_lock(shard, ctx);
            cost::copy(ctx, n);
            let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
            let needs_fresh = match inner.get(&key) {
                Some(page) => !page.data.is_unique(),
                None => true,
            };
            if needs_fresh {
                // The page is missing or pinned by reader snapshots.
                // Release the shard lock before allocating — the pool-dry
                // fallback in alloc_page takes shard locks itself — then
                // re-look-up, since the world may have changed meanwhile.
                drop(inner);
                let mut fresh = self.alloc_page_for(shard, tenant);
                inner = shard.inner.lock(); // lock-class: pagecache.maplock
                match inner.get(&key) {
                    None => {
                        inner.insert(
                            key,
                            Page {
                                data: fresh,
                                dirty: false,
                            },
                        );
                    }
                    Some(page) if !page.data.is_unique() => {
                        // Copy-on-write: readers keep their snapshot.
                        labstor_ipc::note_payload_copy(PAGE_SIZE);
                        // copy-ok: copy-on-write of a page pinned by reader handles; counted via note_payload_copy
                        let ok = fresh.fill(page.data.as_slice());
                        debug_assert!(ok, "fresh page is unique");
                        page.data = fresh;
                    }
                    // The last reader snapshot died while we were
                    // unlocked; `fresh` drops back to the pool.
                    Some(_) => {}
                }
            }
            let page = inner.get(&key).expect("present under the held lock");
            let wrote = page
                .data
                .write_with(|b| b[pgoff..pgoff + n].copy_from_slice(&data[pos..pos + n]));
            debug_assert!(wrote, "page unique under the held lock");
            page.dirty = true;
            self.evict_overflow(&mut inner, &mut evicted);
            drop(inner);
            pos += n;
        }
        evicted
    }

    /// Store a whole, page-aligned pooled buffer as the new contents of a
    /// page — the zero-copy write path: the cache takes a refcount on the
    /// caller's buffer instead of copying it. Only the mapping-lock cost
    /// is charged (no byte copy happens). `buf` must be exactly one page.
    pub fn write_page_buf(
        &self,
        ctx: &mut Ctx,
        ino: u64,
        pgidx: u64,
        buf: BufHandle,
    ) -> Vec<Evicted> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut evicted = Vec::new();
        let key = (ino, pgidx);
        let shard = self.shard_of(&key);
        Self::charge_lock(shard, ctx);
        let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
        inner.insert(
            key,
            Page {
                data: buf,
                dirty: true,
            },
        );
        self.evict_overflow(&mut inner, &mut evicted);
        evicted
    }

    /// Read `buf.len()` bytes at byte `offset` of `ino`. For each page
    /// miss, `fill` fetches the page from the device; returning `false`
    /// aborts the read. On success returns the number of misses; `Err`
    /// carries no payload because the filesystem owns the real error (it
    /// is produced inside `fill`).
    ///
    /// This is the legacy *copying* read (bytes leave the cache through a
    /// memcpy into `buf`); the zero-copy path is [`PageCache::read_page`].
    #[allow(clippy::result_unit_err)]
    pub fn read(
        &self,
        ctx: &mut Ctx,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
        fill: impl FnMut(&mut Ctx, u64, &mut [u8]) -> bool,
    ) -> Result<usize, ()> {
        self.read_for(ctx, TenantId::NONE, ino, offset, buf, fill)
    }

    /// [`PageCache::read`] billed to `tenant`: miss pages are charged to
    /// the tenant's pool accounting (see [`PageCache::write_for`]).
    #[allow(clippy::result_unit_err)]
    pub fn read_for(
        &self,
        ctx: &mut Ctx,
        tenant: TenantId,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
        mut fill: impl FnMut(&mut Ctx, u64, &mut [u8]) -> bool,
    ) -> Result<usize, ()> {
        let mut misses = 0usize;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let pgidx = abs / PAGE_SIZE as u64;
            let pgoff = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - pgoff).min(buf.len() - pos);
            let key = (ino, pgidx);
            let shard = self.shard_of(&key);
            Self::charge_lock(shard, ctx);
            let hit = {
                let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
                match inner.get(&key) {
                    Some(page) => {
                        labstor_ipc::note_payload_copy(n);
                        buf[pos..pos + n].copy_from_slice(&page.data.as_slice()[pgoff..pgoff + n]);
                        true
                    }
                    None => false,
                }
            };
            if !hit {
                misses += 1;
                let mut data = self.alloc_page_for(shard, tenant);
                let mut filled = true;
                data.write_with(|b| filled = fill(ctx, pgidx, b));
                if !filled {
                    return Err(());
                }
                buf[pos..pos + n].copy_from_slice(&data.as_slice()[pgoff..pgoff + n]);
                let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
                inner.insert(key, Page { data, dirty: false });
                while inner.len() > self.per_shard_pages {
                    // Dirty LRU victims must not be lost: push them back as
                    // most-recent and stop (the cache temporarily exceeds
                    // capacity until writeback — dirty-ratio throttling).
                    match inner.pop_lru() {
                        Some((k, p)) if p.dirty => {
                            inner.insert(k, p);
                            break;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            cost::copy(ctx, n);
            pos += n;
        }
        Ok(misses)
    }

    /// Zero-copy read of one whole page: a hit clones the page's buffer
    /// handle (a refcount bump — no byte copy, no copy cost charged); a
    /// miss allocates a pool page, runs `fill` to fetch it, caches it and
    /// returns a handle. Returns `(handle, was_hit)`; `Err` mirrors
    /// [`PageCache::read`] (the fill callback owns the real error).
    #[allow(clippy::result_unit_err)]
    pub fn read_page(
        &self,
        ctx: &mut Ctx,
        ino: u64,
        pgidx: u64,
        fill: impl FnMut(&mut Ctx, u64, &mut [u8]) -> bool,
    ) -> Result<(BufHandle, bool), ()> {
        self.read_page_for(ctx, TenantId::NONE, ino, pgidx, fill)
    }

    /// [`PageCache::read_page`] billed to `tenant` (see
    /// [`PageCache::read_for`]).
    #[allow(clippy::result_unit_err)]
    pub fn read_page_for(
        &self,
        ctx: &mut Ctx,
        tenant: TenantId,
        ino: u64,
        pgidx: u64,
        mut fill: impl FnMut(&mut Ctx, u64, &mut [u8]) -> bool,
    ) -> Result<(BufHandle, bool), ()> {
        let key = (ino, pgidx);
        let shard = self.shard_of(&key);
        Self::charge_lock(shard, ctx);
        {
            let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
            if let Some(page) = inner.get(&key) {
                // copy-ok: BufHandle clone is a refcount bump, not a byte copy
                return Ok((page.data.clone(), true));
            }
        }
        let mut data = self.alloc_page_for(shard, tenant);
        let mut filled = true;
        data.write_with(|b| filled = fill(ctx, pgidx, b));
        if !filled {
            return Err(());
        }
        // copy-ok: BufHandle clone is a refcount bump, not a byte copy
        let handle = data.clone();
        let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
        inner.insert(key, Page { data, dirty: false });
        while inner.len() > self.per_shard_pages {
            match inner.pop_lru() {
                Some((k, p)) if p.dirty => {
                    inner.insert(k, p);
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        drop(inner);
        Ok((handle, false))
    }

    /// Take every dirty page belonging to `ino` (fsync) or to all inodes
    /// (`None`, sync). Pages are marked clean and returned in page order
    /// for writeback. Each snapshot is a refcount bump, not a deep copy —
    /// a racing re-write of the page copy-on-writes, leaving the
    /// writeback snapshot intact.
    pub fn take_dirty(&self, ctx: &mut Ctx, ino: Option<u64>) -> Vec<Evicted> {
        let mut out: Vec<Evicted> = Vec::new();
        for shard in &self.shards {
            Self::charge_lock(shard, ctx);
            let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
            let mut keys: Vec<PageKey> = inner
                .iter()
                .filter(|(k, p)| ino.is_none_or(|i| k.0 == i) && p.dirty)
                .map(|(k, _)| *k)
                .collect();
            keys.sort_unstable();
            for k in keys {
                let page = inner.get(&k).expect("key just seen");
                page.dirty = false;
                out.push(Evicted {
                    key: k,
                    // copy-ok: BufHandle clone is a refcount bump, not a byte copy
                    data: page.data.clone(),
                });
            }
        }
        out.sort_unstable_by_key(|e| e.key);
        out
    }

    /// Drop every cached page of `ino` at or beyond `from_page`
    /// (truncate invalidation).
    pub fn invalidate_from(&self, ino: u64, from_page: u64) {
        for shard in &self.shards {
            let mut inner = shard.inner.lock(); // lock-class: pagecache.maplock
            let keys: Vec<PageKey> = inner
                .iter()
                .map(|(k, _)| *k)
                .filter(|k| k.0 == ino && k.1 >= from_page)
                .collect();
            for k in keys {
                inner.remove(&k);
            }
        }
    }

    /// Drop every page of `ino` (unlink / cache invalidation).
    pub fn invalidate(&self, ino: u64) {
        self.invalidate_from(ino, 0);
    }

    /// Bytes of dirty data currently cached.
    pub fn dirty_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().iter().filter(|(_, p)| p.dirty).count() * PAGE_SIZE) // lock-class: pagecache.maplock
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression harness for the PR 5 self-deadlock: `write`'s pool-dry
    /// fallback used to call back into the shard while the caller still
    /// held that shard's (non-reentrant) mutex. The shards now live on
    /// `OrderedMutex`, so re-enacting the reverted shape — acquiring a
    /// shard the thread already holds — panics in the witness instead of
    /// deadlocking silently. If the fix is ever reverted, the cache tests
    /// die here with both backtraces rather than hanging CI.
    #[test]
    #[cfg(debug_assertions)]
    fn witness_catches_reverted_pool_dry_shard_reentry() {
        let cache = PageCache::new(4 * PAGE_SIZE);
        let shard = &cache.shards[0];
        let _held = shard.inner.lock(); // write()'s guard in the bug shape
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The reverted alloc_page fallback re-locking the same shard.
            let _reacquired = shard.inner.lock();
        }))
        .expect_err("witness must catch the re-entrant shard acquisition");
        let msg = err.downcast::<String>().map(|s| *s).unwrap_or_default();
        assert!(msg.contains("self-deadlock"), "{msg}");
        assert!(msg.contains("pagecache.shard"), "{msg}");
    }

    #[test]
    fn lru_insert_get_evict() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        l.insert(1, 10);
        l.insert(2, 20);
        l.insert(3, 30);
        assert_eq!(l.get(&1), Some(&mut 10)); // touch 1
        let (k, v) = l.pop_lru().unwrap();
        assert_eq!((k, v), (2, 20)); // 2 is now least-recent
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_replace_returns_old() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        l.insert(1, 10);
        assert_eq!(l.insert(1, 11), Some(10));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn lru_remove_and_reuse_slot() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        l.insert(1, 10);
        l.insert(2, 20);
        assert_eq!(l.remove(&1), Some(10));
        assert_eq!(l.remove(&1), None);
        l.insert(3, 30); // reuses the freed slot
        assert_eq!(l.peek(&3), Some(&30));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_pop_on_empty() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        assert!(l.pop_lru().is_none());
        l.insert(1, 1);
        l.pop_lru().unwrap();
        assert!(l.pop_lru().is_none());
    }

    #[test]
    fn cache_write_then_read_hits() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let data: Vec<u8> = (0..8192).map(|i| (i % 250) as u8).collect();
        let ev = pc.write(&mut ctx, 1, 100, &data);
        assert!(ev.is_empty());
        let mut out = vec![0u8; 8192];
        let misses = pc
            .read(&mut ctx, 1, 100, &mut out, |_, _, _| {
                panic!("must not miss")
            })
            .unwrap();
        assert_eq!(misses, 0);
        assert_eq!(out, data);
    }

    #[test]
    fn cache_miss_calls_fill() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let mut out = vec![0u8; 4096];
        let misses = pc
            .read(&mut ctx, 9, 0, &mut out, |_, pgidx, page| {
                assert_eq!(pgidx, 0);
                page.fill(7);
                true
            })
            .unwrap();
        assert_eq!(misses, 1);
        assert!(out.iter().all(|&b| b == 7));
        // Second read hits.
        let misses = pc
            .read(&mut ctx, 9, 0, &mut out, |_, _, _| panic!("cached"))
            .unwrap();
        assert_eq!(misses, 0);
    }

    #[test]
    fn failed_fill_aborts_read() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let mut out = vec![0u8; 4096];
        assert!(pc.read(&mut ctx, 9, 0, &mut out, |_, _, _| false).is_err());
    }

    #[test]
    fn eviction_returns_dirty_pages() {
        let pc = PageCache::new(2 * PAGE_SIZE); // 2-page cache
        let mut ctx = Ctx::new();
        let page = vec![1u8; PAGE_SIZE];
        assert!(pc.write(&mut ctx, 1, 0, &page).is_empty());
        assert!(pc.write(&mut ctx, 1, PAGE_SIZE as u64, &page).is_empty());
        let ev = pc.write(&mut ctx, 1, 2 * PAGE_SIZE as u64, &page);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, (1, 0)); // the oldest page went out
    }

    #[test]
    fn take_dirty_per_inode() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 1, 0, &[1u8; PAGE_SIZE]);
        pc.write(&mut ctx, 2, 0, &[2u8; PAGE_SIZE]);
        let d1 = pc.take_dirty(&mut ctx, Some(1));
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].key.0, 1);
        // Pages are now clean: second take returns nothing.
        assert!(pc.take_dirty(&mut ctx, Some(1)).is_empty());
        // Inode 2 still dirty via the "all" path.
        assert_eq!(pc.take_dirty(&mut ctx, None).len(), 1);
    }

    #[test]
    fn invalidate_drops_pages() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 5, 0, &[1u8; PAGE_SIZE]);
        pc.invalidate(5);
        assert!(pc.is_empty());
    }

    #[test]
    fn write_charges_copy_cost() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 1, 0, &[0u8; 4096]);
        assert!(ctx.now() >= cost::copy_ns(4096));
    }

    #[test]
    fn sharded_cache_preserves_contents_and_capacity() {
        let pc = PageCache::with_shards(64 * PAGE_SIZE, 8);
        assert_eq!(pc.shard_count(), 8);
        let mut ctx = Ctx::new();
        for i in 0..128u64 {
            let page = vec![(i % 251) as u8; PAGE_SIZE];
            pc.write(&mut ctx, 1, i * PAGE_SIZE as u64, &page);
        }
        // Batched eviction keeps residency near capacity: never more than
        // capacity + total slack.
        assert!(pc.len() <= 64 + 8 * 8, "len {} over budget", pc.len());
        // Recently written pages still readable and correct.
        let mut out = vec![0u8; PAGE_SIZE];
        pc.read(&mut ctx, 1, 127 * PAGE_SIZE as u64, &mut out, |_, _, _| {
            panic!("page 127 must be resident")
        })
        .unwrap();
        assert!(out.iter().all(|&b| b == 127));
    }

    #[test]
    fn read_page_hit_is_refcount_bump() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let page = vec![9u8; PAGE_SIZE];
        pc.write(&mut ctx, 3, 0, &page);
        let copies_before = labstor_ipc::payload_copies();
        let t0 = ctx.now();
        let (h, hit) = pc
            .read_page(&mut ctx, 3, 0, |_, _, _| panic!("hit"))
            .unwrap();
        assert!(hit);
        assert_eq!(h.as_slice(), &page[..]);
        // No payload copy, and no copy cost charged: only the lookup.
        assert_eq!(labstor_ipc::payload_copies(), copies_before);
        assert!(ctx.now() - t0 < cost::copy_ns(PAGE_SIZE));
    }

    #[test]
    fn write_after_snapshot_copy_on_writes() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 4, 0, &[1u8; PAGE_SIZE]);
        let (snap, _) = pc
            .read_page(&mut ctx, 4, 0, |_, _, _| panic!("hit"))
            .unwrap();
        // Re-write the page while the snapshot handle is live.
        pc.write(&mut ctx, 4, 0, &[2u8; PAGE_SIZE]);
        // The snapshot still sees the old bytes; the cache sees the new.
        assert!(snap.as_slice().iter().all(|&b| b == 1));
        let mut out = vec![0u8; PAGE_SIZE];
        pc.read(&mut ctx, 4, 0, &mut out, |_, _, _| panic!("hit"))
            .unwrap();
        assert!(out.iter().all(|&b| b == 2));
    }

    #[test]
    fn write_page_buf_takes_ownership_without_copy() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let mut buf = pc.pool().alloc(PAGE_SIZE).unwrap();
        assert!(buf.write_with(|b| b.fill(5)));
        let copies_before = labstor_ipc::payload_copies();
        pc.write_page_buf(&mut ctx, 6, 0, buf);
        assert_eq!(labstor_ipc::payload_copies(), copies_before);
        let (h, hit) = pc
            .read_page(&mut ctx, 6, 0, |_, _, _| panic!("hit"))
            .unwrap();
        assert!(hit);
        assert!(h.as_slice().iter().all(|&b| b == 5));
        // The page is dirty and claimable for writeback.
        assert_eq!(pc.take_dirty(&mut ctx, Some(6)).len(), 1);
    }

    #[test]
    fn write_sheds_clean_pages_when_pool_is_pinned_dry() {
        // Regression: write() used to call alloc_page while holding the
        // shard lock; the pool-dry fallback re-locked the same (non-
        // reentrant) mutex and deadlocked exactly when the pool ran out.
        let pc = PageCache::with_shards(8 * PAGE_SIZE, 4);
        let mut ctx = Ctx::new();
        for i in 0..8u64 {
            pc.write(
                &mut ctx,
                1,
                i * PAGE_SIZE as u64,
                &[(i + 1) as u8; PAGE_SIZE],
            );
        }
        // Mark everything clean (dropping the writeback snapshots).
        drop(pc.take_dirty(&mut ctx, None));
        // Pin a reader snapshot of page (1, 0) so re-writing it must CoW.
        let (snap, hit) = pc
            .read_page(&mut ctx, 1, 0, |_, _, _| panic!("resident"))
            .unwrap();
        assert!(hit);
        // Drain the pool dry with directly held handles.
        let mut pins = Vec::new();
        while let Some(h) = pc.pool().alloc(PAGE_SIZE) {
            pins.push(h);
        }
        assert_eq!(pc.pool().free_slots_for(PAGE_SIZE), 0);
        // A write needing a fresh page (new key) must shed a clean page —
        // from its own shard or any other — instead of deadlocking or
        // panicking "pool exhausted".
        assert!(pc.write(&mut ctx, 2, 0, &[0xAA; PAGE_SIZE]).is_empty());
        // Copy-on-write of the snapshotted page under pool pressure too.
        pc.write(&mut ctx, 1, 0, &[0xBB; PAGE_SIZE]);
        assert!(snap.as_slice().iter().all(|&b| b == 1), "snapshot torn");
        let mut out = vec![0u8; PAGE_SIZE];
        pc.read(&mut ctx, 1, 0, &mut out, |_, _, _| panic!("resident"))
            .unwrap();
        assert!(out.iter().all(|&b| b == 0xBB));
    }

    #[test]
    fn pool_dry_shed_prefers_offending_tenant_and_attributes() {
        let pc = PageCache::new(8 * PAGE_SIZE);
        let mut ctx = Ctx::new();
        let victim = TenantId(1);
        let hog = TenantId(2);
        // Two clean pages resident per tenant.
        pc.write_for(&mut ctx, victim, 1, 0, &[1u8; PAGE_SIZE]);
        pc.write_for(&mut ctx, victim, 1, PAGE_SIZE as u64, &[1u8; PAGE_SIZE]);
        pc.write_for(&mut ctx, hog, 2, 0, &[2u8; PAGE_SIZE]);
        pc.write_for(&mut ctx, hog, 2, PAGE_SIZE as u64, &[2u8; PAGE_SIZE]);
        drop(pc.take_dirty(&mut ctx, None));
        // Drain the pool dry with directly held handles.
        let mut pins = Vec::new();
        while let Some(h) = pc.pool().alloc(PAGE_SIZE) {
            pins.push(h);
        }
        assert_eq!(pc.pool().free_slots_for(PAGE_SIZE), 0);
        // The hog writes a new page: the shed pass must evict *its own*
        // clean pages first — and attribute the shed — leaving the
        // victim's pages resident.
        pc.write_for(&mut ctx, hog, 2, 2 * PAGE_SIZE as u64, &[3u8; PAGE_SIZE]);
        assert!(pc.pool().tenant_shed_pages(hog) >= 1);
        assert_eq!(pc.pool().tenant_shed_pages(victim), 0);
        let mut out = vec![0u8; PAGE_SIZE];
        pc.read_for(&mut ctx, victim, 1, 0, &mut out, |_, _, _| {
            panic!("victim page was shed")
        })
        .unwrap();
        assert!(out.iter().all(|&b| b == 1));
    }

    #[test]
    fn tenant_quota_recovers_by_shedding_own_pages() {
        // A tenant capped at 2 pages of pool quota keeps writing: each new
        // page sheds one of its own clean pages (uncharging the quota)
        // instead of panicking or stealing from others.
        let pc = PageCache::new(16 * PAGE_SIZE);
        let mut ctx = Ctx::new();
        let capped = TenantId(7);
        pc.pool().set_tenant_quota(capped, 2 * PAGE_SIZE as u64);
        for i in 0..6u64 {
            pc.write_for(&mut ctx, capped, 3, i * PAGE_SIZE as u64, &[9u8; PAGE_SIZE]);
            drop(pc.take_dirty(&mut ctx, Some(3)));
        }
        assert!(pc.pool().tenant_live_bytes(capped) <= 2 * PAGE_SIZE as u64);
        assert!(pc.pool().tenant_shed_pages(capped) >= 4);
    }

    #[test]
    fn concurrent_lock_charges_serialize() {
        // Two actors touching the cache at the same virtual instant: the
        // second one's lock acquisition starts after the first's hold.
        let pc = PageCache::new(1 << 20);
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        pc.write(&mut a, 1, 0, &[0u8; 512]);
        pc.write(&mut b, 2, 0, &[0u8; 512]);
        assert!(
            b.now() > a.now() - cost::copy_ns(512),
            "b queued behind a's lock hold"
        );
    }
}
