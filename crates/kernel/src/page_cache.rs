//! The kernel page cache model.
//!
//! Buffered I/O in Linux lands in the page cache: reads fill 4 KB pages
//! from the device and copy them to user space; writes copy user data into
//! pages and mark them dirty for later writeback. Fig. 4a of the paper
//! charges 17% of a 4 KB write to "the page cache … due to data copying" —
//! the copy and lookup costs here are calibrated to that.
//!
//! Concurrency: real data is protected by a real mutex; *modeled* lock
//! contention (what multiple threads would pay on the testbed) is charged
//! through a virtual [`Resource`], so scalability shapes survive the
//! virtual-time design (see `labstor_sim::time`).

use std::collections::HashMap;

use parking_lot::Mutex;

use labstor_sim::{Ctx, Resource};

use crate::cost;

/// Page size in bytes (x86-64).
pub const PAGE_SIZE: usize = 4096;

/// Key of a cached page: (inode, page index).
pub type PageKey = (u64, u64);

const NIL: usize = usize::MAX;

struct Entry<K, V> {
    key: K,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// An LRU map with O(1) touch/insert/evict, built on a slab of doubly
/// linked entries. Used by the page cache and reusable for other caches.
pub struct LruMap<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: std::hash::Hash + Eq + Clone, V> LruMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        LruMap {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Get a value and mark it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        self.slab[idx].value.as_mut()
    }

    /// Peek without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).and_then(|&i| self.slab[i].value.as_ref())
    }

    /// Insert (or replace) a value as most-recently-used. Returns the
    /// previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return self.slab[idx].value.replace(value);
        }
        let idx = if let Some(i) = self.free.pop() {
            self.slab[i] = Entry {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.slab.push(Entry {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        None
    }

    /// Remove a key.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slab[idx].value.take()
    }

    /// Evict the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.slab[idx].key.clone();
        self.map.remove(&key);
        self.unlink(idx);
        self.free.push(idx);
        let value = self.slab[idx].value.take().expect("live entry has a value");
        Some((key, value))
    }

    /// Iterate over `(key, &value)` pairs in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map
            .iter()
            .filter_map(|(k, &idx)| self.slab[idx].value.as_ref().map(|v| (k, v)))
    }
}

impl<K: std::hash::Hash + Eq + Clone, V> Default for LruMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// A cached page.
pub struct Page {
    /// Page contents.
    pub data: Box<[u8]>,
    /// Set when the page holds data not yet written back.
    pub dirty: bool,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: false,
        }
    }
}

/// A dirty page handed back to the filesystem for writeback.
pub struct Evicted {
    /// (inode, page index) of the evicted page.
    pub key: PageKey,
    /// Page contents at eviction time.
    pub data: Box<[u8]>,
}

/// The page cache: bounded LRU of 4 KB pages with dirty tracking.
pub struct PageCache {
    inner: Mutex<LruMap<PageKey, Page>>,
    capacity_pages: usize,
    /// Virtual-time serialization of tree/LRU manipulation (mapping lock).
    lock: Resource,
}

impl PageCache {
    /// Cache bounded at `capacity_bytes` (rounded down to whole pages,
    /// minimum one page).
    pub fn new(capacity_bytes: usize) -> Self {
        PageCache {
            inner: Mutex::new(LruMap::new()),
            capacity_pages: (capacity_bytes / PAGE_SIZE).max(1),
            lock: Resource::new(),
        }
    }

    /// Pages currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Charge the per-page mapping-lock cost, serialized across threads.
    fn charge_lock(&self, ctx: &mut Ctx) {
        let (_, end) = self.lock.acquire(ctx.now(), cost::PAGE_LOOKUP_NS);
        ctx.poll_until(end);
    }

    /// Copy `data` into the cache at byte `offset` of `ino`, marking pages
    /// dirty. Returns dirty pages evicted to make room (for writeback);
    /// clean victims are silently dropped.
    pub fn write(&self, ctx: &mut Ctx, ino: u64, offset: u64, data: &[u8]) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let pgidx = abs / PAGE_SIZE as u64;
            let pgoff = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - pgoff).min(data.len() - pos);
            self.charge_lock(ctx);
            cost::copy(ctx, n);
            let mut inner = self.inner.lock();
            let key = (ino, pgidx);
            if inner.get(&key).is_none() {
                inner.insert(key, Page::zeroed());
            }
            let page = inner.get(&key).expect("just inserted");
            page.data[pgoff..pgoff + n].copy_from_slice(&data[pos..pos + n]);
            page.dirty = true;
            while inner.len() > self.capacity_pages {
                match inner.pop_lru() {
                    Some((k, p)) if p.dirty => evicted.push(Evicted {
                        key: k,
                        data: p.data,
                    }),
                    Some(_) => {}
                    None => break,
                }
            }
            drop(inner);
            pos += n;
        }
        evicted
    }

    /// Read `buf.len()` bytes at byte `offset` of `ino`. For each page
    /// miss, `fill` fetches the page from the device; returning `false`
    /// aborts the read. On success returns the number of misses; `Err`
    /// carries no payload because the filesystem owns the real error (it
    /// is produced inside `fill`).
    #[allow(clippy::result_unit_err)]
    pub fn read(
        &self,
        ctx: &mut Ctx,
        ino: u64,
        offset: u64,
        buf: &mut [u8],
        mut fill: impl FnMut(&mut Ctx, u64, &mut [u8]) -> bool,
    ) -> Result<usize, ()> {
        let mut misses = 0usize;
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let pgidx = abs / PAGE_SIZE as u64;
            let pgoff = (abs % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - pgoff).min(buf.len() - pos);
            self.charge_lock(ctx);
            let key = (ino, pgidx);
            let hit = {
                let mut inner = self.inner.lock();
                match inner.get(&key) {
                    Some(page) => {
                        buf[pos..pos + n].copy_from_slice(&page.data[pgoff..pgoff + n]);
                        true
                    }
                    None => false,
                }
            };
            if !hit {
                misses += 1;
                let mut page = Page::zeroed();
                if !fill(ctx, pgidx, &mut page.data) {
                    return Err(());
                }
                buf[pos..pos + n].copy_from_slice(&page.data[pgoff..pgoff + n]);
                let mut inner = self.inner.lock();
                inner.insert(key, page);
                while inner.len() > self.capacity_pages {
                    // Dirty LRU victims must not be lost: push them back as
                    // most-recent and stop (the cache temporarily exceeds
                    // capacity until writeback — dirty-ratio throttling).
                    match inner.pop_lru() {
                        Some((k, p)) if p.dirty => {
                            inner.insert(k, p);
                            break;
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
            }
            cost::copy(ctx, n);
            pos += n;
        }
        Ok(misses)
    }

    /// Take every dirty page belonging to `ino` (fsync) or to all inodes
    /// (`None`, sync). Pages are marked clean and returned in page order
    /// for writeback.
    pub fn take_dirty(&self, ctx: &mut Ctx, ino: Option<u64>) -> Vec<Evicted> {
        self.charge_lock(ctx);
        let mut inner = self.inner.lock();
        let mut keys: Vec<PageKey> = inner
            .iter()
            .filter(|(k, p)| ino.is_none_or(|i| k.0 == i) && p.dirty)
            .map(|(k, _)| *k)
            .collect();
        keys.sort_unstable();
        keys.iter()
            .map(|k| {
                let page = inner.get(k).expect("key just seen");
                page.dirty = false;
                Evicted {
                    key: *k,
                    data: page.data.clone(),
                }
            })
            .collect()
    }

    /// Drop every cached page of `ino` at or beyond `from_page`
    /// (truncate invalidation).
    pub fn invalidate_from(&self, ino: u64, from_page: u64) {
        let mut inner = self.inner.lock();
        let keys: Vec<PageKey> = inner
            .iter()
            .map(|(k, _)| *k)
            .filter(|k| k.0 == ino && k.1 >= from_page)
            .collect();
        for k in keys {
            inner.remove(&k);
        }
    }

    /// Drop every page of `ino` (unlink / cache invalidation).
    pub fn invalidate(&self, ino: u64) {
        let mut inner = self.inner.lock();
        let keys: Vec<PageKey> = inner
            .iter()
            .map(|(k, _)| *k)
            .filter(|k| k.0 == ino)
            .collect();
        for k in keys {
            inner.remove(&k);
        }
    }

    /// Bytes of dirty data currently cached.
    pub fn dirty_bytes(&self) -> usize {
        self.inner.lock().iter().filter(|(_, p)| p.dirty).count() * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_insert_get_evict() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        l.insert(1, 10);
        l.insert(2, 20);
        l.insert(3, 30);
        assert_eq!(l.get(&1), Some(&mut 10)); // touch 1
        let (k, v) = l.pop_lru().unwrap();
        assert_eq!((k, v), (2, 20)); // 2 is now least-recent
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_replace_returns_old() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        l.insert(1, 10);
        assert_eq!(l.insert(1, 11), Some(10));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn lru_remove_and_reuse_slot() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        l.insert(1, 10);
        l.insert(2, 20);
        assert_eq!(l.remove(&1), Some(10));
        assert_eq!(l.remove(&1), None);
        l.insert(3, 30); // reuses the freed slot
        assert_eq!(l.peek(&3), Some(&30));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lru_pop_on_empty() {
        let mut l: LruMap<u32, u32> = LruMap::new();
        assert!(l.pop_lru().is_none());
        l.insert(1, 1);
        l.pop_lru().unwrap();
        assert!(l.pop_lru().is_none());
    }

    #[test]
    fn cache_write_then_read_hits() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let data: Vec<u8> = (0..8192).map(|i| (i % 250) as u8).collect();
        let ev = pc.write(&mut ctx, 1, 100, &data);
        assert!(ev.is_empty());
        let mut out = vec![0u8; 8192];
        let misses = pc
            .read(&mut ctx, 1, 100, &mut out, |_, _, _| {
                panic!("must not miss")
            })
            .unwrap();
        assert_eq!(misses, 0);
        assert_eq!(out, data);
    }

    #[test]
    fn cache_miss_calls_fill() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let mut out = vec![0u8; 4096];
        let misses = pc
            .read(&mut ctx, 9, 0, &mut out, |_, pgidx, page| {
                assert_eq!(pgidx, 0);
                page.fill(7);
                true
            })
            .unwrap();
        assert_eq!(misses, 1);
        assert!(out.iter().all(|&b| b == 7));
        // Second read hits.
        let misses = pc
            .read(&mut ctx, 9, 0, &mut out, |_, _, _| panic!("cached"))
            .unwrap();
        assert_eq!(misses, 0);
    }

    #[test]
    fn failed_fill_aborts_read() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        let mut out = vec![0u8; 4096];
        assert!(pc.read(&mut ctx, 9, 0, &mut out, |_, _, _| false).is_err());
    }

    #[test]
    fn eviction_returns_dirty_pages() {
        let pc = PageCache::new(2 * PAGE_SIZE); // 2-page cache
        let mut ctx = Ctx::new();
        let page = vec![1u8; PAGE_SIZE];
        assert!(pc.write(&mut ctx, 1, 0, &page).is_empty());
        assert!(pc.write(&mut ctx, 1, PAGE_SIZE as u64, &page).is_empty());
        let ev = pc.write(&mut ctx, 1, 2 * PAGE_SIZE as u64, &page);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].key, (1, 0)); // the oldest page went out
    }

    #[test]
    fn take_dirty_per_inode() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 1, 0, &[1u8; PAGE_SIZE]);
        pc.write(&mut ctx, 2, 0, &[2u8; PAGE_SIZE]);
        let d1 = pc.take_dirty(&mut ctx, Some(1));
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].key.0, 1);
        // Pages are now clean: second take returns nothing.
        assert!(pc.take_dirty(&mut ctx, Some(1)).is_empty());
        // Inode 2 still dirty via the "all" path.
        assert_eq!(pc.take_dirty(&mut ctx, None).len(), 1);
    }

    #[test]
    fn invalidate_drops_pages() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 5, 0, &[1u8; PAGE_SIZE]);
        pc.invalidate(5);
        assert!(pc.is_empty());
    }

    #[test]
    fn write_charges_copy_cost() {
        let pc = PageCache::new(1 << 20);
        let mut ctx = Ctx::new();
        pc.write(&mut ctx, 1, 0, &[0u8; 4096]);
        assert!(ctx.now() >= cost::copy_ns(4096));
    }

    #[test]
    fn concurrent_lock_charges_serialize() {
        // Two actors touching the cache at the same virtual instant: the
        // second one's lock acquisition starts after the first's hold.
        let pc = PageCache::new(1 << 20);
        let mut a = Ctx::new();
        let mut b = Ctx::new();
        pc.write(&mut a, 1, 0, &[0u8; 512]);
        pc.write(&mut b, 2, 0, &[0u8; 512]);
        assert!(
            b.now() > a.now() - cost::copy_ns(512),
            "b queued behind a's lock hold"
        );
    }
}
