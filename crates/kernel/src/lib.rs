#![warn(missing_docs)]

//! # labstor-kernel — the simulated Linux I/O path
//!
//! LabStor's evaluation compares against the Linux 5.4 kernel I/O stack:
//! POSIX/AIO/libaio/io_uring engines over device files (Fig. 6), the
//! in-kernel NoOp and blk-switch I/O schedulers (Fig. 8), and the ext4,
//! XFS and F2FS filesystems (Figs. 7, 9b, 9c). No kernel is available to
//! instrument here, so this crate *is* the baseline: a structural model of
//! the kernel I/O path with calibrated crossing costs and — critically —
//! **real locks with modeled hold times**, so contention collapse emerges
//! from genuine serialization rather than curve fitting.
//!
//! Components:
//!
//! * [`cost`] — syscall, context-switch, interrupt and copy costs.
//! * [`block`] — the multi-queue block layer: bio allocation, per-core
//!   software queues, pluggable scheduler, dispatch to device hardware
//!   queues. Also exposes the raw `submit_io_to_hctx` path LabStor's
//!   Kernel Driver LabMod uses to bypass it (paper §III-F).
//! * [`sched`] — in-kernel I/O schedulers: NoOp and a blk-switch-like
//!   load-aware steerer.
//! * [`page_cache`] — the kernel page cache (per-file page map, LRU
//!   eviction, writeback).
//! * [`fs`] — ext4/XFS/F2FS-like baseline filesystems over the block
//!   layer, differing in journaling and lock granularity.
//! * [`vfs`] — the VFS: mount table, path resolution, fd tables, and the
//!   syscall surface that charges kernel crossings.
//! * [`engines`] — userspace I/O engines over raw device files: POSIX
//!   (sync), POSIX AIO, libaio, io_uring.

pub mod block;
pub mod cost;
pub mod engines;
pub mod fs;
pub mod page_cache;
pub mod sched;
pub mod vfs;

pub use block::BlockLayer;
pub use engines::IoEngineKind;
pub use fs::{FsError, FsProfile, KernelFs};
pub use sched::{BlkSwitchSched, KernelSched, NoopSched};
pub use vfs::{OpenFlags, Vfs, VfsError};
