//! The LabStor client library (paper §III-D "Application-Side").
//!
//! Applications link this to mount, modify, query and execute LabStacks.
//! For **async** stacks the client packages a request, places it in a
//! shared-memory queue pair and polls the completion queue (`Wait`),
//! detecting Runtime crashes and waiting for restart. For **sync** stacks
//! the DAG executes inline in the client thread — the paper's
//! decentralized mode with no IPC at all.

use std::sync::Arc;
use std::time::{Duration, Instant};

use labstor_ipc::{ClientConnection, Envelope};
use labstor_sim::Ctx;
use labstor_telemetry::{SpanEvent, Stage};

use crate::request::{Message, Payload, Request, RespPayload, Response};
use crate::runtime::Runtime;
use crate::stack::{ExecMode, LabStack};
use crate::worker::process_request;

/// Client-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The Runtime went offline and did not return within the timeout.
    RuntimeDown,
    /// No stack governs the given mount path.
    NoStack(String),
    /// Submission queue stayed full past the timeout.
    Backpressure,
    /// The tenant's token-bucket admission rejected the request: typed
    /// backpressure, never a panic. `retry_after_ns` is the virtual delay
    /// after which the same request would be admitted.
    Throttled {
        /// Earliest virtual-time delay (ns) after which a retry can pass.
        retry_after_ns: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::RuntimeDown => write!(f, "runtime offline"),
            ClientError::NoStack(p) => write!(f, "no LabStack governs {p}"),
            ClientError::Backpressure => write!(f, "submission queue full"),
            ClientError::Throttled { retry_after_ns } => {
                write!(
                    f,
                    "tenant rate limit: retry after {retry_after_ns} virtual ns"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A connected client. One per application thread — it owns that thread's
/// virtual timeline.
pub struct Client {
    /// The IPC connection (domain + queue pairs).
    pub conn: ClientConnection<Message>,
    /// This client's virtual clock.
    pub ctx: Ctx,
    runtime: Arc<Runtime>,
    next_id: u64,
    rr: usize,
    /// CPU core this client thread is pinned to (stamped on requests).
    pub core: usize,
    /// In-flight async requests: id → (submit virtual time, queue index,
    /// stack id).
    pending: std::collections::HashMap<u64, (u64, usize, u64)>,
    /// Responses from inline (sync-stack) submissions awaiting reap.
    inline_done: Vec<(Response, u64)>,
    /// Completions drained from a CQ burst but not yet handed to the
    /// caller: `(response, latency_ns)` in reap order.
    reaped: std::collections::VecDeque<(Response, u64)>,
    /// How long `wait` tolerates an offline Runtime before giving up
    /// ("for a configurable period of time", §III-C3).
    pub offline_timeout: Duration,
    /// Live QoS accounting for this connection's tenant (`None` for the
    /// untenanted identity): token-bucket admission, counters, latency
    /// histogram.
    tenant: Option<Arc<labstor_qos::TenantState>>,
}

/// Cap on each park of a client `wait` on its completion doorbell. Every
/// completion rings the bell, so the cap only bounds how long a crashed
/// Runtime (whose dead workers never ring) can go unnoticed — the wait
/// loops re-check liveness after each wakeup instead of spin-checking it.
const WAIT_PARK: Duration = Duration::from_millis(5);

impl Client {
    pub(crate) fn new(conn: ClientConnection<Message>, runtime: Arc<Runtime>) -> Client {
        let tenant = runtime.tenants.resolve(conn.creds.tenant);
        Client {
            conn,
            ctx: Ctx::new(),
            runtime,
            tenant,
            next_id: 0,
            rr: 0,
            core: 0,
            pending: std::collections::HashMap::new(),
            inline_done: Vec::new(),
            reaped: std::collections::VecDeque::new(),
            offline_timeout: Duration::from_secs(5),
        }
    }

    /// The runtime this client is connected to.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// This connection's live tenant accounting, if it bills to one.
    pub fn tenant(&self) -> Option<&Arc<labstor_qos::TenantState>> {
        self.tenant.as_ref()
    }

    /// Token-bucket admission for one request: charge its payload bytes
    /// (min 1 token) against the tenant's bucket at the current virtual
    /// time. Untenanted clients always pass.
    fn admit(&self, cost_bytes: usize) -> Result<(), ClientError> {
        let Some(tenant) = &self.tenant else {
            return Ok(());
        };
        tenant
            .try_admit(self.ctx.now(), (cost_bytes as u64).max(1))
            .map_err(|retry_after_ns| ClientError::Throttled { retry_after_ns })
    }

    /// Record one completion latency into the tenant's histogram (the
    /// per-tenant p99 the isolation gate watches).
    fn observe_tenant_latency(&self, latency_ns: u64) {
        if let Some(tenant) = &self.tenant {
            tenant.observe_latency(latency_ns);
        }
    }

    /// Allocate a zero-copy payload buffer from the shared pool and fill
    /// it in place — the application writes its bytes straight into
    /// shared memory, then submits `FsOp::WriteBuf { buf, .. }` so no
    /// stage ever copies them. Returns `None` when the pool is dry (fall
    /// back to the legacy `Vec` payload).
    ///
    /// The buffer comes back zeroed: pool slots are recycled process-wide
    /// across clients and domains, so a partially filled buffer must not
    /// leak another domain's stale payload bytes into storage.
    pub fn alloc_buf(&self, len: usize) -> Option<labstor_ipc::BufHandle> {
        let mut h = labstor_ipc::default_pool().alloc(len)?;
        let zeroed = h.write_with(|b| b.fill(0));
        debug_assert!(zeroed, "fresh handle is unique");
        Some(h)
    }

    /// The shared buffer pool this client allocates payload buffers from.
    pub fn buf_pool(&self) -> &'static labstor_ipc::BufferPool {
        labstor_ipc::default_pool()
    }

    /// Resolve the stack governing `path` (GenericFS-style ancestor walk).
    pub fn resolve(&self, path: &str) -> Result<(Arc<LabStack>, String), ClientError> {
        self.runtime
            .ns
            .resolve(path)
            .ok_or_else(|| ClientError::NoStack(path.to_string()))
    }

    /// Execute `payload` against a stack. Returns the response payload and
    /// the request's virtual latency in ns.
    pub fn execute(
        &mut self,
        stack: &Arc<LabStack>,
        payload: Payload,
    ) -> Result<(RespPayload, u64), ClientError> {
        self.next_id += 1;
        let req = Request::on_core(self.next_id, stack.id, payload, self.conn.creds, self.core);
        self.admit(req.payload_bytes())?;
        let start = self.ctx.now();
        match stack.exec {
            ExecMode::Sync => {
                // Decentralized: run the DAG inline, no IPC.
                let resp = process_request(
                    &mut self.ctx,
                    req,
                    &self.runtime.ns,
                    &self.runtime.mm,
                    self.conn.domain,
                );
                let latency = self.ctx.now() - start;
                self.observe_tenant_latency(latency);
                Ok((resp.payload, latency))
            }
            ExecMode::Async => {
                let resp = self.roundtrip(req)?;
                let latency = self.ctx.now() - start;
                self.observe_tenant_latency(latency);
                Ok((resp, latency))
            }
        }
    }

    /// Estimate a request's processing cost for the orchestrator (the
    /// connector queries the shared registry, like GenericFS).
    fn estimate(&self, req: &Request) -> u64 {
        self.runtime
            .ns
            .get_id(req.stack)
            .and_then(|s| s.vertices.first().cloned())
            .and_then(|v| self.runtime.mm.get(&v.uuid))
            .map(|m| m.est_processing_time(req))
            .unwrap_or(1_000)
    }

    /// Submit through a queue pair and wait for the matching completion.
    fn roundtrip(&mut self, req: Request) -> Result<RespPayload, ClientError> {
        let id = req.id;
        let stack_id = req.stack;
        let rec = self.runtime.mm.telemetry().clone();
        let est = self.estimate(&req);
        self.rr = (self.rr + 1) % self.conn.queues.len();
        let qp = self.conn.queues[self.rr].clone();
        qp.note_item_est(est);
        qp.add_load(est as i64);
        // Submit with backpressure retry.
        let mut msg = Message::Req(req);
        let deadline = Instant::now() + self.offline_timeout;
        loop {
            match qp.submit(msg, self.ctx.now(), self.conn.domain) {
                Ok(()) => break,
                Err(back) => {
                    msg = back;
                    if Instant::now() > deadline {
                        return Err(ClientError::Backpressure);
                    }
                    std::thread::yield_now();
                }
            }
        }
        if rec.enabled() {
            let now = self.ctx.now();
            rec.record(Stage::Submit, id, stack_id, 0, now, now);
        }
        // Wait: park on the CQ doorbell between reaps; detect a crashed
        // Runtime and wait for its restart, then repair state and
        // resubmit the request (§III-C3).
        loop {
            // Capture before the reap: a completion posted after the scan
            // rings the bell and aborts the park (doorbell protocol).
            let epoch = self.conn.bell.epoch();
            if let Some(env) = qp.reap(&mut self.ctx, self.conn.domain) {
                if let Message::Resp(resp) = env.payload {
                    if resp.id == id {
                        if rec.enabled() {
                            // Completion-queue crossing: from the
                            // worker's completion post to this reap.
                            rec.record(
                                Stage::HopResp,
                                id,
                                stack_id,
                                0,
                                env.submit_vt,
                                self.ctx.now(),
                            );
                        }
                        return Ok(resp.payload);
                    }
                    // A stale response from before a crash: drop it.
                }
                continue;
            }
            if !self.runtime.ipc.is_online() {
                // The in-flight request may be lost with the crashed
                // Runtime. Per §III-C3 the client library invokes
                // StateRepair in each LabMod once the Runtime returns;
                // resubmission happens in `execute_with_retry`.
                if self.runtime.ipc.wait_online(self.offline_timeout) {
                    self.runtime.mm.repair_all();
                }
                return Err(ClientError::RuntimeDown);
            }
            // Nothing reapable: park until a worker rings. The cap keeps
            // the liveness check above live when the Runtime dies parked.
            self.conn.bell.wait_past(epoch, WAIT_PARK);
        }
    }

    /// Execute with automatic resubmission across a Runtime crash: the
    /// request is retried until the Runtime answers or the offline
    /// timeout expires.
    pub fn execute_with_retry(
        &mut self,
        stack: &Arc<LabStack>,
        payload: Payload,
    ) -> Result<(RespPayload, u64), ClientError> {
        let deadline = Instant::now() + self.offline_timeout;
        loop {
            match self.execute(stack, payload.clone()) {
                Ok(r) => return Ok(r),
                Err(ClientError::RuntimeDown) if Instant::now() < deadline => {
                    if !self.runtime.ipc.wait_online(self.offline_timeout) {
                        return Err(ClientError::RuntimeDown);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Submit a request without waiting (queue-depth > 1 clients).
    /// Returns the request id to pass to [`Client::reap_one`]. For
    /// sync-mode stacks the request executes inline and its response is
    /// buffered locally.
    pub fn submit(&mut self, stack: &Arc<LabStack>, payload: Payload) -> Result<u64, ClientError> {
        self.next_id += 1;
        let req = Request::on_core(self.next_id, stack.id, payload, self.conn.creds, self.core);
        let id = req.id;
        self.admit(req.payload_bytes())?;
        match stack.exec {
            ExecMode::Sync => {
                let resp = process_request(
                    &mut self.ctx,
                    req,
                    &self.runtime.ns,
                    &self.runtime.mm,
                    self.conn.domain,
                );
                self.inline_done.push((resp, self.ctx.now()));
                Ok(id)
            }
            ExecMode::Async => {
                let est = self.estimate(&req);
                self.rr = (self.rr + 1) % self.conn.queues.len();
                let qp = self.conn.queues[self.rr].clone();
                qp.note_item_est(est);
                qp.add_load(est as i64);
                self.pending.insert(id, (self.ctx.now(), self.rr, stack.id));
                let mut msg = Message::Req(req);
                let deadline = Instant::now() + self.offline_timeout;
                loop {
                    match qp.submit(msg, self.ctx.now(), self.conn.domain) {
                        Ok(()) => {
                            let rec = self.runtime.mm.telemetry();
                            if rec.enabled() {
                                let now = self.ctx.now();
                                rec.record(Stage::Submit, id, stack.id, 0, now, now);
                            }
                            return Ok(id);
                        }
                        Err(back) => {
                            msg = back;
                            if Instant::now() > deadline {
                                self.pending.remove(&id);
                                return Err(ClientError::Backpressure);
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            }
        }
    }

    /// Submit a burst of requests without waiting, returning their ids in
    /// submission order. For an async stack the whole burst targets one
    /// queue (round-robin advances per burst, not per request) and goes
    /// through [`QueuePair::submit_batch`]: one SQ-counter publication and
    /// one batched `Submit`-span flush for the burst, instead of one per
    /// request — the client half of the batched IPC hot path.
    ///
    /// On backpressure timeout the not-yet-submitted tail is unregistered
    /// and `Err(Backpressure)` is returned; requests of the burst that did
    /// make it in stay in flight and remain reapable via
    /// [`Client::reap_one`].
    ///
    /// [`QueuePair::submit_batch`]: labstor_ipc::QueuePair::submit_batch
    pub fn submit_all(
        &mut self,
        stack: &Arc<LabStack>,
        payloads: Vec<Payload>,
    ) -> Result<Vec<u64>, ClientError> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if stack.exec == ExecMode::Sync {
            let mut ids = Vec::with_capacity(payloads.len());
            for p in payloads {
                ids.push(self.submit(stack, p)?);
            }
            return Ok(ids);
        }
        self.rr = (self.rr + 1) % self.conn.queues.len();
        let qi = self.rr;
        let qp = self.conn.queues[qi].clone();
        // Admission charges the whole burst atomically (one bucket
        // operation per batch, matching the batched submit): either every
        // request is admitted or none is queued.
        let mut reqs: Vec<Request> = Vec::with_capacity(payloads.len());
        let mut burst_bytes: usize = 0;
        for p in payloads {
            self.next_id += 1;
            let req = Request::on_core(self.next_id, stack.id, p, self.conn.creds, self.core);
            burst_bytes = burst_bytes.saturating_add(req.payload_bytes().max(1));
            reqs.push(req);
        }
        self.admit(burst_bytes)?;
        let mut ids = Vec::with_capacity(reqs.len());
        let mut msgs: Vec<Message> = Vec::with_capacity(reqs.len());
        for req in reqs {
            let est = self.estimate(&req);
            qp.note_item_est(est);
            qp.add_load(est as i64);
            self.pending.insert(req.id, (self.ctx.now(), qi, stack.id));
            ids.push(req.id);
            msgs.push(Message::Req(req));
        }
        let deadline = Instant::now() + self.offline_timeout;
        while !msgs.is_empty() {
            if qp.submit_batch(&mut msgs, self.ctx.now(), self.conn.domain) == 0
                && Instant::now() > deadline
            {
                // Unregister the unsubmitted tail; keep ids that made it.
                for m in &msgs {
                    if let Message::Req(r) = m {
                        self.pending.remove(&r.id);
                    }
                }
                return Err(ClientError::Backpressure);
            }
            if !msgs.is_empty() {
                std::thread::yield_now();
            }
        }
        let rec = self.runtime.mm.telemetry();
        if rec.enabled() {
            let now = self.ctx.now();
            let stack_bits = (stack.id & 0x00FF_FFFF) as u32;
            rec.record_batch(ids.iter().map(|&id| SpanEvent {
                req_id: id,
                stage: Stage::Submit,
                stack: stack_bits,
                vertex: 0,
                ring: 0, // stamped by the recorder
                t_start_vns: now,
                t_end_vns: now,
            }));
        }
        Ok(ids)
    }

    /// Completions drained per CQ crossing in [`Client::reap_one`].
    const REAP_BATCH: usize = 8;

    /// Drain one burst of completions from each queue into the local
    /// `reaped` buffer: one CQ crossing (and one batched telemetry flush)
    /// per queue instead of one per completion. Per-envelope `dequeue_vt`
    /// keeps each completion's reap time exact inside the burst.
    fn drain_completions(&mut self) {
        let rec = self.runtime.mm.telemetry().clone();
        let recording = rec.enabled();
        let mut burst: Vec<Envelope<Message>> = Vec::with_capacity(Self::REAP_BATCH);
        let mut spans: Vec<SpanEvent> = Vec::new();
        for qi in 0..self.conn.queues.len() {
            let qp = self.conn.queues[qi].clone();
            if qp.reap_batch(
                &mut self.ctx,
                self.conn.domain,
                &mut burst,
                Self::REAP_BATCH,
            ) == 0
            {
                continue;
            }
            for env in burst.drain(..) {
                let (complete_vt, reap_vt) = (env.submit_vt, env.dequeue_vt);
                if let Message::Resp(resp) = env.payload {
                    let (submit_vt, _, stack_id) =
                        self.pending.remove(&resp.id).unwrap_or((0, 0, 0));
                    let latency = reap_vt.saturating_sub(submit_vt);
                    self.observe_tenant_latency(latency);
                    if recording {
                        // Completion-queue crossing: from the worker's
                        // completion post to this envelope's reap.
                        spans.push(SpanEvent {
                            req_id: resp.id,
                            stage: Stage::HopResp,
                            stack: (stack_id & 0x00FF_FFFF) as u32,
                            vertex: 0,
                            ring: 0, // stamped by the recorder
                            t_start_vns: complete_vt,
                            t_end_vns: reap_vt,
                        });
                    }
                    self.reaped.push_back((resp, latency));
                }
                // Stale requests bounced back after a crash: drop them.
            }
        }
        if recording && !spans.is_empty() {
            rec.record_batch(spans);
        }
    }

    /// Reap one completion from any of this client's queues (or the
    /// inline buffer for sync stacks). Returns `(response, latency_ns)`.
    /// Blocks (in real time) until something completes.
    pub fn reap_one(&mut self) -> Result<(Response, u64), ClientError> {
        if let Some((resp, done_vt)) = self.inline_done.pop() {
            // Inline execution already advanced the clock.
            let _ = done_vt;
            return Ok((resp, 0));
        }
        if let Some(r) = self.reaped.pop_front() {
            return Ok(r);
        }
        let deadline = Instant::now() + self.offline_timeout;
        loop {
            // Capture before the drain (doorbell protocol; see roundtrip).
            let epoch = self.conn.bell.epoch();
            self.drain_completions();
            if let Some(r) = self.reaped.pop_front() {
                return Ok(r);
            }
            if self.pending.is_empty() {
                return Err(ClientError::Backpressure);
            }
            if !self.runtime.ipc.is_online() {
                if self.runtime.ipc.wait_online(self.offline_timeout) {
                    self.runtime.mm.repair_all();
                }
                return Err(ClientError::RuntimeDown);
            }
            if Instant::now() > deadline {
                return Err(ClientError::RuntimeDown);
            }
            // Park until a completion burst rings this connection's bell;
            // the cap keeps the liveness and deadline checks live.
            self.conn.bell.wait_past(epoch, WAIT_PARK);
        }
    }

    /// Requests submitted via [`Client::submit`] not yet reaped
    /// (including inline sync-stack completions and buffered CQ-burst
    /// completions awaiting reap).
    pub fn in_flight(&self) -> usize {
        self.pending.len() + self.inline_done.len() + self.reaped.len()
    }

    /// Convenience: execute against whatever stack governs `path`.
    pub fn execute_path(
        &mut self,
        path: &str,
        payload: Payload,
    ) -> Result<(RespPayload, u64), ClientError> {
        let (stack, _) = self.resolve(path)?;
        self.execute(&stack, payload)
    }
}
