//! The Module Manager: registry, factories, and live-upgrade protocols
//! (paper §III-C2).
//!
//! The Module Registry is a map from instance UUID to LabMod instance
//! ("a hashmap in shared memory"). Upgrades are queued and processed by
//! the Runtime admin, which quiesces primary queues (`UPDATE_PENDING` →
//! `UPDATE_ACKED`), drains intermediate queues, loads the new module code
//! from storage, transfers state via `state_update`, swaps the registry
//! entry, and resumes the queues.
//!
//! Two protocols exist because operators can live in the Runtime *or* in
//! client address spaces: **centralized** updates the Runtime's copy;
//! **decentralized** additionally propagates the swap to every connected
//! client (slightly slower — Table I).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use labstor_ipc::{IpcManager, UpgradeFlag};
use labstor_sim::{BlockDevice, Ctx, SimDevice};

use crate::labmod::LabMod;
use crate::request::Message;

/// Factory that builds a LabMod instance from JSON parameters.
pub type ModFactory = Arc<dyn Fn(&serde_json::Value) -> Arc<dyn LabMod> + Send + Sync>;

/// Which upgrade protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeKind {
    /// Update the Runtime's instance only.
    Centralized,
    /// Update the Runtime and every connected client.
    Decentralized,
}

/// A queued `modify.mods` upgrade request.
pub struct UpgradeRequest {
    /// UUID of the instance to upgrade.
    pub uuid: String,
    /// Factory (type) name of the replacement code.
    pub type_name: String,
    /// Initialization parameters for the new instance.
    pub params: serde_json::Value,
    /// Protocol to use.
    pub kind: UpgradeKind,
    /// Size of the module binary on storage ("the dummy module is 1MB and
    /// located on an NVMe; the I/O cost accounted for the majority of time
    /// spent in the upgrade process" — Table I).
    pub code_bytes: usize,
    /// Device holding the module binary, if its load should be charged.
    pub code_device: Option<Arc<SimDevice>>,
}

/// Fixed cost of linking/relocating a loaded module (dlopen of a ~1 MB
/// object plus allocator work), calibrated so one upgrade lands near the
/// paper's ≈5 ms.
const MODULE_LINK_NS: u64 = 3_600_000;
/// Cost of transferring state between instances per upgrade ("a few bytes
/// of pointers").
const STATE_TRANSFER_NS: u64 = 2_000;
/// Extra per-client propagation cost for the decentralized protocol.
const PER_CLIENT_PROPAGATE_NS: u64 = 150_000;

/// A LabMod repo: a named source of LabMod types with an owner and a
/// trust level (§III-D). "A LabMod repo which is owned by the same user
/// as the LabStor Runtime is considered trustworthy by default. Untrusted
/// LabMods … must be [executed] in a separate address space from the
/// Runtime."
#[derive(Debug, Clone)]
pub struct ModRepo {
    /// Repo name (the directory path in the real system).
    pub name: String,
    /// Owning uid.
    pub owner_uid: u32,
    /// Whether the Runtime may execute this repo's mods in-process.
    pub trusted: bool,
}

/// The Module Manager.
pub struct ModuleManager {
    registry: RwLock<HashMap<String, Arc<dyn LabMod>>>,
    factories: RwLock<HashMap<String, ModFactory>>,
    /// Mounted repos by name.
    repos: RwLock<HashMap<String, ModRepo>>,
    /// Which repo provides each factory (type name → repo name).
    factory_repo: RwLock<HashMap<String, String>>,
    /// Maximum repos one (non-root) user may mount.
    max_repos_per_user: usize,
    upgrades: Mutex<Vec<UpgradeRequest>>,
    /// Virtual time at which the last upgrade window ended; resuming
    /// workers fast-forward to it so the pause costs virtual time.
    resume_vt: std::sync::atomic::AtomicU64,
    /// The Runtime's span flight recorder (disabled by default). Owned
    /// here so every component that can reach the registry — workers,
    /// clients, LabMods via `StackEnv` — records into the same recorder,
    /// and separate Runtimes never share spans.
    telemetry: Arc<labstor_telemetry::FlightRecorder>,
    /// The Runtime's tenant table, attached once at startup so
    /// kernel-side LabMods can bill pushdown fuel to the requesting
    /// tenant. Standalone managers (unit harnesses) leave it unset and
    /// fuel is charged to virtual time only.
    tenants: std::sync::OnceLock<Arc<labstor_qos::TenantTable>>,
}

impl Default for ModuleManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleManager {
    /// Empty manager.
    pub fn new() -> Self {
        ModuleManager {
            registry: RwLock::new(HashMap::new()),
            factories: RwLock::new(HashMap::new()),
            repos: RwLock::new(HashMap::new()),
            factory_repo: RwLock::new(HashMap::new()),
            max_repos_per_user: 8,
            upgrades: Mutex::new(Vec::new()),
            resume_vt: std::sync::atomic::AtomicU64::new(0),
            telemetry: Arc::new(labstor_telemetry::FlightRecorder::default()),
            tenants: std::sync::OnceLock::new(),
        }
    }

    /// Attach the Runtime's tenant table (once, at startup). Later calls
    /// are ignored — the first table wins, matching `OnceLock`.
    pub fn attach_tenants(&self, tenants: Arc<labstor_qos::TenantTable>) {
        let _ = self.tenants.set(tenants);
    }

    /// The attached tenant table, if this manager belongs to a Runtime.
    pub fn tenants(&self) -> Option<&Arc<labstor_qos::TenantTable>> {
        self.tenants.get()
    }

    /// The span flight recorder shared by everything attached to this
    /// Runtime. Disabled by default; `FlightRecorder::enable` turns
    /// recording on.
    pub fn telemetry(&self) -> &Arc<labstor_telemetry::FlightRecorder> {
        &self.telemetry
    }

    // ---- repos --------------------------------------------------------

    /// Mount a repo (the unprivileged `mount.repo` command). Repos owned
    /// by the Runtime's user (root here) are trusted by default; others
    /// are untrusted unless root marks them otherwise. Enforces the
    /// configurable per-user repo limit.
    pub fn mount_repo(&self, name: &str, owner_uid: u32) -> Result<(), String> {
        let mut repos = self.repos.write(); // lock-class: registry.repos
        if repos.contains_key(name) {
            return Err(format!("repo '{name}' already mounted"));
        }
        if owner_uid != 0 {
            let owned = repos.values().filter(|r| r.owner_uid == owner_uid).count();
            if owned >= self.max_repos_per_user {
                return Err(format!(
                    "uid {owner_uid} at the repo limit ({})",
                    self.max_repos_per_user
                ));
            }
        }
        repos.insert(
            name.to_string(),
            ModRepo {
                name: name.to_string(),
                owner_uid,
                trusted: owner_uid == 0,
            },
        );
        Ok(())
    }

    /// Unmount a repo (`unmount.repo`): only the owner or root.
    pub fn unmount_repo(&self, name: &str, uid: u32) -> Result<(), String> {
        let mut repos = self.repos.write(); // lock-class: registry.repos
        let repo = repos
            .get(name)
            .ok_or_else(|| format!("repo '{name}' not mounted"))?;
        if uid != 0 && uid != repo.owner_uid {
            return Err(format!("uid {uid} may not unmount repo '{name}'"));
        }
        repos.remove(name);
        Ok(())
    }

    /// Look up a mounted repo.
    pub fn repo(&self, name: &str) -> Option<ModRepo> {
        self.repos.read().get(name).cloned() // lock-class: registry.repos
    }

    /// Register a LabMod type as provided by `repo` (must be mounted).
    pub fn register_factory_in_repo(
        &self,
        repo: &str,
        type_name: &str,
        factory: ModFactory,
    ) -> Result<(), String> {
        // lock-class: registry.repos
        if !self.repos.read().contains_key(repo) {
            return Err(format!("repo '{repo}' not mounted"));
        }
        self.factory_repo
            .write() // lock-class: registry.factories
            .insert(type_name.to_string(), repo.to_string());
        self.factories
            .write() // lock-class: registry.factories
            .insert(type_name.to_string(), factory);
        Ok(())
    }

    /// True if the type comes from a trusted repo (types registered with
    /// the plain [`ModuleManager::register_factory`] count as built-in and
    /// trusted).
    pub fn type_is_trusted(&self, type_name: &str) -> bool {
        // lock-class: registry.factories
        match self.factory_repo.read().get(type_name) {
            Some(repo) => self
                .repos
                .read() // lock-class: registry.repos
                .get(repo)
                .map(|r| r.trusted)
                .unwrap_or(false),
            None => true,
        }
    }

    // ---- factories & registry ---------------------------------------------

    /// Register a LabMod type ("installing a repo" makes its types
    /// available).
    pub fn register_factory(&self, type_name: &str, factory: ModFactory) {
        self.factories
            .write() // lock-class: registry.factories
            .insert(type_name.to_string(), factory);
    }

    /// True if a factory for `type_name` exists.
    pub fn has_factory(&self, type_name: &str) -> bool {
        self.factories.read().contains_key(type_name) // lock-class: registry.factories
    }

    /// Instantiate `type_name` under `uuid` unless that UUID already
    /// exists (mount semantics: "a LabMod is only instantiated if its UUID
    /// did not exist in the registry"). Returns the live instance.
    pub fn instantiate(
        &self,
        uuid: &str,
        type_name: &str,
        params: &serde_json::Value,
    ) -> Result<Arc<dyn LabMod>, String> {
        if let Some(existing) = self.get(uuid) {
            return Ok(existing);
        }
        let factory = self
            .factories
            .read() // lock-class: registry.factories
            .get(type_name)
            .cloned()
            .ok_or_else(|| format!("no LabMod type '{type_name}' installed"))?;
        let instance = factory(params);
        self.registry
            .write() // lock-class: registry.instances
            .insert(uuid.to_string(), instance.clone());
        Ok(instance)
    }

    /// Insert a pre-built instance (tests, in-process composition).
    pub fn insert_instance(&self, uuid: &str, instance: Arc<dyn LabMod>) {
        self.registry.write().insert(uuid.to_string(), instance); // lock-class: registry.instances
    }

    /// Look up an instance.
    pub fn get(&self, uuid: &str) -> Option<Arc<dyn LabMod>> {
        self.registry.read().get(uuid).cloned() // lock-class: registry.instances
    }

    /// All `(uuid, instance)` pairs.
    pub fn instances(&self) -> Vec<(String, Arc<dyn LabMod>)> {
        self.registry
            .read() // lock-class: registry.instances
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Invoke `state_repair` on every registered instance (client-side
    /// crash recovery, §III-C3).
    pub fn repair_all(&self) {
        for (_, m) in self.instances() {
            m.state_repair();
        }
    }

    // ---- upgrades ----------------------------------------------------------

    /// Queue an upgrade (the `modify.mods` API).
    pub fn request_upgrade(&self, req: UpgradeRequest) {
        self.upgrades.lock().push(req); // lock-class: registry.upgrades
    }

    /// Number of queued upgrades.
    pub fn pending_upgrades(&self) -> usize {
        self.upgrades.lock().len() // lock-class: registry.upgrades
    }

    /// Virtual time workers must fast-forward to after a pause.
    pub fn resume_vt(&self) -> u64 {
        self.resume_vt.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Run the upgrade protocol over all queued requests. Called by the
    /// Runtime admin every `t` ms. `admin_ctx` should start at the current
    /// worker high-watermark. Returns the number of upgrades applied.
    ///
    /// `workers_running` tells the protocol whether live workers will ack
    /// the pending flags (true in the full Runtime) or whether the admin
    /// must ack on their behalf (standalone/unit-test use).
    pub fn process_upgrades(
        &self,
        admin_ctx: &mut Ctx,
        ipc: &IpcManager<Message>,
        workers_running: bool,
    ) -> usize {
        let batch: Vec<UpgradeRequest> = std::mem::take(&mut *self.upgrades.lock()); // lock-class: registry.upgrades
        if batch.is_empty() {
            return 0;
        }
        // 1. Quiesce: mark primary queues, wait for worker acks.
        let primaries = ipc.primary_queues();
        for q in &primaries {
            q.mark_update_pending();
        }
        if workers_running {
            let deadline = Instant::now() + Duration::from_secs(10);
            while primaries
                .iter()
                .any(|q| q.upgrade_flag() == UpgradeFlag::UpdatePending)
            {
                if Instant::now() > deadline {
                    break; // worker died; proceed rather than deadlock
                }
                std::thread::yield_now();
            }
        } else {
            for q in &primaries {
                q.ack_update();
            }
        }
        // 2. Drain intermediate queues.
        let intermediates = ipc.intermediate_queues();
        if workers_running {
            let deadline = Instant::now() + Duration::from_secs(10);
            while intermediates.iter().any(|q| q.sq_depth() > 0) {
                if Instant::now() > deadline {
                    break;
                }
                std::thread::yield_now();
            }
        }
        // 3. Apply each upgrade.
        let n = batch.len();
        for up in batch {
            // Load the module binary from storage (dominant cost).
            if let Some(dev) = &up.code_device {
                let mut remaining = up.code_bytes;
                let mut lba = 0u64;
                let mut buf = vec![0u8; 128 * 1024];
                while remaining > 0 {
                    let chunk = remaining.min(buf.len());
                    let aligned = chunk.next_multiple_of(labstor_sim::SECTOR_SIZE);
                    let _ = dev.read(admin_ctx, lba, &mut buf[..aligned]);
                    lba += (aligned / labstor_sim::SECTOR_SIZE) as u64;
                    remaining -= chunk;
                }
            }
            admin_ctx.advance(MODULE_LINK_NS);
            // Build the replacement and pull state across.
            let built = self
                .factories
                .read() // lock-class: registry.factories
                .get(&up.type_name)
                .cloned()
                .map(|f| f(&up.params));
            if let Some(new_instance) = built {
                if let Some(old) = self.get(&up.uuid) {
                    new_instance.state_update(old.as_ref());
                    admin_ctx.advance(STATE_TRANSFER_NS);
                }
                self.registry.write().insert(up.uuid.clone(), new_instance); // lock-class: registry.instances
            }
            // Decentralized: propagate the swap to every connected client.
            if up.kind == UpgradeKind::Decentralized {
                let clients = ipc.connections().len() as u64;
                admin_ctx.advance(clients * PER_CLIENT_PROPAGATE_NS);
            }
        }
        // 4. Resume: publish the post-upgrade virtual time and unpause.
        self.resume_vt
            .store(admin_ctx.now(), std::sync::atomic::Ordering::Release);
        for q in &primaries {
            q.clear_update();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labmod::{ModType, StackEnv};
    use crate::request::{Request, RespPayload};
    use labstor_sim::DeviceKind;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A mod holding a counter that must survive upgrades.
    struct Versioned {
        version: u64,
        counter: AtomicU64,
    }

    impl LabMod for Versioned {
        fn type_name(&self) -> &'static str {
            "versioned"
        }
        fn mod_type(&self) -> ModType {
            ModType::Dummy
        }
        fn process(&self, _ctx: &mut Ctx, _req: Request, _env: &StackEnv<'_>) -> RespPayload {
            self.counter.fetch_add(1, Ordering::Relaxed);
            RespPayload::Ok
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            100
        }
        fn state_update(&self, old: &dyn LabMod) {
            if let Some(prev) = old.as_any().downcast_ref::<Versioned>() {
                self.counter
                    .store(prev.counter.load(Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn manager_with_factory() -> ModuleManager {
        let mm = ModuleManager::new();
        let version = Arc::new(AtomicU64::new(1));
        let v = version.clone();
        mm.register_factory(
            "versioned",
            Arc::new(move |_params| {
                Arc::new(Versioned {
                    version: v.fetch_add(1, Ordering::Relaxed),
                    counter: AtomicU64::new(0),
                }) as Arc<dyn LabMod>
            }),
        );
        mm
    }

    #[test]
    fn instantiate_is_idempotent_per_uuid() {
        let mm = manager_with_factory();
        let a = mm
            .instantiate("u1", "versioned", &serde_json::Value::Null)
            .unwrap();
        let b = mm
            .instantiate("u1", "versioned", &serde_json::Value::Null)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same uuid must reuse the instance");
        let c = mm
            .instantiate("u2", "versioned", &serde_json::Value::Null)
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn unknown_type_rejected() {
        let mm = ModuleManager::new();
        assert!(mm
            .instantiate("u", "ghost", &serde_json::Value::Null)
            .is_err());
    }

    #[test]
    fn centralized_upgrade_swaps_and_preserves_state() {
        let mm = manager_with_factory();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(8);
        let old = mm
            .instantiate("u1", "versioned", &serde_json::Value::Null)
            .unwrap();
        let old_v = old.as_any().downcast_ref::<Versioned>().unwrap();
        old_v.counter.store(42, Ordering::Relaxed);
        let before_version = old_v.version;

        mm.request_upgrade(UpgradeRequest {
            uuid: "u1".into(),
            type_name: "versioned".into(),
            params: serde_json::Value::Null,
            kind: UpgradeKind::Centralized,
            code_bytes: 1 << 20,
            code_device: Some(SimDevice::preset(DeviceKind::Nvme)),
        });
        let mut admin = Ctx::new();
        assert_eq!(mm.process_upgrades(&mut admin, &ipc, false), 1);

        let new = mm.get("u1").unwrap();
        let new_v = new.as_any().downcast_ref::<Versioned>().unwrap();
        assert!(
            new_v.version > before_version,
            "a fresh instance was installed"
        );
        assert_eq!(
            new_v.counter.load(Ordering::Relaxed),
            42,
            "state transferred"
        );
        // Cost: code read + link + state transfer — milliseconds, not µs.
        assert!(admin.now() > 3_000_000, "upgrade cost {} ns", admin.now());
        assert_eq!(mm.resume_vt(), admin.now());
    }

    #[test]
    fn upgrade_quiesces_and_resumes_queues() {
        let mm = manager_with_factory();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(8);
        let conn = ipc.connect(labstor_ipc::Credentials::new(1, 0, 0), 1);
        mm.instantiate("u1", "versioned", &serde_json::Value::Null)
            .unwrap();
        mm.request_upgrade(UpgradeRequest {
            uuid: "u1".into(),
            type_name: "versioned".into(),
            params: serde_json::Value::Null,
            kind: UpgradeKind::Centralized,
            code_bytes: 0,
            code_device: None,
        });
        let mut admin = Ctx::new();
        mm.process_upgrades(&mut admin, &ipc, false);
        assert_eq!(
            conn.queues[0].upgrade_flag(),
            UpgradeFlag::None,
            "queues resumed"
        );
    }

    #[test]
    fn decentralized_costs_more_with_clients() {
        let mm = manager_with_factory();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(8);
        for pid in 0..4 {
            ipc.connect(labstor_ipc::Credentials::new(pid, 0, 0), 1);
        }
        mm.instantiate("u1", "versioned", &serde_json::Value::Null)
            .unwrap();
        let run = |kind: UpgradeKind| {
            mm.request_upgrade(UpgradeRequest {
                uuid: "u1".into(),
                type_name: "versioned".into(),
                params: serde_json::Value::Null,
                kind,
                code_bytes: 0,
                code_device: None,
            });
            let mut admin = Ctx::new();
            mm.process_upgrades(&mut admin, &ipc, false);
            admin.now()
        };
        let central = run(UpgradeKind::Centralized);
        let decentral = run(UpgradeKind::Decentralized);
        assert!(
            decentral > central,
            "decentralized propagates to clients: {decentral} vs {central}"
        );
    }

    #[test]
    fn no_upgrades_is_free() {
        let mm = ModuleManager::new();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(1);
        let mut admin = Ctx::new();
        assert_eq!(mm.process_upgrades(&mut admin, &ipc, false), 0);
        assert_eq!(admin.now(), 0);
    }

    #[test]
    fn repo_mount_limits_and_ownership() {
        let mm = ModuleManager::new();
        // Per-user limit.
        for i in 0..8 {
            mm.mount_repo(&format!("u{i}"), 1000).unwrap();
        }
        assert!(mm.mount_repo("one-too-many", 1000).is_err());
        // Root is unlimited.
        for i in 0..12 {
            mm.mount_repo(&format!("r{i}"), 0).unwrap();
        }
        // Ownership on unmount.
        assert!(mm.unmount_repo("u0", 2000).is_err(), "stranger rejected");
        mm.unmount_repo("u0", 1000).unwrap();
        mm.unmount_repo("u1", 0).unwrap(); // root may
        assert!(mm.mount_repo("u0", 1000).is_ok(), "slot freed");
    }

    #[test]
    fn repo_trust_follows_ownership() {
        let mm = ModuleManager::new();
        mm.mount_repo("system", 0).unwrap();
        mm.mount_repo("sketchy", 1000).unwrap();
        mm.register_factory_in_repo(
            "system",
            "sys_mod",
            Arc::new(|_p| {
                Arc::new(Versioned {
                    version: 1,
                    counter: AtomicU64::new(0),
                }) as Arc<dyn LabMod>
            }),
        )
        .unwrap();
        mm.register_factory_in_repo(
            "sketchy",
            "sketchy_mod",
            Arc::new(|_p| {
                Arc::new(Versioned {
                    version: 1,
                    counter: AtomicU64::new(0),
                }) as Arc<dyn LabMod>
            }),
        )
        .unwrap();
        assert!(mm.type_is_trusted("sys_mod"));
        assert!(!mm.type_is_trusted("sketchy_mod"));
        // Built-ins (no repo) are trusted.
        assert!(mm.type_is_trusted("anything_builtin"));
        // Registering into an unmounted repo fails.
        assert!(mm
            .register_factory_in_repo("ghost", "x", Arc::new(|_p| unreachable!()))
            .is_err());
    }

    #[test]
    fn repair_all_reaches_every_instance() {
        // state_repair is a no-op for Versioned; this just exercises the
        // call path over multiple instances.
        let mm = manager_with_factory();
        mm.instantiate("a", "versioned", &serde_json::Value::Null)
            .unwrap();
        mm.instantiate("b", "versioned", &serde_json::Value::Null)
            .unwrap();
        mm.repair_all();
        assert_eq!(mm.instances().len(), 2);
    }
}
