#![warn(missing_docs)]

//! # labstor-core — the LabStor platform
//!
//! The paper's primary contribution (§III): a modular, extensible,
//! userspace I/O platform built from
//!
//! * **LabMods** ([`labmod`]) — single-purpose, self-contained I/O modules
//!   with a *type*, an *operation*, *state* and a *connector*, plus the
//!   platform APIs that make them upgradable, stackable and monitorable:
//!   `state_update`, `state_repair`, `est_processing_time`/`est_total_time`.
//! * **LabStacks** ([`stack`], [`spec`]) — user-composed DAGs of LabMods
//!   defined in a human-readable spec file, mounted into a LabStack
//!   Namespace, modifiable and hot-swappable live.
//! * **The LabStor Runtime** ([`runtime`]) — the execution engine:
//!   IPC-connected clients ([`client`]), a Module Manager with
//!   centralized/decentralized live-upgrade protocols ([`registry`]),
//!   polling Workers ([`worker`]), a modular Work Orchestrator
//!   ([`orchestrator`]) with the paper's round-robin and dynamic
//!   (latency/compute partitioning) policies, and crash recovery.
//!
//! Requests flow as [`request::Request`] values through
//! `labstor-ipc` queue pairs; module implementations live in
//! `labstor-mods`.

pub mod client;
pub mod labmod;
pub mod orchestrator;
pub mod registry;
pub mod request;
pub mod runtime;
pub mod spec;
pub mod stack;
pub mod worker;

pub use client::Client;
pub use labmod::{LabMod, ModType, StackEnv};
pub use orchestrator::{DynamicPolicy, OrchestratorPolicy, RoundRobinPolicy};
pub use registry::{ModuleManager, UpgradeKind, UpgradeRequest};
pub use request::{
    BlockOp, FileStat, FsOp, KvsOp, Message, Payload, Request, RespPayload, Response,
};
pub use runtime::{Runtime, RuntimeConfig};
pub use spec::{StackSpec, VertexSpec};
pub use stack::{ExecMode, LabStack, Namespace, StackId};
