//! LabStack specification files (paper §III-B, §III-D).
//!
//! "LabStacks are defined in a specification file which includes: a) a
//! mount point …; b) a set of governing rules, such as priority hints and
//! execution method; and c) a DAG of LabMods, where each vertex contains
//! the LabMod name, LabMod UUID, attributes for initialization, and a set
//! of outputs."
//!
//! The paper uses YAML; this reproduction uses JSON through serde (see
//! DESIGN.md §5) — same schema, same human-readable intent:
//!
//! ```json
//! {
//!   "mount": "fs::/b",
//!   "exec": "async",
//!   "authorized_uids": [0, 1000],
//!   "labmods": [
//!     { "uuid": "perm1", "type": "permissions", "outputs": ["labfs1"] },
//!     { "uuid": "labfs1", "type": "labfs",
//!       "params": {"workers": 4}, "outputs": ["lru1"] },
//!     { "uuid": "lru1",  "type": "lru_cache", "outputs": ["drv1"] },
//!     { "uuid": "drv1",  "type": "kernel_driver" }
//!   ]
//! }
//! ```

use std::collections::HashMap;

use serde_json::{Error as JsonError, FromValue, Map, ToValue, Value};

use crate::stack::{ExecMode, LabStack, Vertex};

/// One vertex of the spec DAG.
#[derive(Debug, Clone)]
pub struct VertexSpec {
    /// Human-readable instance UUID ("a unique instance of a LabMod").
    pub uuid: String,
    /// LabMod type name (resolved against installed factories; the JSON
    /// field is `type`).
    pub type_name: String,
    /// Initialization attributes, passed to the factory. Defaults to
    /// `null` when absent.
    pub params: serde_json::Value,
    /// UUIDs of downstream vertices. Defaults to empty when absent.
    pub outputs: Vec<String>,
}

/// A LabStack specification file.
#[derive(Debug, Clone)]
pub struct StackSpec {
    /// Mount point.
    pub mount: String,
    /// Execution method: "async" (Runtime workers) or "sync" (client
    /// inline). Defaults to async.
    pub exec: String,
    /// Users allowed to modify the stack. Defaults to empty when absent.
    pub authorized_uids: Vec<u32>,
    /// The DAG; the first entry is the stack's entry vertex.
    pub labmods: Vec<VertexSpec>,
}

fn default_exec() -> String {
    "async".to_string()
}

// Hand-written JSON conversions (the offline serde_json shim has no
// derive machinery; see shims/serde_json). Field names and defaulting
// match the previous serde attributes: `type_name` maps to "type", and
// `exec` / `params` / `outputs` / `authorized_uids` are optional.

fn field<'v>(v: &'v Value, ctx: &str, key: &str) -> Result<&'v Value, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError(format!("{ctx}: missing field `{key}`")))
}

fn string_field(v: &Value, ctx: &str, key: &str) -> Result<String, JsonError> {
    field(v, ctx, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| JsonError(format!("{ctx}: field `{key}` must be a string")))
}

impl FromValue for VertexSpec {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        if v.as_object().is_none() {
            return Err(JsonError("labmod entry must be an object".into()));
        }
        let uuid = string_field(v, "labmod", "uuid")?;
        let ctx = format!("labmod '{uuid}'");
        let type_name = string_field(v, &ctx, "type")?;
        let params = v.get("params").cloned().unwrap_or(Value::Null);
        let outputs = match v.get("outputs") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(|o| {
                    o.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| JsonError(format!("{ctx}: outputs must be strings")))
                })
                .collect::<Result<Vec<String>, JsonError>>()?,
            Some(_) => return Err(JsonError(format!("{ctx}: `outputs` must be an array"))),
        };
        Ok(VertexSpec {
            uuid,
            type_name,
            params,
            outputs,
        })
    }
}

impl ToValue for VertexSpec {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("uuid".into(), Value::from(self.uuid.clone()));
        m.insert("type".into(), Value::from(self.type_name.clone()));
        m.insert("params".into(), self.params.clone());
        m.insert("outputs".into(), Value::from(self.outputs.clone()));
        Value::Object(m)
    }
}

impl FromValue for StackSpec {
    fn from_value(v: &Value) -> Result<Self, JsonError> {
        if v.as_object().is_none() {
            return Err(JsonError("stack spec must be an object".into()));
        }
        let mount = string_field(v, "spec", "mount")?;
        let exec = match v.get("exec") {
            None => default_exec(),
            Some(e) => e
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| JsonError("spec: `exec` must be a string".into()))?,
        };
        let authorized_uids = match v.get("authorized_uids") {
            None => Vec::new(),
            Some(Value::Array(items)) => items
                .iter()
                .map(|u| {
                    u.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| JsonError("spec: uids must be u32".into()))
                })
                .collect::<Result<Vec<u32>, JsonError>>()?,
            Some(_) => return Err(JsonError("spec: `authorized_uids` must be an array".into())),
        };
        let labmods = match field(v, "spec", "labmods")? {
            Value::Array(items) => items
                .iter()
                .map(VertexSpec::from_value)
                .collect::<Result<Vec<VertexSpec>, JsonError>>()?,
            _ => return Err(JsonError("spec: `labmods` must be an array".into())),
        };
        Ok(StackSpec {
            mount,
            exec,
            authorized_uids,
            labmods,
        })
    }
}

impl ToValue for StackSpec {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("mount".into(), Value::from(self.mount.clone()));
        m.insert("exec".into(), Value::from(self.exec.clone()));
        m.insert(
            "authorized_uids".into(),
            Value::from(self.authorized_uids.clone()),
        );
        m.insert(
            "labmods".into(),
            Value::Array(self.labmods.iter().map(ToValue::to_value).collect()),
        );
        Value::Object(m)
    }
}

impl StackSpec {
    /// Parse a spec from its JSON text.
    pub fn parse(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad stack spec: {e}"))
    }

    /// Serialize back to pretty JSON (specs round-trip so `modify_stack`
    /// can diff files).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Execution mode.
    pub fn exec_mode(&self) -> Result<ExecMode, String> {
        match self.exec.as_str() {
            "async" => Ok(ExecMode::Async),
            "sync" => Ok(ExecMode::Sync),
            other => Err(format!(
                "unknown exec mode '{other}' (use \"async\" or \"sync\")"
            )),
        }
    }

    /// Lower the spec into a [`LabStack`] (unmounted: id 0). Checks UUID
    /// uniqueness and that outputs reference declared vertices; DAG
    /// validity (acyclicity) is checked again at mount.
    pub fn to_stack(&self) -> Result<LabStack, String> {
        if self.labmods.is_empty() {
            return Err("spec declares no labmods".into());
        }
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, v) in self.labmods.iter().enumerate() {
            if index.insert(v.uuid.as_str(), i).is_some() {
                return Err(format!("duplicate uuid '{}'", v.uuid));
            }
        }
        let vertices = self
            .labmods
            .iter()
            .map(|v| {
                let outputs =
                    v.outputs
                        .iter()
                        .map(|o| {
                            index.get(o.as_str()).copied().ok_or_else(|| {
                                format!("vertex '{}' outputs to unknown '{o}'", v.uuid)
                            })
                        })
                        .collect::<Result<Vec<usize>, String>>()?;
                Ok(Vertex {
                    uuid: v.uuid.clone(),
                    outputs,
                })
            })
            .collect::<Result<Vec<Vertex>, String>>()?;
        let stack = LabStack {
            id: 0,
            mount: self.mount.clone(),
            exec: self.exec_mode()?,
            vertices,
            authorized_uids: self.authorized_uids.clone(),
        };
        stack.validate()?;
        Ok(stack)
    }

    /// Convenience: build a linear chain spec programmatically.
    pub fn chain(mount: &str, exec: ExecMode, mods: &[(&str, &str)]) -> StackSpec {
        StackSpec {
            mount: mount.to_string(),
            exec: match exec {
                ExecMode::Async => "async".into(),
                ExecMode::Sync => "sync".into(),
            },
            authorized_uids: vec![0],
            labmods: mods
                .iter()
                .enumerate()
                .map(|(i, (uuid, type_name))| VertexSpec {
                    uuid: uuid.to_string(),
                    type_name: type_name.to_string(),
                    params: serde_json::Value::Null,
                    outputs: if i + 1 < mods.len() {
                        vec![mods[i + 1].0.to_string()]
                    } else {
                        vec![]
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "mount": "fs::/b",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "perm1", "type": "permissions", "outputs": ["fs1"] },
            { "uuid": "fs1", "type": "labfs", "params": {"workers": 4}, "outputs": ["drv1"] },
            { "uuid": "drv1", "type": "kernel_driver" }
        ]
    }"#;

    #[test]
    fn parse_and_lower() {
        let spec = StackSpec::parse(SPEC).unwrap();
        let stack = spec.to_stack().unwrap();
        assert_eq!(stack.mount, "fs::/b");
        assert_eq!(stack.exec, ExecMode::Async);
        assert_eq!(stack.vertices.len(), 3);
        assert_eq!(stack.vertices[0].outputs, vec![1]);
        assert_eq!(stack.vertices[1].outputs, vec![2]);
        assert!(stack.vertices[2].outputs.is_empty());
    }

    #[test]
    fn roundtrip_json() {
        let spec = StackSpec::parse(SPEC).unwrap();
        let again = StackSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(again.labmods.len(), 3);
        assert_eq!(again.labmods[1].params["workers"], 4);
    }

    #[test]
    fn duplicate_uuid_rejected() {
        let mut spec = StackSpec::parse(SPEC).unwrap();
        spec.labmods[2].uuid = "perm1".into();
        assert!(spec.to_stack().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn unknown_output_rejected() {
        let mut spec = StackSpec::parse(SPEC).unwrap();
        spec.labmods[0].outputs = vec!["ghost".into()];
        assert!(spec.to_stack().unwrap_err().contains("unknown"));
    }

    #[test]
    fn bad_exec_mode_rejected() {
        let mut spec = StackSpec::parse(SPEC).unwrap();
        spec.exec = "warp".into();
        assert!(spec.to_stack().is_err());
    }

    #[test]
    fn cyclic_spec_rejected() {
        let mut spec = StackSpec::parse(SPEC).unwrap();
        spec.labmods[2].outputs = vec!["perm1".into()];
        assert!(spec.to_stack().is_err());
    }

    #[test]
    fn chain_builder() {
        let spec = StackSpec::chain(
            "kv::/a",
            ExecMode::Sync,
            &[("kvs1", "labkvs"), ("drv1", "spdk")],
        );
        let stack = spec.to_stack().unwrap();
        assert_eq!(stack.exec, ExecMode::Sync);
        assert_eq!(stack.vertices[0].outputs, vec![1]);
    }

    #[test]
    fn empty_spec_rejected() {
        let spec = StackSpec {
            mount: "x".into(),
            exec: "async".into(),
            authorized_uids: vec![],
            labmods: vec![],
        };
        assert!(spec.to_stack().is_err());
    }
}
