//! The LabMod abstraction (paper §III-A).
//!
//! A LabMod is "an independent, self-contained code object implementing a
//! well-defined, distinct, single-purpose functionality" comprised of four
//! elements:
//!
//! * **type** — the API set it implements ([`ModType`]);
//! * **operation** — [`LabMod::process`]: well-defined input → output;
//! * **state** — whatever the implementation keeps internally;
//! * **connector** — the client-side entry that packages requests (the
//!   [`crate::client::Client`] and the Generic LabMods in `labstor-mods`).
//!
//! To be upgradable, stackable and monitorable, every LabMod implements
//! the platform APIs: [`LabMod::state_update`] (live upgrade),
//! [`LabMod::state_repair`] (crash recovery), and
//! [`LabMod::est_processing_time`] / [`LabMod::est_total_time`]
//! (performance counters consumed by the Work Orchestrator).

use std::any::Any;

use labstor_sim::Ctx;
use labstor_telemetry::Stage;

use crate::registry::ModuleManager;
use crate::request::{Request, RespPayload};
use crate::stack::LabStack;

/// The API family a LabMod implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModType {
    /// POSIX-style filesystem.
    Filesystem,
    /// Key-value store.
    Kvs,
    /// Page/content cache.
    Cache,
    /// I/O scheduler.
    Scheduler,
    /// Storage driver (Kernel MQ, SPDK, DAX).
    Driver,
    /// Request filter/transformer (permissions, compression, consistency).
    Filter,
    /// Interface multiplexer (GenericFS, GenericKVS).
    Generic,
    /// Test/benchmark module.
    Dummy,
}

/// A LabStor module.
///
/// Implementations are shared (`&self`) because one instance serves many
/// workers; interior state uses its own synchronization (the paper's mods
/// do the same across Runtime threads).
pub trait LabMod: Send + Sync {
    /// The factory/type name this instance was built from (e.g. "labfs").
    fn type_name(&self) -> &'static str;

    /// The API family.
    fn mod_type(&self) -> ModType;

    /// Process one request, possibly forwarding derived requests to the
    /// next DAG stage through `env`.
    fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload;

    /// Estimated processing time of `req` in ns — the performance counter
    /// the Work Orchestrator uses to classify queues as latency-sensitive
    /// or computational.
    fn est_processing_time(&self, req: &Request) -> u64;

    /// Cumulative processing time this instance has spent, in ns.
    fn est_total_time(&self) -> u64 {
        0
    }

    /// Live upgrade: pull state out of the instance being replaced.
    /// Implementations downcast `old` via [`LabMod::as_any`].
    fn state_update(&self, _old: &dyn LabMod) {}

    /// Crash recovery: re-derive volatile state after a Runtime restart
    /// (e.g. LabFS replays its metadata log).
    fn state_repair(&self) {}

    /// Downcast support for `state_update`.
    fn as_any(&self) -> &dyn Any;
}

/// Execution environment handed to [`LabMod::process`]: the stack being
/// executed, the current vertex, and the module registry — everything a
/// mod needs to forward work to its DAG outputs.
pub struct StackEnv<'a> {
    /// The LabStack being executed.
    pub stack: &'a LabStack,
    /// Index of the vertex currently executing.
    pub vertex: usize,
    /// Module registry for resolving output vertices.
    pub registry: &'a ModuleManager,
    /// Domain (address space) executing this stage.
    pub domain: u32,
}

impl StackEnv<'_> {
    /// Forward a derived request to the current vertex's first output.
    ///
    /// This is the paper's asynchronous message-passing between stages,
    /// executed inline on the worker: the hand-off cost is charged and the
    /// next operator runs on the same timeline. Returns `Ok` if the vertex
    /// has no outputs (end of chain).
    pub fn forward(&self, ctx: &mut Ctx, req: Request) -> RespPayload {
        let outputs = match self.stack.vertices.get(self.vertex) {
            Some(v) => &v.outputs,
            None => return RespPayload::Err(format!("no vertex {} in stack", self.vertex)),
        };
        let Some(&next) = outputs.first() else {
            return RespPayload::Ok;
        };
        self.forward_to(ctx, next, req)
    }

    /// Forward a derived request to a specific output vertex.
    pub fn forward_to(&self, ctx: &mut Ctx, next: usize, req: Request) -> RespPayload {
        let Some(vertex) = self.stack.vertices.get(next) else {
            return RespPayload::Err(format!("stack has no vertex {next}"));
        };
        let Some(mod_) = self.registry.get(&vertex.uuid) else {
            return RespPayload::Err(format!("module {} not in registry", vertex.uuid));
        };
        let rec = self.registry.telemetry();
        let recording = rec.enabled();
        let (req_id, stack_id) = (req.id, self.stack.id);
        let hop_t0 = ctx.now();
        labstor_ipc::cost::same_domain_hop(ctx);
        if recording {
            // The inter-stage hand-off is IPC cost, not the parent
            // vertex's — record it so the anatomy attributes it right.
            rec.record(Stage::Hop, req_id, stack_id, next, hop_t0, ctx.now());
        }
        let env = StackEnv {
            stack: self.stack,
            vertex: next,
            registry: self.registry,
            domain: self.domain,
        };
        let mut fwd = req;
        fwd.vertex = next;
        let t0 = ctx.now();
        let resp = mod_.process(ctx, fwd, &env);
        if recording {
            rec.record(Stage::Vertex, req_id, stack_id, next, t0, ctx.now());
        }
        resp
    }

    /// Bill `fuel` pushdown instruction units to the requesting tenant.
    ///
    /// Two charges keep the execution honest: virtual time advances by
    /// [`labstor_pushdown::FUEL_NS`] per unit (the interpreter's modeled
    /// cost — the worker timeline pays for the scan), and the tenant's
    /// token bucket is debited the same units it would pay for payload
    /// bytes, so a hostile program competes against its own bandwidth
    /// budget instead of starving neighbors. Over-budget tenants get the
    /// retry-after hint back (`Err(retry_vns)`); callers withhold the
    /// result and return a throttled error. Standalone managers (unit
    /// harnesses) have no tenant table: time is charged, admission is a
    /// no-op.
    pub fn charge_fuel(
        &self,
        ctx: &mut Ctx,
        creds: &labstor_ipc::Credentials,
        fuel: u64,
    ) -> Result<(), u64> {
        ctx.advance(fuel.saturating_mul(labstor_pushdown::FUEL_NS));
        let Some(table) = self.registry.tenants() else {
            return Ok(());
        };
        let Some(state) = table.resolve(creds.tenant) else {
            return Ok(());
        };
        state.note_fuel(fuel);
        state.try_admit(ctx.now(), fuel)
    }

    /// Record a device service window (`[t0, t1]` in virtual ns) observed
    /// by this vertex — driver LabMods call this with the completion's
    /// `done_at - service_ns .. done_at`. No-op while the recorder is
    /// disabled.
    pub fn stamp_device(&self, req_id: u64, t0: u64, t1: u64) {
        self.registry
            .telemetry()
            .record(Stage::Device, req_id, self.stack.id, self.vertex, t0, t1);
    }

    /// Forward a derived request to *every* output vertex (fan-out, e.g.
    /// mirroring). Returns the last stage's response, or the first error.
    pub fn forward_all(&self, ctx: &mut Ctx, req: Request) -> RespPayload {
        let outputs = match self.stack.vertices.get(self.vertex) {
            Some(v) => v.outputs.clone(),
            None => return RespPayload::Err(format!("no vertex {} in stack", self.vertex)),
        };
        if outputs.is_empty() {
            return RespPayload::Ok;
        }
        let mut last = RespPayload::Ok;
        for next in outputs {
            let resp = self.forward_to(ctx, next, req.clone());
            if !resp.is_ok() {
                return resp;
            }
            last = resp;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Payload;
    use crate::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::Credentials;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A mod that counts invocations and forwards.
    struct Probe {
        hits: AtomicU64,
        forward: bool,
    }

    impl LabMod for Probe {
        fn type_name(&self) -> &'static str {
            "probe"
        }
        fn mod_type(&self) -> ModType {
            ModType::Dummy
        }
        fn process(&self, ctx: &mut Ctx, req: Request, env: &StackEnv<'_>) -> RespPayload {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ctx.advance(100);
            if self.forward {
                env.forward(ctx, req)
            } else {
                RespPayload::Ok
            }
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            100
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    fn chain_stack() -> (ModuleManager, LabStack, Arc<Probe>, Arc<Probe>) {
        let mm = ModuleManager::new();
        let a = Arc::new(Probe {
            hits: AtomicU64::new(0),
            forward: true,
        });
        let b = Arc::new(Probe {
            hits: AtomicU64::new(0),
            forward: false,
        });
        mm.insert_instance("a", a.clone());
        mm.insert_instance("b", b.clone());
        let stack = LabStack {
            id: 1,
            mount: "fs::/t".into(),
            exec: ExecMode::Async,
            vertices: vec![
                Vertex {
                    uuid: "a".into(),
                    outputs: vec![1],
                },
                Vertex {
                    uuid: "b".into(),
                    outputs: vec![],
                },
            ],
            authorized_uids: vec![0],
        };
        (mm, stack, a, b)
    }

    #[test]
    fn forward_walks_the_chain() {
        let (mm, stack, a, b) = chain_stack();
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: &mm,
            domain: 0,
        };
        let mut ctx = Ctx::new();
        let req = Request::new(
            1,
            1,
            Payload::Dummy { work_ns: 0 },
            Credentials::new(1, 0, 0),
        );
        let head = mm.get("a").unwrap();
        let resp = head.process(&mut ctx, req, &env);
        assert!(resp.is_ok());
        assert_eq!(a.hits.load(Ordering::Relaxed), 1);
        assert_eq!(b.hits.load(Ordering::Relaxed), 1);
        // Both stages' work plus the inter-stage hop are on the clock.
        assert!(ctx.now() >= 200 + labstor_ipc::cost::SAME_DOMAIN_HOP_NS);
    }

    #[test]
    fn forward_past_end_is_ok() {
        let (mm, stack, _, _) = chain_stack();
        let env = StackEnv {
            stack: &stack,
            vertex: 1,
            registry: &mm,
            domain: 0,
        };
        let mut ctx = Ctx::new();
        let req = Request::new(
            1,
            1,
            Payload::Dummy { work_ns: 0 },
            Credentials::new(1, 0, 0),
        );
        assert!(env.forward(&mut ctx, req).is_ok());
    }

    #[test]
    fn forward_to_missing_vertex_errors() {
        let (mm, stack, _, _) = chain_stack();
        let env = StackEnv {
            stack: &stack,
            vertex: 0,
            registry: &mm,
            domain: 0,
        };
        let mut ctx = Ctx::new();
        let req = Request::new(
            1,
            1,
            Payload::Dummy { work_ns: 0 },
            Credentials::new(1, 0, 0),
        );
        assert!(!env.forward_to(&mut ctx, 9, req).is_ok());
    }
}
