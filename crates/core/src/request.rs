//! The request/response vocabulary flowing through LabStor queues.
//!
//! LabMods "take a well-defined input, process the input, and produce a
//! well-defined output" (§III-A). The platform ships interface payloads
//! for the I/O types it bundles — POSIX-style file operations, key-value
//! operations, block I/O between stack stages — plus a `Custom` escape
//! hatch so third-party LabMods can define their own interfaces without
//! touching the platform.

use labstor_ipc::{BufHandle, Credentials, InlineData};
use labstor_pushdown::VerifiedProgram;
use std::sync::Arc;

/// POSIX-flavoured file operations (the GenericFS/LabFS interface).
#[derive(Debug, Clone)]
pub enum FsOp {
    /// Create a regular file; respond with its inode.
    Create {
        /// Stack-relative path.
        path: String,
        /// Permission bits.
        mode: u16,
    },
    /// Resolve (and optionally create) a file; respond with its inode.
    Open {
        /// Stack-relative path.
        path: String,
        /// Create if missing.
        create: bool,
        /// Truncate to zero length.
        truncate: bool,
    },
    /// Create a directory.
    Mkdir {
        /// Stack-relative path.
        path: String,
        /// Permission bits.
        mode: u16,
    },
    /// Write `data` at `offset` of inode `ino`.
    Write {
        /// Target inode.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Payload.
        data: Vec<u8>,
    },
    /// Read `len` bytes at `offset` of inode `ino`.
    Read {
        /// Source inode.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Zero-copy write: the payload lives in a pooled shared-memory
    /// buffer; stages pass the handle by refcount bump, never by copy.
    WriteBuf {
        /// Target inode.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Shared-memory payload.
        buf: BufHandle,
    },
    /// Zero-copy read: respond with [`RespPayload::DataBuf`] — a handle
    /// into the page cache (hit) or a freshly filled pool buffer (miss).
    ReadBuf {
        /// Source inode.
        ino: u64,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Pushdown read: run a verified bytecode program over `len` bytes
    /// at `offset` inside the stack, shipping back only the result
    /// (aggregate or matching records) instead of the pages. The program
    /// attachment rides the envelope by `Arc` — verified once
    /// client-side, trusted by type thereafter.
    ReadFiltered {
        /// Source inode.
        ino: u64,
        /// Byte offset (must be record-aligned).
        offset: u64,
        /// Bytes to scan.
        len: usize,
        /// The verified filter/aggregation program.
        prog: Arc<VerifiedProgram>,
    },
    /// Remove a file or empty directory.
    Unlink {
        /// Stack-relative path.
        path: String,
    },
    /// Rename a file or directory.
    Rename {
        /// Existing path.
        from: String,
        /// New path (replaced if it exists, POSIX-style).
        to: String,
    },
    /// Stat a path.
    Stat {
        /// Stack-relative path.
        path: String,
    },
    /// List a directory.
    Readdir {
        /// Stack-relative path.
        path: String,
    },
    /// Set file size.
    Truncate {
        /// Target inode.
        ino: u64,
        /// New size.
        size: u64,
    },
    /// Persist one file.
    Fsync {
        /// Target inode.
        ino: u64,
    },
}

/// Key-value operations (the GenericKVS/LabKVS interface).
#[derive(Debug, Clone)]
pub enum KvsOp {
    /// Store a value under a key (single round trip — the paper's point
    /// versus open-modify-close).
    Put {
        /// Key.
        key: String,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Fetch a value.
    Get {
        /// Key.
        key: String,
    },
    /// Delete a key.
    Remove {
        /// Key.
        key: String,
    },
    /// Zero-copy put: the value lives in a pooled shared-memory buffer.
    PutBuf {
        /// Key.
        key: String,
        /// Shared-memory value bytes.
        buf: BufHandle,
    },
    /// Pushdown point-query: fetch `key`'s value only if the program
    /// matches it. A miss at the first table level triggers the in-stack
    /// resubmission hook (walk the next level) instead of a client
    /// round trip.
    GetWhere {
        /// Key.
        key: String,
        /// The verified predicate program.
        prog: Arc<VerifiedProgram>,
    },
    /// Pushdown scan: evaluate the program over every value whose key
    /// starts with `prefix`, shipping back matching keys or an
    /// aggregate instead of the values.
    ScanWhere {
        /// Key prefix selecting the scan range.
        prefix: String,
        /// The verified predicate/aggregation program.
        prog: Arc<VerifiedProgram>,
    },
}

/// Block I/O between stack stages (filesystem → cache → scheduler →
/// driver).
#[derive(Debug, Clone)]
pub enum BlockOp {
    /// Write sectors.
    Write {
        /// Start LBA (512-byte sectors).
        lba: u64,
        /// Payload (sector multiple).
        data: Vec<u8>,
    },
    /// Read sectors.
    Read {
        /// Start LBA.
        lba: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Zero-copy sector write: payload passed by shared-memory handle.
    WriteBuf {
        /// Start LBA (512-byte sectors).
        lba: u64,
        /// Payload (sector multiple) in a pooled buffer.
        buf: BufHandle,
    },
    /// Zero-copy sector read: respond with [`RespPayload::DataBuf`].
    ReadBuf {
        /// Start LBA.
        lba: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Durability barrier.
    Flush,
}

/// The operation a request carries.
#[derive(Debug, Clone)]
pub enum Payload {
    /// File operation.
    Fs(FsOp),
    /// Key-value operation.
    Kvs(KvsOp),
    /// Block operation.
    Block(BlockOp),
    /// No-op of a given simulated processing size (upgrade/orchestration
    /// experiments message a "dummy module").
    Dummy {
        /// Modeled processing cost in ns.
        work_ns: u64,
    },
    /// Third-party interface: an op name and opaque bytes.
    Custom {
        /// Operation name (dispatched by the receiving LabMod).
        op: String,
        /// Opaque payload.
        data: Vec<u8>,
    },
}

/// Stat data returned through responses (mirrors the kernel's, but owned
/// by the platform vocabulary so mods need not depend on the kernel
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: u64,
    /// Size in bytes.
    pub size: u64,
    /// True for directories.
    pub is_dir: bool,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Permission bits.
    pub mode: u16,
}

/// A request addressed to (the entry vertex of) a LabStack.
#[derive(Debug, Clone)]
pub struct Request {
    /// Unique request id (chosen by the submitting connector).
    pub id: u64,
    /// Target LabStack.
    pub stack: u64,
    /// Target vertex within the stack DAG (entry vertex = 0).
    pub vertex: usize,
    /// The operation.
    pub payload: Payload,
    /// Credentials of the originating process.
    pub creds: Credentials,
    /// CPU core the request originated on (NoOp scheduling keys off it).
    pub core: usize,
    /// Hardware-queue hint set by an I/O scheduler LabMod for the driver.
    pub qid_hint: Option<usize>,
}

impl Request {
    /// Build a request for a stack's entry vertex.
    pub fn new(id: u64, stack: u64, payload: Payload, creds: Credentials) -> Self {
        Request {
            id,
            stack,
            vertex: 0,
            payload,
            creds,
            core: 0,
            qid_hint: None,
        }
    }

    /// Same, tagged with the originating CPU core.
    pub fn on_core(id: u64, stack: u64, payload: Payload, creds: Credentials, core: usize) -> Self {
        Request {
            id,
            stack,
            vertex: 0,
            payload,
            creds,
            core,
            qid_hint: None,
        }
    }

    /// Approximate payload size in bytes (used for cost estimation).
    pub fn payload_bytes(&self) -> usize {
        match &self.payload {
            Payload::Fs(FsOp::Write { data, .. }) => data.len(),
            Payload::Fs(
                FsOp::Read { len, .. } | FsOp::ReadBuf { len, .. } | FsOp::ReadFiltered { len, .. },
            ) => *len,
            Payload::Fs(FsOp::WriteBuf { buf, .. }) => buf.len(),
            Payload::Kvs(KvsOp::Put { value, .. }) => value.len(),
            Payload::Kvs(KvsOp::PutBuf { buf, .. }) => buf.len(),
            Payload::Block(BlockOp::Write { data, .. }) => data.len(),
            Payload::Block(BlockOp::Read { len, .. } | BlockOp::ReadBuf { len, .. }) => *len,
            Payload::Block(BlockOp::WriteBuf { buf, .. }) => buf.len(),
            Payload::Custom { data, .. } => data.len(),
            _ => 0,
        }
    }
}

/// What a completed request returns.
#[derive(Debug, Clone)]
pub enum RespPayload {
    /// Success with no data.
    Ok,
    /// An inode (create/open).
    Ino(u64),
    /// Bytes read / value fetched.
    Data(Vec<u8>),
    /// Zero-copy read result: a refcounted view of shared-memory bytes
    /// (a page-cache hit is a refcount bump, not a copy).
    DataBuf(BufHandle),
    /// Small result (≤ 64 B) carried by value inside the response
    /// envelope — no BufferPool round trip, zero counted payload
    /// copies. Pushdown aggregates and short KVS values ride here.
    Inline(InlineData),
    /// Bytes written.
    Len(usize),
    /// Stat result.
    Stat(FileStat),
    /// Directory listing.
    Names(Vec<String>),
    /// Failure with a message.
    Err(String),
}

impl RespPayload {
    /// True unless the payload is an error.
    pub fn is_ok(&self) -> bool {
        !matches!(self, RespPayload::Err(_))
    }

    /// The returned bytes regardless of representation (legacy `Vec` or
    /// shared-memory handle); `None` for non-data payloads.
    pub fn data_bytes(&self) -> Option<&[u8]> {
        match self {
            RespPayload::Data(v) => Some(v),
            RespPayload::DataBuf(b) => Some(b.as_slice()),
            RespPayload::Inline(d) => Some(d.as_slice()),
            _ => None,
        }
    }
}

/// A completed request.
#[derive(Debug, Clone)]
pub struct Response {
    /// Id of the originating request.
    pub id: u64,
    /// Result payload.
    pub payload: RespPayload,
}

impl Response {
    /// Success response.
    pub fn ok(id: u64, payload: RespPayload) -> Self {
        Response { id, payload }
    }

    /// Error response.
    pub fn err(id: u64, msg: impl Into<String>) -> Self {
        Response {
            id,
            payload: RespPayload::Err(msg.into()),
        }
    }
}

/// What flows through queue pairs: requests toward workers, responses
/// back.
#[derive(Debug, Clone)]
pub enum Message {
    /// Client → Runtime.
    Req(Request),
    /// Runtime → client.
    Resp(Response),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_bytes_reflect_data() {
        let creds = Credentials::new(1, 0, 0);
        let w = Request::new(
            1,
            0,
            Payload::Fs(FsOp::Write {
                ino: 1,
                offset: 0,
                data: vec![0u8; 4096],
            }),
            creds,
        );
        assert_eq!(w.payload_bytes(), 4096);
        let r = Request::new(
            2,
            0,
            Payload::Fs(FsOp::Read {
                ino: 1,
                offset: 0,
                len: 512,
            }),
            creds,
        );
        assert_eq!(r.payload_bytes(), 512);
        let d = Request::new(3, 0, Payload::Dummy { work_ns: 10 }, creds);
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn response_helpers() {
        assert!(Response::ok(1, RespPayload::Ok).payload.is_ok());
        assert!(!Response::err(1, "nope").payload.is_ok());
    }
}
