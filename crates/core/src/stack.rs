//! LabStacks and the LabStack Namespace (paper §III-B).
//!
//! A LabStack is "a user-defined combination of compatible LabMods into a
//! single I/O system": a mount point, a set of governing rules, and a DAG
//! of LabMod instances identified by human-readable UUIDs. Mounted stacks
//! live in the Namespace, a shared key-value store from mount point to
//! stack, and can be modified dynamically (vertex insertion/removal) while
//! applications run.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Stack identifier within the Namespace.
pub type StackId = u64;

/// How a stack's DAG executes (paper §III-B "execution method").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Requests travel through IPC to Runtime workers (centralized:
    /// security, resource management, a separate address space).
    Async,
    /// The DAG executes directly in the client thread (decentralized:
    /// lowest latency, no IPC, weaker isolation — the paper's `Lab-D`).
    Sync,
}

/// One vertex of a LabStack DAG: a LabMod instance and its downstream
/// edges.
#[derive(Debug, Clone)]
pub struct Vertex {
    /// Instance UUID in the Module Registry.
    pub uuid: String,
    /// Indices of downstream vertices.
    pub outputs: Vec<usize>,
}

/// A mounted I/O stack.
#[derive(Debug, Clone)]
pub struct LabStack {
    /// Namespace-assigned id.
    pub id: StackId,
    /// Human-readable mount point (e.g. `fs::/b`).
    pub mount: String,
    /// Execution method.
    pub exec: ExecMode,
    /// The DAG; vertex 0 is the entry.
    pub vertices: Vec<Vertex>,
    /// Users allowed to modify the stack (governing rules).
    pub authorized_uids: Vec<u32>,
}

impl LabStack {
    /// Verify the DAG: non-empty, edges in range, acyclic.
    pub fn validate(&self) -> Result<(), String> {
        if self.vertices.is_empty() {
            return Err("stack has no vertices".into());
        }
        for (i, v) in self.vertices.iter().enumerate() {
            for &o in &v.outputs {
                if o >= self.vertices.len() {
                    return Err(format!(
                        "vertex {i} ({}) points to missing vertex {o}",
                        v.uuid
                    ));
                }
            }
        }
        // Cycle check: DFS with colors.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        fn dfs(n: usize, vs: &[Vertex], color: &mut [Color]) -> Result<(), String> {
            color[n] = Color::Gray;
            for &o in &vs[n].outputs {
                match color[o] {
                    Color::Gray => return Err(format!("cycle through vertex {o}")),
                    Color::White => dfs(o, vs, color)?,
                    Color::Black => {}
                }
            }
            color[n] = Color::Black;
            Ok(())
        }
        let mut color = vec![Color::White; self.vertices.len()];
        for i in 0..self.vertices.len() {
            if color[i] == Color::White {
                dfs(i, &self.vertices, &mut color)?;
            }
        }
        Ok(())
    }

    /// True if `uid` may modify this stack.
    pub fn authorizes(&self, uid: u32) -> bool {
        uid == 0 || self.authorized_uids.contains(&uid)
    }
}

/// The LabStack Namespace: mount point → stack, with the prefix lookup
/// GenericFS uses ("check if the path is in the Namespace; if not, check
/// the parent directory", §III-E).
#[derive(Default)]
pub struct Namespace {
    by_mount: RwLock<HashMap<String, Arc<LabStack>>>,
    by_id: RwLock<HashMap<StackId, Arc<LabStack>>>,
    next_id: AtomicU64,
}

impl Namespace {
    /// Empty namespace.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Mount a stack (assigns its id). Fails on an occupied mount point or
    /// an invalid DAG.
    pub fn mount(&self, mut stack: LabStack) -> Result<Arc<LabStack>, String> {
        stack.validate()?;
        let mut by_mount = self.by_mount.write(); // lock-class: stack.mounts
        if by_mount.contains_key(&stack.mount) {
            return Err(format!("mount point {} already in use", stack.mount));
        }
        stack.id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: fresh-id allocation; atomicity alone suffices
        let arc = Arc::new(stack);
        by_mount.insert(arc.mount.clone(), arc.clone());
        self.by_id.write().insert(arc.id, arc.clone()); // lock-class: stack.ids
        Ok(arc)
    }

    /// Unmount by mount point.
    pub fn unmount(&self, mount: &str, uid: u32) -> Result<(), String> {
        let mut by_mount = self.by_mount.write(); // lock-class: stack.mounts
        let stack = by_mount
            .get(mount)
            .ok_or_else(|| format!("{mount} not mounted"))?;
        if !stack.authorizes(uid) {
            return Err(format!("uid {uid} may not modify {mount}"));
        }
        let id = stack.id;
        by_mount.remove(mount);
        self.by_id.write().remove(&id); // lock-class: stack.ids
        Ok(())
    }

    /// Exact-mount lookup.
    pub fn get(&self, mount: &str) -> Option<Arc<LabStack>> {
        self.by_mount.read().get(mount).cloned() // lock-class: stack.mounts
    }

    /// Lookup by id.
    pub fn get_id(&self, id: StackId) -> Option<Arc<LabStack>> {
        self.by_id.read().get(&id).cloned() // lock-class: stack.ids
    }

    /// GenericFS-style resolution: find the stack governing `path` by
    /// checking the path itself, then each ancestor. Returns the stack and
    /// the path remainder relative to the mount.
    pub fn resolve(&self, path: &str) -> Option<(Arc<LabStack>, String)> {
        let by_mount = self.by_mount.read(); // lock-class: stack.mounts
        let mut probe = path.trim_end_matches('/');
        loop {
            if let Some(stack) = by_mount.get(probe) {
                let rest = &path[probe.len()..];
                let rel = if rest.is_empty() {
                    "/".to_string()
                } else {
                    rest.to_string()
                };
                return Some((stack.clone(), rel));
            }
            match probe.rfind('/') {
                Some(0) | None => {
                    return by_mount.get("/").map(|s| (s.clone(), path.to_string()));
                }
                Some(i) => probe = &probe[..i],
            }
        }
    }

    /// Replace a mounted stack's DAG (the `modify_stack` command). The new
    /// DAG is validated; `uid` must be authorized.
    pub fn modify(&self, mount: &str, uid: u32, vertices: Vec<Vertex>) -> Result<(), String> {
        let mut by_mount = self.by_mount.write(); // lock-class: stack.mounts
        let old = by_mount
            .get(mount)
            .ok_or_else(|| format!("{mount} not mounted"))?;
        if !old.authorizes(uid) {
            return Err(format!("uid {uid} may not modify {mount}"));
        }
        let mut new = (**old).clone();
        new.vertices = vertices;
        new.validate()?;
        let arc = Arc::new(new);
        by_mount.insert(mount.to_string(), arc.clone());
        self.by_id.write().insert(arc.id, arc); // lock-class: stack.ids
        Ok(())
    }

    /// All mounted stacks.
    pub fn stacks(&self) -> Vec<Arc<LabStack>> {
        self.by_mount.read().values().cloned().collect() // lock-class: stack.mounts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(mount: &str, n: usize) -> LabStack {
        LabStack {
            id: 0,
            mount: mount.into(),
            exec: ExecMode::Async,
            vertices: (0..n)
                .map(|i| Vertex {
                    uuid: format!("m{i}"),
                    outputs: if i + 1 < n { vec![i + 1] } else { vec![] },
                })
                .collect(),
            authorized_uids: vec![100],
        }
    }

    #[test]
    fn mount_and_lookup() {
        let ns = Namespace::new();
        let s = ns.mount(stack("fs::/a", 2)).unwrap();
        assert!(s.id > 0);
        assert_eq!(ns.get("fs::/a").unwrap().id, s.id);
        assert_eq!(ns.get_id(s.id).unwrap().mount, "fs::/a");
    }

    #[test]
    fn duplicate_mount_rejected() {
        let ns = Namespace::new();
        ns.mount(stack("fs::/a", 1)).unwrap();
        assert!(ns.mount(stack("fs::/a", 1)).is_err());
    }

    #[test]
    fn empty_stack_rejected() {
        let ns = Namespace::new();
        assert!(ns.mount(stack("fs::/e", 0)).is_err());
    }

    #[test]
    fn cyclic_dag_rejected() {
        let mut s = stack("fs::/c", 2);
        s.vertices[1].outputs = vec![0]; // 0 → 1 → 0
        assert!(s.validate().is_err());
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut s = stack("fs::/d", 1);
        s.vertices[0].outputs = vec![5];
        assert!(s.validate().is_err());
    }

    #[test]
    fn resolve_walks_up_ancestors() {
        let ns = Namespace::new();
        ns.mount(stack("fs::/b", 1)).unwrap();
        // Exactly the paper's §III-E example: "fs::/b/hi.txt" is not
        // mounted, its parent "fs::/b" is.
        let (s, rel) = ns.resolve("fs::/b/hi.txt").unwrap();
        assert_eq!(s.mount, "fs::/b");
        assert_eq!(rel, "/hi.txt");
        let (_, rel) = ns.resolve("fs::/b").unwrap();
        assert_eq!(rel, "/");
        assert!(ns.resolve("fs::/zzz/x").is_none());
    }

    #[test]
    fn modify_requires_authorization() {
        let ns = Namespace::new();
        ns.mount(stack("fs::/m", 2)).unwrap();
        let new_vs = vec![Vertex {
            uuid: "solo".into(),
            outputs: vec![],
        }];
        assert!(ns.modify("fs::/m", 999, new_vs.clone()).is_err());
        ns.modify("fs::/m", 100, new_vs).unwrap(); // authorized uid
        assert_eq!(ns.get("fs::/m").unwrap().vertices.len(), 1);
    }

    #[test]
    fn unmount_removes_both_indexes() {
        let ns = Namespace::new();
        let s = ns.mount(stack("fs::/u", 1)).unwrap();
        assert!(ns.unmount("fs::/u", 42).is_err()); // unauthorized
        ns.unmount("fs::/u", 0).unwrap(); // root may
        assert!(ns.get("fs::/u").is_none());
        assert!(ns.get_id(s.id).is_none());
    }
}
