//! Runtime workers: completion-driven reactor threads that drain request
//! queues and execute LabStack DAGs (paper §III-C "Workers").
//!
//! The paper's workers "receive requests by polling request queues"; this
//! runtime retires the poll loop (ROADMAP item 2): each worker is an
//! event loop that sleeps on its [`labstor_ipc::Doorbell`] — rung by
//! producers once per submit burst, by the upgrade handshake's flag
//! edges, by assignment publication, and by shutdown — so a worker whose
//! queues are all idle consumes ~zero host CPU (see `DESIGN.md` §13 and
//! the idle-fleet bench `BENCH_reactor.json`). Each worker owns a
//! virtual-time [`Ctx`]; its busy/total split is the CPU-utilization
//! signal Fig. 5a reports.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::utils::Backoff;
use parking_lot::RwLock;

use labstor_ipc::{Doorbell, Envelope, QueuePair, UpgradeFlag};
use labstor_sim::{Ctx, Watermark};
use labstor_telemetry::{ClockCell, SpanEvent, Stage};

use crate::labmod::StackEnv;
use crate::registry::ModuleManager;
use crate::request::{Message, Request, Response};
use crate::stack::Namespace;

/// The Runtime's domain id (address space 0).
pub const RUNTIME_DOMAIN: u32 = 0;

/// Execute one request against its stack's entry vertex. Shared by
/// workers (async stacks) and clients (sync stacks).
pub fn process_request(
    ctx: &mut Ctx,
    req: Request,
    ns: &Namespace,
    mm: &ModuleManager,
    domain: u32,
) -> Response {
    let id = req.id;
    let Some(stack) = ns.get_id(req.stack) else {
        return Response::err(id, format!("no stack {}", req.stack));
    };
    let Some(vertex) = stack.vertices.get(req.vertex) else {
        return Response::err(
            id,
            format!("stack {} has no vertex {}", req.stack, req.vertex),
        );
    };
    let Some(mod_) = mm.get(&vertex.uuid) else {
        return Response::err(id, format!("module {} not loaded", vertex.uuid));
    };
    let env = StackEnv {
        stack: &stack,
        vertex: req.vertex,
        registry: mm,
        domain,
    };
    let rec = mm.telemetry();
    let recording = rec.enabled();
    let (stack_id, vertex_idx) = (req.stack, req.vertex);
    let t0 = ctx.now();
    let payload = mod_.process(ctx, req, &env);
    if recording {
        // The entry vertex's span is inclusive: downstream vertices,
        // hops and device windows recorded inside `process` nest under
        // it in the trace.
        rec.record(Stage::Vertex, id, stack_id, vertex_idx, t0, ctx.now());
    }
    Response { id, payload }
}

/// A worker's queue assignment, published under a generation counter.
///
/// The poll loop keeps a **local snapshot** of its queue list and refreshes
/// it only when the generation moved — instead of cloning the
/// `Vec<Arc<QueuePair>>` (and bumping every Arc refcount) on every poll
/// pass. After copying a new snapshot the worker publishes the generation
/// it now runs on through `seen`; `Runtime::rebalance` waits for
/// `seen == generation` before un-pausing moved queues, which closes the
/// window where a worker still holding a stale snapshot could consume a
/// queue that was handed to another worker (the SPSC lane's
/// single-consumer contract).
pub struct AssignmentCell {
    queues: RwLock<Vec<Arc<QueuePair<Message>>>>,
    generation: AtomicU64,
    seen: AtomicU64,
    /// The owning worker's doorbell. Its wake-set is maintained by
    /// [`AssignmentCell::refresh`], which registers this bell on every
    /// queue of a new snapshot before the worker's first scan of it;
    /// `publish` rings it directly so generation bumps wake a parked
    /// worker.
    bell: Arc<Doorbell>,
}

impl AssignmentCell {
    /// Empty assignment, generation 0 (already "seen").
    pub fn new() -> AssignmentCell {
        AssignmentCell {
            queues: RwLock::new(Vec::new()),
            generation: AtomicU64::new(0),
            seen: AtomicU64::new(0),
            bell: Arc::new(Doorbell::new()),
        }
    }

    /// The owning worker's doorbell (park/wake word of its reactor loop).
    pub fn bell(&self) -> &Arc<Doorbell> {
        &self.bell
    }

    /// Publish a new assignment (orchestrator side), bump the generation,
    /// and ring the worker's bell so a parked worker picks it up
    /// immediately.
    pub fn publish(&self, queues: Vec<Arc<QueuePair<Message>>>) {
        *self.queues.write() = queues; // lock-class: worker.queues
        self.generation.fetch_add(1, Ordering::Release);
        self.bell.ring();
    }

    /// Latest published generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Generation the owning worker has acknowledged running on.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Acquire)
    }

    /// True when no queues are assigned.
    pub fn is_empty(&self) -> bool {
        self.queues.read().is_empty() // lock-class: worker.queues
    }

    /// Worker side: if the generation moved past `seen_gen`, replace
    /// `cache` with the current assignment, acknowledge via `seen`, and
    /// return true. The acknowledgement is safe to publish here because
    /// the worker calls `refresh` between passes, when it has no envelope
    /// in flight on any queue of the old snapshot.
    fn refresh(&self, cache: &mut Vec<Arc<QueuePair<Message>>>, seen_gen: &mut u64) -> bool {
        let g = self.generation.load(Ordering::Acquire);
        if g == *seen_gen {
            return false;
        }
        cache.clear();
        cache.extend_from_slice(&self.queues.read()); // lock-class: worker.queues
                                                      // Wake-set maintenance: register the worker's bell on every queue
                                                      // of the new snapshot *before* the caller scans it. Producers push
                                                      // then read the slot to ring, so either our scan sees their push
                                                      // or their ring lands on this bell and aborts our park — no
                                                      // envelope is stranded across a handoff (DESIGN.md §13).
        for q in cache.iter() {
            q.register_sq_bell(&self.bell);
        }
        *seen_gen = g;
        self.seen.store(g, Ordering::Release);
        true
    }
}

impl Default for AssignmentCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle to a spawned worker thread.
pub struct Worker {
    /// Worker index.
    pub id: usize,
    /// Queues this worker drains (swapped by the orchestrator), published
    /// under a generation counter so the poll loop snapshots lazily.
    pub assigned: Arc<AssignmentCell>,
    /// Published `(now, busy)` snapshot of the worker's virtual clock —
    /// the single publication path for worker-visible time.
    pub clock: Arc<ClockCell>,
    /// Requests processed.
    pub processed: Arc<AtomicU64>,
    /// Reactor passes completed (scan-everything rounds). A parked worker
    /// does not accumulate passes — tests and the idle-fleet bench use
    /// this to prove idleness costs no CPU.
    pub passes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Worker {
    /// Spawn a worker thread.
    pub fn spawn(
        id: usize,
        ns: Arc<Namespace>,
        mm: Arc<ModuleManager>,
        watermark: Arc<Watermark>,
    ) -> Worker {
        let assigned = Arc::new(AssignmentCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(ClockCell::new());
        let processed = Arc::new(AtomicU64::new(0));
        let passes = Arc::new(AtomicU64::new(0));

        let t_assigned = assigned.clone();
        let t_stop = stop.clone();
        let t_clock = clock.clone();
        let t_processed = processed.clone();
        let t_passes = passes.clone();
        let join = std::thread::Builder::new()
            .name(format!("labstor-worker-{id}"))
            .spawn(move || {
                worker_loop(
                    &t_assigned,
                    &ns,
                    &mm,
                    &watermark,
                    &t_stop,
                    &t_clock,
                    &t_processed,
                    &t_passes,
                );
            })
            .expect("spawn worker thread");

        Worker {
            id,
            assigned,
            clock,
            processed,
            passes,
            stop,
            join: Some(join),
        }
    }

    /// Replace this worker's queue assignment.
    pub fn assign(&self, queues: Vec<Arc<QueuePair<Message>>>) {
        self.assigned.publish(queues);
    }

    /// True while the worker has queues assigned.
    pub fn is_active(&self) -> bool {
        !self.assigned.is_empty()
    }

    /// True once the worker thread has picked up the latest assignment
    /// (its next consume can only touch queues of the current snapshot).
    pub fn assignment_current(&self) -> bool {
        self.assigned.seen() == self.assigned.generation()
    }

    /// Stop and join the worker. Rings the bell so a parked reactor
    /// observes the stop flag immediately instead of at its next safety
    /// wakeup.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        self.assigned.bell().ring();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Safety net on the reactor park. Every wake source rings the bell
/// (submits, upgrade-flag edges, assignment publication, stop), so this
/// bounds the damage of a wake-path bug rather than carrying liveness;
/// one spurious scan per 25 ms is the reactor's whole idle cost.
const PARK_SAFETY: Duration = Duration::from_millis(25);

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    assigned: &AssignmentCell,
    ns: &Namespace,
    mm: &ModuleManager,
    watermark: &Watermark,
    stop: &AtomicBool,
    clock: &ClockCell,
    processed: &AtomicU64,
    passes: &AtomicU64,
) {
    let mut ctx = Ctx::new();
    let rec = mm.telemetry().clone();
    /// Requests drained per queue per pass: bounds queue starvation.
    const BATCH: usize = 8;
    // Reused per-pass scratch: queue snapshot, drained envelopes, pending
    // completions, per-request work times and telemetry spans. One
    // allocation each for the life of the worker.
    let mut queues: Vec<Arc<QueuePair<Message>>> = Vec::new();
    let mut seen_gen: u64 = 0;
    let mut inbox: Vec<Envelope<Message>> = Vec::with_capacity(BATCH);
    let mut outbox: Vec<(Message, u64)> = Vec::with_capacity(BATCH);
    let mut work_ns: Vec<u64> = Vec::with_capacity(BATCH);
    let mut spans: Vec<SpanEvent> = Vec::with_capacity(BATCH);
    while !stop.load(Ordering::Acquire) {
        // Capture the doorbell epoch *before* refreshing and scanning:
        // any ring landing after this point (a submit, an upgrade edge, a
        // new assignment, stop) makes the park at the bottom return
        // immediately instead of sleeping through it (doorbell protocol —
        // see `labstor_ipc::doorbell` and DESIGN.md §13).
        let epoch = assigned.bell().epoch();
        passes.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag

        // Fast-forward across any upgrade pause that completed.
        ctx.idle_until(mm.resume_vt());
        assigned.refresh(&mut queues, &mut seen_gen);
        let mut did_work = false;
        for q in &queues {
            match q.upgrade_flag() {
                UpgradeFlag::UpdatePending => {
                    q.ack_update();
                    continue;
                }
                UpgradeFlag::UpdateAcked => continue,
                UpgradeFlag::None => {}
            }
            // Drain up to BATCH envelopes in one SQ crossing: one
            // consumer-counter publication, one wait-EMA fold, one
            // consumed-counter bump for the whole burst.
            inbox.clear();
            if q.consume_batch(&mut ctx, RUNTIME_DOMAIN, &mut inbox, BATCH) == 0 {
                continue;
            }
            did_work = true;
            let recording = rec.enabled();
            work_ns.clear();
            for env in inbox.drain(..) {
                match env.payload {
                    Message::Req(req) => {
                        if recording {
                            // Submission-queue crossing: from client
                            // submit to this envelope's dequeue (queue
                            // wait + hop); per-envelope times survive the
                            // batch via `dequeue_vt`.
                            spans.push(SpanEvent {
                                req_id: req.id,
                                stage: Stage::HopReq,
                                stack: (req.stack & 0x00FF_FFFF) as u32,
                                vertex: (req.vertex & 0xFFFF) as u16,
                                ring: 0, // stamped by the recorder
                                t_start_vns: env.submit_vt,
                                t_end_vns: env.dequeue_vt,
                            });
                        }
                        let before = ctx.busy();
                        let resp = process_request(&mut ctx, req, ns, mm, RUNTIME_DOMAIN);
                        let spent = ctx.busy() - before;
                        q.add_load(-(spent as i64));
                        work_ns.push(spent);
                        outbox.push((Message::Resp(resp), ctx.now()));
                    }
                    // Responses only flow runtime→client; ignore strays.
                    Message::Resp(_) => {}
                }
            }
            q.record_work_batch(&work_ns);
            processed.fetch_add(work_ns.len() as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            if recording && !spans.is_empty() {
                // One enabled-check + one TLS ring lookup for the burst.
                rec.record_batch(spans.drain(..));
            }
            // Post the completions; if the CQ fills, back off boundedly
            // (spin, then yield the host core) — the client is draining
            // it. Bail out on stop so a vanished client cannot wedge
            // shutdown.
            let cq_backoff = Backoff::new();
            while !outbox.is_empty() && !stop.load(Ordering::Acquire) {
                if q.complete_batch(&mut outbox, RUNTIME_DOMAIN) == 0 {
                    cq_backoff.snooze();
                }
            }
            outbox.clear();
        }
        // Single publication path for worker-visible time (labtelem's
        // ClockCell carries its own relaxed-ok justification).
        clock.publish(ctx.now(), ctx.busy());
        watermark.publish(ctx.now());
        if !did_work && !stop.load(Ordering::Acquire) {
            // Nothing to do anywhere (including the decommissioned,
            // no-queues case): park until a doorbell rings. The epoch
            // captured at the top of the pass guarantees no ring since
            // then is missed.
            assigned.bell().wait_past(epoch, PARK_SAFETY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labmod::{LabMod, ModType};
    use crate::request::{Payload, RespPayload};
    use crate::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::{Credentials, IpcManager};
    use std::time::{Duration, Instant};

    struct Echo;
    impl LabMod for Echo {
        fn type_name(&self) -> &'static str {
            "echo"
        }
        fn mod_type(&self) -> ModType {
            ModType::Dummy
        }
        fn process(&self, ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            if let Payload::Dummy { work_ns } = req.payload {
                ctx.advance(work_ns);
            }
            RespPayload::Ok
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1_000
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup() -> (Arc<Namespace>, Arc<ModuleManager>, u64) {
        let ns = Namespace::new();
        let mm = Arc::new(ModuleManager::new());
        mm.insert_instance("echo1", Arc::new(Echo));
        let stack = ns
            .mount(LabStack {
                id: 0,
                mount: "dummy::/".into(),
                exec: ExecMode::Async,
                vertices: vec![Vertex {
                    uuid: "echo1".into(),
                    outputs: vec![],
                }],
                authorized_uids: vec![0],
            })
            .unwrap();
        (ns, mm, stack.id)
    }

    #[test]
    fn process_request_resolves_stack_and_mod() {
        let (ns, mm, sid) = setup();
        let mut ctx = Ctx::new();
        let req = Request::new(7, sid, Payload::Dummy { work_ns: 500 }, Credentials::ROOT);
        let resp = process_request(&mut ctx, req, &ns, &mm, RUNTIME_DOMAIN);
        assert_eq!(resp.id, 7);
        assert!(resp.payload.is_ok());
        assert_eq!(ctx.now(), 500);
    }

    #[test]
    fn unknown_stack_errors() {
        let (ns, mm, _) = setup();
        let mut ctx = Ctx::new();
        let req = Request::new(1, 999, Payload::Dummy { work_ns: 0 }, Credentials::ROOT);
        assert!(!process_request(&mut ctx, req, &ns, &mm, 0).payload.is_ok());
    }

    #[test]
    fn worker_drains_assigned_queue() {
        let (ns, mm, sid) = setup();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(64);
        let conn = ipc.connect(Credentials::new(1, 0, 0), 1);
        let watermark = Arc::new(Watermark::new());
        let mut worker = Worker::spawn(0, ns, mm, watermark);
        worker.assign(vec![conn.queues[0].clone()]);

        let q = &conn.queues[0];
        for i in 0..10 {
            let req = Request::new(i, sid, Payload::Dummy { work_ns: 100 }, Credentials::ROOT);
            q.submit(Message::Req(req), 0, conn.domain).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = 0;
        let mut client = Ctx::new();
        while got < 10 && Instant::now() < deadline {
            if let Some(env) = q.reap(&mut client, conn.domain) {
                if let Message::Resp(r) = env.payload {
                    assert!(r.payload.is_ok());
                    got += 1;
                }
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(got, 10, "worker must complete all requests");
        assert!(worker.processed.load(Ordering::Relaxed) >= 10);
        worker.stop();
    }

    #[test]
    fn decommissioned_worker_parks_and_resumes_on_publish() {
        let (ns, mm, sid) = setup();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(64);
        let conn = ipc.connect(Credentials::new(1, 0, 0), 1);
        let watermark = Arc::new(Watermark::new());
        let mut worker = Worker::spawn(0, ns, mm, watermark);

        // No queues assigned: the reactor must park, not spin. Give it a
        // beat to enter the park, then the pass counter must be bounded by
        // the safety-timeout cadence (a polling loop would log millions).
        std::thread::sleep(Duration::from_millis(40));
        let p0 = worker.passes.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(120));
        let parked_passes = worker.passes.load(Ordering::Relaxed) - p0;
        assert!(
            parked_passes <= 16,
            "decommissioned worker must park, saw {parked_passes} passes in 120ms"
        );

        // Submit *before* assigning: the queue has no registered SQ bell
        // for this worker yet, so only the publish ring can wake it — and
        // the post-refresh scan must find the waiting envelope.
        let q = &conn.queues[0];
        let req = Request::new(1, sid, Payload::Dummy { work_ns: 100 }, Credentials::ROOT);
        q.submit(Message::Req(req), 0, conn.domain).unwrap();
        worker.assign(vec![q.clone()]);

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut client = Ctx::new();
        loop {
            if let Some(env) = q.reap(&mut client, conn.domain) {
                if let Message::Resp(r) = env.payload {
                    assert!(r.payload.is_ok());
                    break;
                }
            }
            assert!(
                Instant::now() < deadline,
                "publish must wake the parked worker"
            );
            std::thread::yield_now();
        }
        worker.stop();
    }

    #[test]
    fn worker_acks_upgrade_and_pauses() {
        let (ns, mm, _) = setup();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(8);
        let conn = ipc.connect(Credentials::new(1, 0, 0), 1);
        let watermark = Arc::new(Watermark::new());
        let mut worker = Worker::spawn(0, ns, mm, watermark);
        worker.assign(vec![conn.queues[0].clone()]);
        conn.queues[0].mark_update_pending();
        let deadline = Instant::now() + Duration::from_secs(10);
        while conn.queues[0].upgrade_flag() != UpgradeFlag::UpdateAcked {
            assert!(Instant::now() < deadline, "worker must ack");
            std::thread::yield_now();
        }
        worker.stop();
    }
}
