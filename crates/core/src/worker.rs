//! Runtime workers: threads that poll request queues and execute LabStack
//! DAGs (paper §III-C "Workers").
//!
//! "Workers receive requests by polling request queues and process the
//! requests by querying the LabStack Namespace and Module Manager for the
//! required LabMods." Each worker owns a virtual-time [`Ctx`]; its
//! busy/total split is the CPU-utilization signal Fig. 5a reports.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::utils::Backoff;
use parking_lot::RwLock;

use labstor_ipc::{Envelope, QueuePair, UpgradeFlag};
use labstor_sim::{Ctx, Watermark};
use labstor_telemetry::{ClockCell, SpanEvent, Stage};

use crate::labmod::StackEnv;
use crate::registry::ModuleManager;
use crate::request::{Message, Request, Response};
use crate::stack::Namespace;

/// The Runtime's domain id (address space 0).
pub const RUNTIME_DOMAIN: u32 = 0;

/// Execute one request against its stack's entry vertex. Shared by
/// workers (async stacks) and clients (sync stacks).
pub fn process_request(
    ctx: &mut Ctx,
    req: Request,
    ns: &Namespace,
    mm: &ModuleManager,
    domain: u32,
) -> Response {
    let id = req.id;
    let Some(stack) = ns.get_id(req.stack) else {
        return Response::err(id, format!("no stack {}", req.stack));
    };
    let Some(vertex) = stack.vertices.get(req.vertex) else {
        return Response::err(
            id,
            format!("stack {} has no vertex {}", req.stack, req.vertex),
        );
    };
    let Some(mod_) = mm.get(&vertex.uuid) else {
        return Response::err(id, format!("module {} not loaded", vertex.uuid));
    };
    let env = StackEnv {
        stack: &stack,
        vertex: req.vertex,
        registry: mm,
        domain,
    };
    let rec = mm.telemetry();
    let recording = rec.enabled();
    let (stack_id, vertex_idx) = (req.stack, req.vertex);
    let t0 = ctx.now();
    let payload = mod_.process(ctx, req, &env);
    if recording {
        // The entry vertex's span is inclusive: downstream vertices,
        // hops and device windows recorded inside `process` nest under
        // it in the trace.
        rec.record(Stage::Vertex, id, stack_id, vertex_idx, t0, ctx.now());
    }
    Response { id, payload }
}

/// A worker's queue assignment, published under a generation counter.
///
/// The poll loop keeps a **local snapshot** of its queue list and refreshes
/// it only when the generation moved — instead of cloning the
/// `Vec<Arc<QueuePair>>` (and bumping every Arc refcount) on every poll
/// pass. After copying a new snapshot the worker publishes the generation
/// it now runs on through `seen`; `Runtime::rebalance` waits for
/// `seen == generation` before un-pausing moved queues, which closes the
/// window where a worker still holding a stale snapshot could consume a
/// queue that was handed to another worker (the SPSC lane's
/// single-consumer contract).
pub struct AssignmentCell {
    queues: RwLock<Vec<Arc<QueuePair<Message>>>>,
    generation: AtomicU64,
    seen: AtomicU64,
}

impl AssignmentCell {
    /// Empty assignment, generation 0 (already "seen").
    pub fn new() -> AssignmentCell {
        AssignmentCell {
            queues: RwLock::new(Vec::new()),
            generation: AtomicU64::new(0),
            seen: AtomicU64::new(0),
        }
    }

    /// Publish a new assignment (orchestrator side) and bump the
    /// generation so the owning worker picks it up on its next pass.
    pub fn publish(&self, queues: Vec<Arc<QueuePair<Message>>>) {
        *self.queues.write() = queues; // lock-class: worker.queues
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Latest published generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Generation the owning worker has acknowledged running on.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Acquire)
    }

    /// True when no queues are assigned.
    pub fn is_empty(&self) -> bool {
        self.queues.read().is_empty() // lock-class: worker.queues
    }

    /// Worker side: if the generation moved past `seen_gen`, replace
    /// `cache` with the current assignment, acknowledge via `seen`, and
    /// return true. The acknowledgement is safe to publish here because
    /// the worker calls `refresh` between passes, when it has no envelope
    /// in flight on any queue of the old snapshot.
    fn refresh(&self, cache: &mut Vec<Arc<QueuePair<Message>>>, seen_gen: &mut u64) -> bool {
        let g = self.generation.load(Ordering::Acquire);
        if g == *seen_gen {
            return false;
        }
        cache.clear();
        cache.extend_from_slice(&self.queues.read()); // lock-class: worker.queues
        *seen_gen = g;
        self.seen.store(g, Ordering::Release);
        true
    }
}

impl Default for AssignmentCell {
    fn default() -> Self {
        Self::new()
    }
}

/// Handle to a spawned worker thread.
pub struct Worker {
    /// Worker index.
    pub id: usize,
    /// Queues this worker drains (swapped by the orchestrator), published
    /// under a generation counter so the poll loop snapshots lazily.
    pub assigned: Arc<AssignmentCell>,
    /// Published `(now, busy)` snapshot of the worker's virtual clock —
    /// the single publication path for worker-visible time.
    pub clock: Arc<ClockCell>,
    /// Requests processed.
    pub processed: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Worker {
    /// Spawn a worker thread.
    pub fn spawn(
        id: usize,
        ns: Arc<Namespace>,
        mm: Arc<ModuleManager>,
        watermark: Arc<Watermark>,
    ) -> Worker {
        let assigned = Arc::new(AssignmentCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let clock = Arc::new(ClockCell::new());
        let processed = Arc::new(AtomicU64::new(0));

        let t_assigned = assigned.clone();
        let t_stop = stop.clone();
        let t_clock = clock.clone();
        let t_processed = processed.clone();
        let join = std::thread::Builder::new()
            .name(format!("labstor-worker-{id}"))
            .spawn(move || {
                worker_loop(
                    &t_assigned,
                    &ns,
                    &mm,
                    &watermark,
                    &t_stop,
                    &t_clock,
                    &t_processed,
                );
            })
            .expect("spawn worker thread");

        Worker {
            id,
            assigned,
            clock,
            processed,
            stop,
            join: Some(join),
        }
    }

    /// Replace this worker's queue assignment.
    pub fn assign(&self, queues: Vec<Arc<QueuePair<Message>>>) {
        self.assigned.publish(queues);
    }

    /// True while the worker has queues assigned.
    pub fn is_active(&self) -> bool {
        !self.assigned.is_empty()
    }

    /// True once the worker thread has picked up the latest assignment
    /// (its next consume can only touch queues of the current snapshot).
    pub fn assignment_current(&self) -> bool {
        self.assigned.seen() == self.assigned.generation()
    }

    /// Stop and join the worker.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(
    assigned: &AssignmentCell,
    ns: &Namespace,
    mm: &ModuleManager,
    watermark: &Watermark,
    stop: &AtomicBool,
    clock: &ClockCell,
    processed: &AtomicU64,
) {
    let mut ctx = Ctx::new();
    let backoff = Backoff::new();
    let rec = mm.telemetry().clone();
    /// Requests drained per queue per pass: bounds queue starvation.
    const BATCH: usize = 8;
    // Reused per-pass scratch: queue snapshot, drained envelopes, pending
    // completions, per-request work times and telemetry spans. One
    // allocation each for the life of the worker.
    let mut queues: Vec<Arc<QueuePair<Message>>> = Vec::new();
    let mut seen_gen: u64 = 0;
    let mut inbox: Vec<Envelope<Message>> = Vec::with_capacity(BATCH);
    let mut outbox: Vec<(Message, u64)> = Vec::with_capacity(BATCH);
    let mut work_ns: Vec<u64> = Vec::with_capacity(BATCH);
    let mut spans: Vec<SpanEvent> = Vec::with_capacity(BATCH);
    while !stop.load(Ordering::Acquire) {
        // Fast-forward across any upgrade pause that completed.
        ctx.idle_until(mm.resume_vt());
        assigned.refresh(&mut queues, &mut seen_gen);
        let mut did_work = false;
        for q in &queues {
            match q.upgrade_flag() {
                UpgradeFlag::UpdatePending => {
                    q.ack_update();
                    continue;
                }
                UpgradeFlag::UpdateAcked => continue,
                UpgradeFlag::None => {}
            }
            // Drain up to BATCH envelopes in one SQ crossing: one
            // consumer-counter publication, one wait-EMA fold, one
            // consumed-counter bump for the whole burst.
            inbox.clear();
            if q.consume_batch(&mut ctx, RUNTIME_DOMAIN, &mut inbox, BATCH) == 0 {
                continue;
            }
            did_work = true;
            let recording = rec.enabled();
            work_ns.clear();
            for env in inbox.drain(..) {
                match env.payload {
                    Message::Req(req) => {
                        if recording {
                            // Submission-queue crossing: from client
                            // submit to this envelope's dequeue (queue
                            // wait + hop); per-envelope times survive the
                            // batch via `dequeue_vt`.
                            spans.push(SpanEvent {
                                req_id: req.id,
                                stage: Stage::HopReq,
                                stack: (req.stack & 0x00FF_FFFF) as u32,
                                vertex: (req.vertex & 0xFFFF) as u16,
                                ring: 0, // stamped by the recorder
                                t_start_vns: env.submit_vt,
                                t_end_vns: env.dequeue_vt,
                            });
                        }
                        let before = ctx.busy();
                        let resp = process_request(&mut ctx, req, ns, mm, RUNTIME_DOMAIN);
                        let spent = ctx.busy() - before;
                        q.add_load(-(spent as i64));
                        work_ns.push(spent);
                        outbox.push((Message::Resp(resp), ctx.now()));
                    }
                    // Responses only flow runtime→client; ignore strays.
                    Message::Resp(_) => {}
                }
            }
            q.record_work_batch(&work_ns);
            processed.fetch_add(work_ns.len() as u64, Ordering::Relaxed); // relaxed-ok: stat counter; readers tolerate lag
            if recording && !spans.is_empty() {
                // One enabled-check + one TLS ring lookup for the burst.
                rec.record_batch(spans.drain(..));
            }
            // Post the completions; if the CQ fills, back off boundedly
            // (spin, then yield the host core) — the client is draining
            // it. Bail out on stop so a vanished client cannot wedge
            // shutdown.
            let cq_backoff = Backoff::new();
            while !outbox.is_empty() && !stop.load(Ordering::Acquire) {
                if q.complete_batch(&mut outbox, RUNTIME_DOMAIN) == 0 {
                    cq_backoff.snooze();
                }
            }
            outbox.clear();
        }
        // Single publication path for worker-visible time (labtelem's
        // ClockCell carries its own relaxed-ok justification).
        clock.publish(ctx.now(), ctx.busy());
        watermark.publish(ctx.now());
        if did_work {
            backoff.reset();
        } else if queues.is_empty() {
            // Decommissioned: park until reassigned.
            std::thread::sleep(std::time::Duration::from_micros(200));
        } else {
            // Empty queues: snooze (spins, then yields the host core).
            backoff.snooze();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labmod::{LabMod, ModType};
    use crate::request::{Payload, RespPayload};
    use crate::stack::{ExecMode, LabStack, Vertex};
    use labstor_ipc::{Credentials, IpcManager};
    use std::time::{Duration, Instant};

    struct Echo;
    impl LabMod for Echo {
        fn type_name(&self) -> &'static str {
            "echo"
        }
        fn mod_type(&self) -> ModType {
            ModType::Dummy
        }
        fn process(&self, ctx: &mut Ctx, req: Request, _env: &StackEnv<'_>) -> RespPayload {
            if let Payload::Dummy { work_ns } = req.payload {
                ctx.advance(work_ns);
            }
            RespPayload::Ok
        }
        fn est_processing_time(&self, _req: &Request) -> u64 {
            1_000
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn setup() -> (Arc<Namespace>, Arc<ModuleManager>, u64) {
        let ns = Namespace::new();
        let mm = Arc::new(ModuleManager::new());
        mm.insert_instance("echo1", Arc::new(Echo));
        let stack = ns
            .mount(LabStack {
                id: 0,
                mount: "dummy::/".into(),
                exec: ExecMode::Async,
                vertices: vec![Vertex {
                    uuid: "echo1".into(),
                    outputs: vec![],
                }],
                authorized_uids: vec![0],
            })
            .unwrap();
        (ns, mm, stack.id)
    }

    #[test]
    fn process_request_resolves_stack_and_mod() {
        let (ns, mm, sid) = setup();
        let mut ctx = Ctx::new();
        let req = Request::new(7, sid, Payload::Dummy { work_ns: 500 }, Credentials::ROOT);
        let resp = process_request(&mut ctx, req, &ns, &mm, RUNTIME_DOMAIN);
        assert_eq!(resp.id, 7);
        assert!(resp.payload.is_ok());
        assert_eq!(ctx.now(), 500);
    }

    #[test]
    fn unknown_stack_errors() {
        let (ns, mm, _) = setup();
        let mut ctx = Ctx::new();
        let req = Request::new(1, 999, Payload::Dummy { work_ns: 0 }, Credentials::ROOT);
        assert!(!process_request(&mut ctx, req, &ns, &mm, 0).payload.is_ok());
    }

    #[test]
    fn worker_drains_assigned_queue() {
        let (ns, mm, sid) = setup();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(64);
        let conn = ipc.connect(Credentials::new(1, 0, 0), 1);
        let watermark = Arc::new(Watermark::new());
        let mut worker = Worker::spawn(0, ns, mm, watermark);
        worker.assign(vec![conn.queues[0].clone()]);

        let q = &conn.queues[0];
        for i in 0..10 {
            let req = Request::new(i, sid, Payload::Dummy { work_ns: 100 }, Credentials::ROOT);
            q.submit(Message::Req(req), 0, conn.domain).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = 0;
        let mut client = Ctx::new();
        while got < 10 && Instant::now() < deadline {
            if let Some(env) = q.reap(&mut client, conn.domain) {
                if let Message::Resp(r) = env.payload {
                    assert!(r.payload.is_ok());
                    got += 1;
                }
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(got, 10, "worker must complete all requests");
        assert!(worker.processed.load(Ordering::Relaxed) >= 10);
        worker.stop();
    }

    #[test]
    fn worker_acks_upgrade_and_pauses() {
        let (ns, mm, _) = setup();
        let ipc: Arc<IpcManager<Message>> = IpcManager::new(8);
        let conn = ipc.connect(Credentials::new(1, 0, 0), 1);
        let watermark = Arc::new(Watermark::new());
        let mut worker = Worker::spawn(0, ns, mm, watermark);
        worker.assign(vec![conn.queues[0].clone()]);
        conn.queues[0].mark_update_pending();
        let deadline = Instant::now() + Duration::from_secs(10);
        while conn.queues[0].upgrade_flag() != UpgradeFlag::UpdateAcked {
            assert!(Instant::now() < deadline, "worker must ack");
            std::thread::yield_now();
        }
        worker.stop();
    }
}
