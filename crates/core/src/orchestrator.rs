//! The Work Orchestrator: queue→worker assignment policies (paper
//! §III-C4).
//!
//! "The WO defines a `rebalance` operation, which takes as input *n*
//! queues and *m* workers," called when a client connects and every `t`
//! ms. The WO is modular; LabStor ships:
//!
//! * **Round-robin** — stripe queues across all workers (the Fig. 5b
//!   baseline: best bandwidth, terrible tail latency under mixed load).
//! * **Dynamic** — classify queues into latency-sensitive (LQs) and
//!   computational (CQs) by the maximum expected processing time of their
//!   requests, place LQs and CQs on disjoint worker subsets, and solve a
//!   modified knapsack: every sack (worker) carries roughly equal weight
//!   (estimated processing time) using the fewest workers that keep the
//!   per-worker load under a threshold.

/// Load summary of one queue, fed to `rebalance`.
#[derive(Debug, Clone, Copy)]
pub struct QueueLoad {
    /// Queue id.
    pub qid: u64,
    /// Estimated processing cost of currently queued requests (ns).
    pub est_load_ns: u64,
    /// Maximum estimated cost of a single request seen on this queue (ns).
    pub max_item_ns: u64,
    /// Demand in milli-workers: processing time consumed (plus backlog)
    /// per unit of virtual time since the last rebalance. 1000 means the
    /// queue keeps exactly one worker busy.
    pub demand_milli: u64,
    /// Median *measured* per-item processing cost from the queue's
    /// labtelem histogram (0 until work has been recorded).
    pub p50_item_ns: u64,
    /// P99 *measured* per-item processing cost from the queue's labtelem
    /// histogram (0 until work has been recorded). When present, the
    /// dynamic policy classifies by this instead of the estimate-derived
    /// `max_item_ns` — one mis-estimated request can no longer pin a
    /// queue in the computational class forever.
    pub p99_item_ns: u64,
}

impl QueueLoad {
    /// The per-item cost the dynamic policy classifies by: the measured
    /// P99 when the queue's histogram has data, else the estimate-derived
    /// maximum (a fresh queue has processed nothing yet).
    pub fn classify_item_ns(&self) -> u64 {
        if self.p99_item_ns > 0 {
            self.p99_item_ns
        } else {
            self.max_item_ns
        }
    }
}

/// A queue→worker assignment: `assignment[w]` lists the qids worker `w`
/// drains. Its length is the number of *active* workers.
pub type Assignment = Vec<Vec<u64>>;

/// Qids whose worker changed between two assignment shapes (sorted
/// per-worker qid groups), i.e. the queues whose ordered SPSC lane needs
/// the drain-and-handoff protocol before the new worker may consume.
///
/// A queue present only in `new` is *not* moved — it has no previous
/// consumer to quiesce. A queue present only in `old` *is* moved: its old
/// consumer must stop even though nobody picks it up.
pub fn moved_qids(old: &[Vec<u64>], new: &[Vec<u64>]) -> Vec<u64> {
    use std::collections::HashMap;
    fn index(shape: &[Vec<u64>]) -> HashMap<u64, usize> {
        shape
            .iter()
            .enumerate()
            .flat_map(|(w, group)| group.iter().map(move |&q| (q, w)))
            .collect()
    }
    let old_ix = index(old);
    let new_ix = index(new);
    let mut moved: Vec<u64> = old_ix
        .iter()
        .filter(|(qid, w)| new_ix.get(qid) != Some(w))
        .map(|(&qid, _)| qid)
        .collect();
    moved.sort_unstable();
    moved
}

/// Smoothing constant of the weighted-fair pass, in normalized-service
/// milli-units. Small relative to steady-state service totals, so it only
/// damps the scaling while tenants have consumed little service (startup),
/// and prevents a zero-service tenant from zeroing everyone else out.
const FAIR_SMOOTHING_MILLI: u64 = 1_000_000;

/// Weighted-fair pass over queue demands, layered *before* the placement
/// policy: scale each tenant-bound queue's `demand_milli` by how far its
/// tenant's weight-normalized virtual service has run ahead of the
/// least-served tenant — `(min + K) / (norm + K)`. A queue whose tenant
/// has consumed 10× its fair share presents ~1/10 of its raw demand, so
/// the knapsack gives it fewer workers; the floor (1/8 of raw, and never
/// zero for a nonzero demand) guarantees deprioritization, not starvation.
/// Queues with no tenant binding (absent from `norm_service_milli`) pass
/// through untouched, as does everything when a single tenant (or none)
/// is present — then all normalized services are equal.
pub fn apply_weighted_fair(
    loads: &mut [QueueLoad],
    norm_service_milli: &std::collections::HashMap<u64, u64>,
) {
    let min_norm = loads
        .iter()
        .filter_map(|l| norm_service_milli.get(&l.qid).copied())
        .min()
        .unwrap_or(0);
    let k = FAIR_SMOOTHING_MILLI;
    for l in loads.iter_mut() {
        let Some(&norm) = norm_service_milli.get(&l.qid) else {
            continue;
        };
        if norm <= min_norm || l.demand_milli == 0 {
            continue;
        }
        let scaled = ((l.demand_milli as u128).saturating_mul((min_norm + k) as u128)
            / (norm.saturating_add(k)) as u128) as u64;
        l.demand_milli = scaled.max(l.demand_milli / 8).max(1);
    }
}

/// A pluggable rebalance policy.
pub trait OrchestratorPolicy: Send + Sync {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Distribute `queues` over at most `max_workers` workers.
    fn rebalance(&self, queues: &[QueueLoad], max_workers: usize) -> Assignment;
}

/// Round-robin: all workers active, queues striped.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinPolicy;

impl OrchestratorPolicy for RoundRobinPolicy {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn rebalance(&self, queues: &[QueueLoad], max_workers: usize) -> Assignment {
        let n = max_workers.max(1);
        let mut out: Assignment = vec![Vec::new(); n];
        for (i, q) in queues.iter().enumerate() {
            out[i % n].push(q.qid);
        }
        out
    }
}

/// Configuration of the dynamic policy.
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// A queue whose largest request exceeds this is computational.
    pub latency_threshold_ns: u64,
    /// Demand (milli-workers) one worker is allowed to carry — the
    /// "performance loss under a configurable threshold" knob. 900 means
    /// workers are sized for 90% utilization.
    pub worker_capacity_milli: u64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig {
            latency_threshold_ns: 100_000, // 100 µs
            worker_capacity_milli: 900,
        }
    }
}

/// The paper's dynamic policy: LQ/CQ classification + balanced knapsack
/// partitioning with the fewest workers under the capacity threshold.
#[derive(Debug, Default, Clone, Copy)]
pub struct DynamicPolicy {
    /// Tunables.
    pub config: DynamicConfig,
}

impl DynamicPolicy {
    /// Longest-processing-time greedy packing of `queues` into `bins`
    /// sacks of approximately equal weight (the modified knapsack where
    /// "each sack has equal weight"). Demands are bucketed to powers of
    /// two and ties broken by qid so small demand fluctuations do not
    /// reshuffle the assignment every epoch (queue migration is
    /// disruptive: a moved queue lands behind its new worker's timeline).
    fn pack(queues: &[QueueLoad], bins: usize) -> Assignment {
        let bins = bins.max(1);
        let bucket = |d: u64| d.max(1).next_power_of_two();
        let mut sorted: Vec<&QueueLoad> = queues.iter().collect();
        sorted.sort_by_key(|q| (std::cmp::Reverse(bucket(q.demand_milli)), q.qid));
        let mut out: Assignment = vec![Vec::new(); bins];
        let mut weight = vec![0u64; bins];
        for q in sorted {
            let min = (0..bins)
                .min_by_key(|&b| (weight[b], b))
                .expect("bins >= 1");
            out[min].push(q.qid);
            weight[min] += bucket(q.demand_milli);
        }
        out
    }

    fn workers_for(&self, total_demand_milli: u64, queues: usize, budget: usize) -> usize {
        if queues == 0 {
            return 0;
        }
        (total_demand_milli.div_ceil(self.config.worker_capacity_milli.max(1)) as usize)
            .clamp(1, budget.max(1))
    }
}

impl OrchestratorPolicy for DynamicPolicy {
    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn rebalance(&self, queues: &[QueueLoad], max_workers: usize) -> Assignment {
        let (lqs, cqs): (Vec<QueueLoad>, Vec<QueueLoad>) = queues
            .iter()
            .partition(|q| q.classify_item_ns() <= self.config.latency_threshold_ns);
        let lq_demand: u64 = lqs.iter().map(|q| q.demand_milli).sum();
        let cq_demand: u64 = cqs.iter().map(|q| q.demand_milli).sum();

        let max_workers = max_workers.max(1);
        let mut lq_workers = self.workers_for(lq_demand, lqs.len(), max_workers);
        let mut cq_workers =
            self.workers_for(cq_demand, cqs.len(), max_workers.saturating_sub(lq_workers));
        // At least one worker for each populated class; if only one worker
        // exists in total, both classes share it.
        if lq_workers + cq_workers == 0 {
            return vec![Vec::new()];
        }
        if lq_workers + cq_workers > max_workers {
            // Trim the larger class first.
            while lq_workers + cq_workers > max_workers {
                if cq_workers >= lq_workers && cq_workers > 1 {
                    cq_workers -= 1;
                } else if lq_workers > 1 {
                    lq_workers -= 1;
                } else {
                    break;
                }
            }
        }
        if max_workers == 1 || (lq_workers + cq_workers) > max_workers {
            // Degenerate: everything on one worker.
            let mut all = Vec::new();
            for q in queues {
                all.push(q.qid);
            }
            return vec![all];
        }
        let mut out = Self::pack(&lqs, lq_workers.max(usize::from(!lqs.is_empty())));
        if lqs.is_empty() {
            out.clear();
        }
        if !cqs.is_empty() {
            out.extend(Self::pack(&cqs, cq_workers.max(1)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(qid: u64, demand_milli: u64, max_item: u64) -> QueueLoad {
        QueueLoad {
            qid,
            est_load_ns: demand_milli,
            max_item_ns: max_item,
            demand_milli,
            p50_item_ns: 0,
            p99_item_ns: 0,
        }
    }

    #[test]
    fn weighted_fair_scales_overserved_tenant_down() {
        let mut loads = vec![q(0, 1000, 10), q(1, 1000, 10)];
        let norm = std::collections::HashMap::from([(0u64, 0u64), (1u64, 9_000_000u64)]);
        apply_weighted_fair(&mut loads, &norm);
        // Least-served queue untouched; the 9×-ahead tenant's demand is
        // scaled toward (0 + K)/(9M + K) = 1/10, floored at 1/8.
        assert_eq!(loads[0].demand_milli, 1000);
        assert_eq!(loads[1].demand_milli, 125);
    }

    #[test]
    fn weighted_fair_single_tenant_is_noop() {
        let mut loads = vec![q(0, 700, 10), q(1, 300, 10)];
        let norm = std::collections::HashMap::from([(0u64, 5_000u64), (1u64, 5_000u64)]);
        apply_weighted_fair(&mut loads, &norm);
        assert_eq!(loads[0].demand_milli, 700);
        assert_eq!(loads[1].demand_milli, 300);
    }

    #[test]
    fn weighted_fair_leaves_unbound_queues_alone() {
        let mut loads = vec![q(0, 400, 10), q(1, 400, 10), q(2, 400, 10)];
        let norm = std::collections::HashMap::from([(0u64, 0u64), (1u64, 50_000_000u64)]);
        apply_weighted_fair(&mut loads, &norm);
        assert_eq!(loads[0].demand_milli, 400);
        assert!(loads[1].demand_milli < 400 && loads[1].demand_milli >= 50);
        assert_eq!(loads[2].demand_milli, 400); // untenanted passthrough
    }

    #[test]
    fn weighted_fair_never_zeroes_demand() {
        let mut loads = vec![q(0, 1, 10), q(1, 1, 10)];
        let norm = std::collections::HashMap::from([(0u64, 0u64), (1u64, u64::MAX / 2)]);
        apply_weighted_fair(&mut loads, &norm);
        assert_eq!(loads[1].demand_milli, 1);
    }

    #[test]
    fn moved_qids_detects_regrouping() {
        let old = vec![vec![0, 1], vec![2]];
        let new = vec![vec![0], vec![1, 2]];
        // Queue 1 moved worker 0 → 1; queues 0 and 2 stayed put.
        assert_eq!(moved_qids(&old, &new), vec![1]);
    }

    #[test]
    fn moved_qids_new_queues_are_not_moved() {
        let old = vec![vec![0]];
        let new = vec![vec![0, 1], vec![2]];
        // 1 and 2 are brand new: no previous consumer to quiesce.
        assert!(moved_qids(&old, &new).is_empty());
    }

    #[test]
    fn moved_qids_dropped_queues_are_moved() {
        let old = vec![vec![0, 1]];
        let new = vec![vec![0]];
        // 1 lost its worker: its old consumer must still stop.
        assert_eq!(moved_qids(&old, &new), vec![1]);
    }

    #[test]
    fn moved_qids_identical_shapes_move_nothing() {
        let shape = vec![vec![3, 4], vec![5]];
        assert!(moved_qids(&shape, &shape).is_empty());
    }

    #[test]
    fn round_robin_uses_all_workers() {
        let queues: Vec<QueueLoad> = (0..6).map(|i| q(i, 100, 10)).collect();
        let a = RoundRobinPolicy.rebalance(&queues, 3);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|w| w.len() == 2));
    }

    #[test]
    fn round_robin_covers_every_queue_exactly_once() {
        let queues: Vec<QueueLoad> = (0..7).map(|i| q(i, 1, 1)).collect();
        let a = RoundRobinPolicy.rebalance(&queues, 4);
        let mut all: Vec<u64> = a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_separates_lq_from_cq() {
        let policy = DynamicPolicy::default();
        // Two fast queues, two slow (compression-style) queues.
        let queues = vec![
            q(0, 100, 3_000),
            q(1, 100, 3_000),
            q(2, 950, 20_000_000),
            q(3, 950, 20_000_000),
        ];
        let a = policy.rebalance(&queues, 8);
        // Find which worker got queue 0; it must not also hold queue 2/3.
        let lq_worker = a.iter().find(|w| w.contains(&0)).expect("queue 0 assigned");
        assert!(
            !lq_worker.contains(&2) && !lq_worker.contains(&3),
            "LQs must not share a worker with CQs: {a:?}"
        );
    }

    #[test]
    fn measured_p99_overrides_estimated_max_item() {
        let policy = DynamicPolicy::default();
        // Queue 0 once saw a wildly over-estimated request (est 20 ms),
        // but its *measured* P99 is 3 µs — the histogram wins and it
        // classifies as latency-sensitive next to queue 1.
        let mut fast_measured = q(0, 100, 20_000_000);
        fast_measured.p50_item_ns = 2_000;
        fast_measured.p99_item_ns = 3_000;
        let queues = vec![
            fast_measured,
            q(1, 100, 3_000),
            q(2, 950, 20_000_000),
            q(3, 950, 20_000_000),
        ];
        let a = policy.rebalance(&queues, 8);
        let w0 = a.iter().find(|w| w.contains(&0)).expect("queue 0 assigned");
        assert!(
            !w0.contains(&2) && !w0.contains(&3),
            "measured-fast queue must not share a worker with CQs: {a:?}"
        );
    }

    #[test]
    fn dynamic_scales_workers_with_load() {
        let policy = DynamicPolicy::default();
        let light: Vec<QueueLoad> = (0..8).map(|i| q(i, 50, 5_000)).collect();
        let heavy: Vec<QueueLoad> = (0..8).map(|i| q(i, 700, 5_000)).collect();
        let a_light = policy.rebalance(&light, 8);
        let a_heavy = policy.rebalance(&heavy, 8);
        assert!(
            a_light.len() < a_heavy.len(),
            "more load → more workers: {} vs {}",
            a_light.len(),
            a_heavy.len()
        );
        assert!(a_heavy.len() <= 8);
    }

    #[test]
    fn dynamic_respects_max_workers() {
        let policy = DynamicPolicy::default();
        let heavy: Vec<QueueLoad> = (0..16).map(|i| q(i, 1_000, 20_000_000)).collect();
        let a = policy.rebalance(&heavy, 4);
        assert!(a.len() <= 4);
        let mut all: Vec<u64> = a.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>(), "all queues assigned");
    }

    #[test]
    fn dynamic_balances_weight_lpt() {
        let queues = vec![q(0, 900, 1), q(1, 500, 1), q(2, 400, 1), q(3, 10, 1)];
        let a = DynamicPolicy::pack(&queues, 2);
        let w: Vec<u64> = a
            .iter()
            .map(|bin| {
                bin.iter()
                    .map(|qid| queues.iter().find(|q| q.qid == *qid).unwrap().est_load_ns)
                    .sum()
            })
            .collect();
        // LPT: 900+10 vs 500+400 — near-equal sacks.
        assert_eq!(w.iter().sum::<u64>(), 1810);
        assert!(w.iter().max().unwrap() - w.iter().min().unwrap() <= 10);
    }

    #[test]
    fn empty_queue_set_yields_one_idle_worker() {
        let a = DynamicPolicy::default().rebalance(&[], 8);
        assert_eq!(a.len(), 1);
        assert!(a[0].is_empty());
    }

    #[test]
    fn single_worker_takes_everything() {
        let queues = vec![q(0, 10, 5_000), q(1, 10, 20_000_000)];
        let a = DynamicPolicy::default().rebalance(&queues, 1);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].len(), 2);
    }
}
