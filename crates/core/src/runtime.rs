//! The LabStor Runtime: warehouse and execution engine of LabStacks
//! (paper §III-C, Fig. 2).
//!
//! Owns the IPC Manager, Module Manager, LabStack Namespace, Workers and
//! Work Orchestrator. An optional admin thread periodically polls for
//! module upgrades (every `t` ms, §III-C2) and rebalances queues
//! (§III-C4). The Runtime can be crashed and restarted while clients keep
//! running — the crash-recovery path of §III-C3.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use labstor_ipc::{Credentials, Doorbell, IpcManager, QueuePair, UpgradeFlag};
use labstor_qos::{TenantPolicy, TenantTable};
use labstor_sim::{Ctx, Watermark};

use crate::client::Client;
use crate::orchestrator::{DynamicPolicy, OrchestratorPolicy, QueueLoad};
use crate::registry::{ModuleManager, UpgradeRequest};
use crate::request::Message;
use crate::spec::StackSpec;
use crate::stack::{LabStack, Namespace};
use crate::worker::Worker;

/// Runtime configuration (the trusted user's "Runtime configuration
/// YAML": worker pool, queue depths, orchestration policy, admin cadence).
pub struct RuntimeConfig {
    /// Maximum worker threads.
    pub max_workers: usize,
    /// Queue-pair depth.
    pub queue_depth: usize,
    /// Work orchestration policy.
    pub policy: Arc<dyn OrchestratorPolicy>,
    /// Spawn the admin thread (upgrade polling + periodic rebalance).
    pub auto_admin: bool,
    /// Admin poll interval (the paper's configurable `t`).
    pub admin_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_workers: 4,
            queue_depth: 256,
            policy: Arc::new(DynamicPolicy::default()),
            auto_admin: true,
            admin_interval: Duration::from_millis(2),
        }
    }
}

/// The Runtime.
pub struct Runtime {
    /// IPC manager (connections, queue pairs, liveness).
    pub ipc: Arc<IpcManager<Message>>,
    /// Module manager (registry, factories, upgrades).
    pub mm: Arc<ModuleManager>,
    /// LabStack namespace.
    pub ns: Arc<Namespace>,
    /// Virtual-time high watermark across workers.
    pub watermark: Arc<Watermark>,
    /// Tenant registry: per-tenant policies, live accounting, and the
    /// qid→tenant binding the weighted-fair rebalance pass consults.
    pub tenants: Arc<TenantTable>,
    workers: Mutex<Vec<Worker>>,
    policy: Mutex<Arc<dyn OrchestratorPolicy>>,
    max_workers: usize,
    admin_stop: Arc<AtomicBool>,
    /// Wakes the admin thread out of its deadline wait: rung by
    /// `request_upgrade` (apply now, not after the poll interval) and by
    /// `shutdown`/`Drop` (exit now).
    admin_bell: Arc<Doorbell>,
    admin: Mutex<Option<JoinHandle<()>>>,
    auto_admin: bool,
    admin_interval: Duration,
    /// Rebalance history: watermark and per-queue work-done at the last
    /// rebalance, for demand estimation.
    rebalance_state: Mutex<RebalanceState>,
    /// Serializes whole rebalance passes (admin tick, `connect`,
    /// `set_policy` may race): the drain-and-handoff protocol toggles
    /// per-queue pause flags and must not interleave with itself.
    rebalance_coord: Mutex<()>,
}

/// Real-time bound on each wait of the drain-and-handoff protocol
/// (old-consumer ack, new-snapshot pickup). Workers ack within one poll
/// pass (microseconds); the bound only matters when a worker is wedged
/// against a full CQ whose client stopped reaping.
const HANDOFF_TIMEOUT: Duration = Duration::from_millis(200);

#[derive(Default)]
struct RebalanceState {
    last_wm: u64,
    last_work: std::collections::HashMap<u64, u64>,
    /// Last applied assignment (per-worker sorted qid groups).
    /// Reassigning queues between workers is disruptive (a moved queue
    /// lands behind the new worker's timeline), so an assignment is only
    /// re-applied when the grouping actually changes.
    last_shape: Vec<Vec<u64>>,
    /// Moved queues still paused because a straggler worker had not yet
    /// picked up the new assignment when the handoff wait timed out. The
    /// next rebalance pass resumes them once every worker runs the
    /// current snapshot — until then they stay paused (safe: idle, never
    /// two consumers).
    pending_resume: Vec<Arc<QueuePair<Message>>>,
}

impl Runtime {
    /// Start the Runtime: spawn workers (and the admin thread when
    /// configured).
    pub fn start(config: RuntimeConfig) -> Arc<Runtime> {
        let ipc = IpcManager::new(config.queue_depth);
        let mm = Arc::new(ModuleManager::new());
        let ns = Namespace::new();
        let watermark = Arc::new(Watermark::new());
        let tenants = Arc::new(TenantTable::new());
        // Attached before any worker runs so LabMods can bill pushdown
        // fuel to the requesting tenant from the first request.
        mm.attach_tenants(tenants.clone());
        let workers = (0..config.max_workers.max(1))
            .map(|i| Worker::spawn(i, ns.clone(), mm.clone(), watermark.clone()))
            .collect();
        let rt = Arc::new(Runtime {
            ipc,
            mm,
            ns,
            watermark,
            tenants,
            workers: Mutex::new(workers),
            policy: Mutex::new(config.policy),
            max_workers: config.max_workers.max(1),
            admin_stop: Arc::new(AtomicBool::new(false)),
            admin_bell: Arc::new(Doorbell::new()),
            admin: Mutex::new(None),
            auto_admin: config.auto_admin,
            admin_interval: config.admin_interval,
            rebalance_state: Mutex::new(RebalanceState::default()),
            rebalance_coord: Mutex::new(()),
        });
        if config.auto_admin {
            rt.spawn_admin();
        }
        rt
    }

    fn spawn_admin(self: &Arc<Self>) {
        let rt = self.clone();
        let stop = self.admin_stop.clone();
        let bell = self.admin_bell.clone();
        let interval = self.admin_interval;
        let handle = std::thread::Builder::new()
            .name("labstor-admin".into())
            .spawn(move || {
                // Deadline wait, not a fixed sleep: `request_upgrade` and
                // `shutdown` ring the bell to cut the poll interval short.
                // The epoch is captured before the stop check so a ring
                // between check and park aborts the park (doorbell
                // protocol).
                loop {
                    let epoch = bell.epoch();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    rt.admin_tick();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    bell.wait_past(epoch, interval);
                }
            })
            .expect("spawn admin thread");
        *self.admin.lock() = Some(handle); // lock-class: runtime.admin
    }

    /// One admin iteration: process queued upgrades and staged tenant
    /// policy updates (hot updates ride the same asynchronous control
    /// path as live LabMod upgrades), then rebalance.
    pub fn admin_tick(&self) {
        self.tenants.apply_pending();
        if self.mm.pending_upgrades() > 0 {
            let mut admin_ctx = Ctx::at(self.watermark.get());
            self.mm
                .process_upgrades(&mut admin_ctx, &self.ipc, self.workers_running());
            self.watermark.publish(admin_ctx.now());
        }
        self.rebalance();
    }

    fn workers_running(&self) -> bool {
        !self.workers.lock().is_empty() // lock-class: runtime.workers
    }

    /// Swap the orchestration policy live.
    pub fn set_policy(&self, policy: Arc<dyn OrchestratorPolicy>) {
        *self.policy.lock() = policy; // lock-class: runtime.policy
        self.rebalance();
    }

    /// Run the orchestrator's `rebalance` and apply the assignment.
    ///
    /// Demand per queue is estimated as (work processed since the last
    /// rebalance + current backlog) / virtual time elapsed, in
    /// milli-workers — "the total estimated processing time of the queue".
    ///
    /// Queues whose worker changes go through **drain-and-handoff**: the
    /// ordered primary queues ride the SPSC lane, so exactly one consumer
    /// may touch a queue at a time. The protocol: pause each moved queue
    /// (`UPDATE_PENDING`), wait for its current consumer to ack (acks
    /// happen between batches, so an acked queue has no envelope in
    /// flight), publish the new assignment, wait until every worker runs
    /// the new snapshot (generation counter), then un-pause. If the
    /// old-consumer ack times out the move is aborted — shape uncommitted,
    /// so the next admin tick retries. If the snapshot pickup times out
    /// the moved queues stay paused (`pending_resume`) until a later pass
    /// observes all workers current; paused means idle, never two
    /// consumers.
    pub fn rebalance(&self) {
        let _coord = self.rebalance_coord.lock(); // lock-class: runtime.coord
        self.rebalance_locked();
    }

    /// Resume queues left paused by a timed-out handoff, once safe.
    /// Returns false while a straggler worker still runs an old snapshot
    /// (callers must not start a new handoff underneath it).
    fn finish_pending_resume(&self) -> bool {
        let pending: Vec<Arc<QueuePair<Message>>> = {
            let mut state = self.rebalance_state.lock(); // lock-class: runtime.state
            std::mem::take(&mut state.pending_resume)
        };
        if pending.is_empty() {
            return true;
        }
        let all_current = {
            let workers = self.workers.lock(); // lock-class: runtime.workers
            workers.iter().all(|w| w.assignment_current())
        };
        if all_current {
            for q in &pending {
                q.clear_update();
            }
            true
        } else {
            self.rebalance_state.lock().pending_resume = pending; // lock-class: runtime.state
            false
        }
    }

    #[allow(clippy::manual_checked_ops)]
    fn rebalance_locked(&self) {
        if !self.finish_pending_resume() {
            return;
        }
        let queues = self.ipc.primary_queues();
        let wm = self.watermark.get();
        let mut state = self.rebalance_state.lock(); // lock-class: runtime.state
        let dt = wm.saturating_sub(state.last_wm);
        // Per-queue worker service consumed since the last pass, charged
        // to the owning tenant below (after the state lock drops).
        let mut service_deltas: Vec<(u64, u64)> = Vec::new();
        let mut loads: Vec<QueueLoad> = queues
            .iter()
            .map(|q| {
                let work = q.work_done_ns();
                let last = state.last_work.insert(q.id, work).unwrap_or(0);
                service_deltas.push((q.id, work.saturating_sub(last)));
                let backlog = q.est_load_ns();
                let mut demand_milli = if dt > 0 {
                    ((work - last + backlog).saturating_mul(1000)) / dt
                } else {
                    // No virtual progress yet: a queue with backlog wants
                    // a worker's attention.
                    if backlog > 0 {
                        1000
                    } else {
                        0
                    }
                };
                // Latency pressure ("optimizing for latency-sensitive
                // requests"): requests waiting much longer than their own
                // processing time mean the worker pool is the bottleneck —
                // inflate the queue's demand so the knapsack adds workers.
                let item = q.max_item_ns().max(1);
                let wait = q.wait_ema_ns();
                if wait > 2 * item {
                    demand_milli = demand_milli
                        .saturating_mul((wait / item).min(8))
                        .max(demand_milli);
                }
                QueueLoad {
                    qid: q.id,
                    est_load_ns: backlog,
                    max_item_ns: q.max_item_ns(),
                    demand_milli,
                    p50_item_ns: q.p50_item_ns(),
                    p99_item_ns: q.p99_item_ns(),
                }
            })
            .collect();
        state.last_wm = wm;
        drop(state);
        // Weighted fairness (the labtenant pass): charge each tenant the
        // virtual service its queues consumed, then scale queue demands by
        // how far each tenant has run ahead of the least-served one. The
        // tenant table (qos.tenants, rank 36) is taken strictly between
        // runtime.state (30, dropped above) and runtime.policy (32 — never
        // held together with the table).
        for &(qid, delta) in &service_deltas {
            if delta > 0 {
                self.tenants.note_qid_service(qid, delta);
            }
        }
        crate::orchestrator::apply_weighted_fair(
            &mut loads,
            &self.tenants.qid_normalized_service(),
        );
        let assignment = {
            let policy = self.policy.lock(); // lock-class: runtime.policy
            policy.rebalance(&loads, self.max_workers)
        };
        let shape: Vec<Vec<u64>> = assignment
            .iter()
            .map(|g| {
                let mut g = g.clone();
                g.sort_unstable();
                g
            })
            .collect();
        let old_shape = {
            let state = self.rebalance_state.lock(); // lock-class: runtime.state
            if state.last_shape == shape {
                return; // sticky: identical grouping
            }
            state.last_shape.clone()
        };
        let moved = crate::orchestrator::moved_qids(&old_shape, &shape);
        let moved_qs: Vec<Arc<QueuePair<Message>>> = queues
            .iter()
            .filter(|q| moved.binary_search(&q.id).is_ok())
            .cloned()
            .collect();
        let all_current = {
            let workers = self.workers.lock(); // lock-class: runtime.workers
            if workers.is_empty() {
                // Nobody to apply it: leave the shape uncommitted so the
                // rebalance after `restart` re-derives the assignment.
                return;
            }
            // 1. Pause moved queues and wait for their current consumers
            //    to ack. Only the old consumer holds a moved queue in its
            //    snapshot at this point, so the ack is its own.
            for q in &moved_qs {
                q.mark_update_pending();
            }
            let deadline = Instant::now() + HANDOFF_TIMEOUT;
            while moved_qs
                .iter()
                .any(|q| q.upgrade_flag() == UpgradeFlag::UpdatePending)
            {
                if Instant::now() > deadline {
                    // Old consumer unresponsive: abort the move. Shape
                    // stays uncommitted, so the next tick retries.
                    for q in &moved_qs {
                        q.clear_update();
                    }
                    return;
                }
                std::thread::yield_now();
            }
            // 2. Publish the new assignment (generation bump per worker).
            for (i, w) in workers.iter().enumerate() {
                let qids = assignment.get(i).cloned().unwrap_or_default();
                let qs = queues
                    .iter()
                    .filter(|q| qids.contains(&q.id))
                    .cloned()
                    .collect();
                w.assign(qs);
            }
            // 3. Wait until every worker runs the new snapshot — after
            //    that no stale snapshot can consume a moved queue.
            let deadline = Instant::now() + HANDOFF_TIMEOUT;
            loop {
                if workers.iter().all(|w| w.assignment_current()) {
                    break true;
                }
                if Instant::now() > deadline {
                    break false;
                }
                std::thread::yield_now();
            }
        };
        // 4. Commit, then resume the moved queues for their new
        //    consumers (or park them in `pending_resume` if a straggler
        //    worker still holds an old snapshot).
        let mut state = self.rebalance_state.lock(); // lock-class: runtime.state
        state.last_shape = shape;
        if all_current {
            for q in &moved_qs {
                q.clear_update();
            }
        } else {
            state.pending_resume = moved_qs;
        }
    }

    /// Number of workers currently holding assignments (the "cores used"
    /// metric of Fig. 5a).
    pub fn active_workers(&self) -> usize {
        self.workers.lock().iter().filter(|w| w.is_active()).count() // lock-class: runtime.workers
    }

    /// Snapshot of per-worker `(virtual now, virtual busy)`.
    pub fn worker_clocks(&self) -> Vec<(u64, u64)> {
        self.workers
            .lock() // lock-class: runtime.workers
            .iter()
            .map(|w| (w.clock.now(), w.clock.busy()))
            .collect()
    }

    /// Total requests processed by all workers.
    pub fn total_processed(&self) -> u64 {
        // relaxed-ok: stat counter; readers tolerate lag
        self.workers
            .lock() // lock-class: runtime.workers
            .iter()
            .map(|w| w.processed.load(Ordering::Relaxed))
            .sum()
    }

    // ---- clients ------------------------------------------------------------

    /// Connect a client (handshake + queue allocation + rebalance, as the
    /// paper specifies rebalance runs "when a new client connects"). The
    /// credentials' tenant is registered with the permissive default
    /// policy (no rate limit, no quota, weight 1); see
    /// [`Runtime::connect_with_policy`] to declare one.
    pub fn connect(self: &Arc<Self>, creds: Credentials, n_queues: usize) -> Client {
        let conn = self.ipc.connect(creds, n_queues);
        let tenant = creds.tenant;
        if !tenant.is_none() {
            // Register-or-noop: an undeclared connection never overwrites
            // a policy declared by an earlier `connect_with_policy`.
            self.tenants.register(tenant, TenantPolicy::default());
            for q in &conn.queues {
                self.tenants.bind_queue(q.id, tenant);
            }
        }
        self.rebalance();
        Client::new(conn, self.clone())
    }

    /// Connect a client declaring a tenant QoS policy in the handshake.
    ///
    /// First connection wins the registration; a later connection with a
    /// different policy stages a hot update (applied immediately here, and
    /// otherwise by the next admin tick). Every connection queue is bound
    /// to the tenant for weighted-fair attribution, and a buffer quota is
    /// forwarded to the shared pool.
    pub fn connect_with_policy(
        self: &Arc<Self>,
        creds: Credentials,
        n_queues: usize,
        policy: TenantPolicy,
    ) -> Client {
        let conn = self.ipc.connect(creds, n_queues);
        let tenant = creds.tenant;
        if !tenant.is_none() {
            let existing = self.tenants.policy(tenant);
            self.tenants.register(tenant, policy);
            if existing.is_some_and(|p| p != policy) {
                self.tenants.request_policy_update(tenant, policy);
                self.tenants.apply_pending();
            }
            for q in &conn.queues {
                self.tenants.bind_queue(q.id, tenant);
            }
            labstor_ipc::default_pool().set_tenant_quota(tenant, policy.buf_quota_bytes);
        }
        self.rebalance();
        Client::new(conn, self.clone())
    }

    // ---- stacks -------------------------------------------------------------

    /// Mount a stack from its spec: instantiate every LabMod (idempotent
    /// per UUID), validate, and insert into the Namespace — the overloaded
    /// `mount` command of §III-B.
    pub fn mount_stack(&self, spec: &StackSpec) -> Result<Arc<LabStack>, String> {
        let stack = spec.to_stack()?;
        // §III-D: "the execution of [untrusted] LabMods must be in a
        // separate address space from the Runtime" — an async stack runs
        // on Runtime workers, so untrusted types are only mountable sync.
        if stack.exec == crate::stack::ExecMode::Async {
            for v in &spec.labmods {
                if !self.mm.type_is_trusted(&v.type_name) {
                    return Err(format!(
                        "LabMod type '{}' comes from an untrusted repo and cannot execute in the Runtime's address space; mount the stack with exec=sync",
                        v.type_name
                    ));
                }
            }
        }
        for v in &spec.labmods {
            self.mm.instantiate(&v.uuid, &v.type_name, &v.params)?;
        }
        self.ns.mount(stack)
    }

    /// Parse and mount a JSON spec.
    pub fn mount_stack_json(&self, json: &str) -> Result<Arc<LabStack>, String> {
        self.mount_stack(&StackSpec::parse(json)?)
    }

    /// Queue a module upgrade (`modify.mods`). The admin bell wakes the
    /// admin thread immediately instead of letting the request sit out the
    /// remainder of the poll interval.
    pub fn request_upgrade(&self, req: UpgradeRequest) {
        self.mm.request_upgrade(req);
        self.admin_bell.ring();
    }

    // ---- crash / restart -----------------------------------------------------

    /// Simulate a Runtime crash: workers die, liveness drops. Clients
    /// block in `wait` until restart (§III-C3).
    pub fn crash(&self) {
        self.ipc.set_offline();
        {
            let mut workers = self.workers.lock(); // lock-class: runtime.workers
            for w in workers.iter_mut() {
                w.stop();
            }
            workers.clear();
        }
        // All consumers are gone: forget the applied shape so the
        // post-restart rebalance reassigns from scratch (no handoff — a
        // queue with no live consumer has nobody to quiesce).
        {
            let mut state = self.rebalance_state.lock(); // lock-class: runtime.state
            state.last_shape.clear();
            state.pending_resume.clear();
        }
        // Sweep the pause flags of *every* queue, not just the ones a
        // timed-out handoff parked in `pending_resume`: a crash landing
        // mid-handoff (queues marked UPDATE_PENDING / acked, new
        // assignment never published) leaves the pause bits set in the
        // shared-memory rings, and the dead consumers can never clear
        // them. Un-pausing is safe — no consumer survives a crash, so
        // there is nothing left to quiesce — and required, or the
        // envelopes parked in those rings would never be drained.
        for q in self.ipc.primary_queues() {
            q.clear_update();
        }
    }

    /// Restart after a crash: respawn workers, repair module state, go
    /// back online.
    pub fn restart(&self) {
        {
            let mut workers = self.workers.lock(); // lock-class: runtime.workers
            if workers.is_empty() {
                *workers = (0..self.max_workers)
                    .map(|i| {
                        Worker::spawn(i, self.ns.clone(), self.mm.clone(), self.watermark.clone())
                    })
                    .collect();
            }
        }
        self.mm.repair_all();
        self.rebalance();
        self.ipc.set_online();
    }

    /// Stop everything.
    pub fn shutdown(&self) {
        self.admin_stop.store(true, Ordering::Release);
        self.admin_bell.ring();
        // lock-class: runtime.admin
        if let Some(h) = self.admin.lock().take() {
            let _ = h.join();
        }
        let mut workers = self.workers.lock(); // lock-class: runtime.workers
        for w in workers.iter_mut() {
            w.stop();
        }
        workers.clear();
        self.ipc.set_offline();
    }

    /// Whether this runtime runs its own admin thread.
    pub fn has_admin(&self) -> bool {
        self.auto_admin
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.admin_stop.store(true, Ordering::Release);
        self.admin_bell.ring();
        // lock-class: runtime.admin
        if let Some(h) = self.admin.lock().take() {
            let _ = h.join();
        }
    }
}
