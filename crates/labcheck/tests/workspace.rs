//! The real gate: lint the actual workspace tree and exhaustively run the
//! model checker. `cargo test -p labstor-labcheck` therefore fails on any
//! unannotated violation anywhere in the workspace.

use labstor_labcheck::{
    explore, gate_mc_bug_configs, gate_mc_configs, lint_workspace, render_text, workspace_root,
    Config,
};

#[test]
fn workspace_tree_is_lint_clean() {
    let root = workspace_root();
    assert!(
        root.join("crates/ipc/src/ring.rs").exists(),
        "workspace root discovery failed: {}",
        root.display()
    );
    let diags = lint_workspace(&Config::labstor(), &root).expect("scan workspace");
    assert!(
        diags.is_empty(),
        "labcheck violations in the workspace:\n{}",
        render_text(&diags)
    );
}

#[test]
fn spsc_ring_model_checks_exhaustively() {
    for cfg in gate_mc_configs() {
        let report = explore(&cfg).unwrap_or_else(|f| panic!("mc failed on {cfg:?}:\n{f}"));
        assert!(report.terminals > 0, "no terminal state for {cfg:?}");
    }
}

#[test]
fn model_checker_catches_planted_bugs() {
    for cfg in gate_mc_bug_configs() {
        assert!(
            explore(&cfg).is_err(),
            "planted bug {:?} went undetected",
            cfg.variant
        );
    }
}
