//! The two layers of the lock discipline must agree on the registry: the
//! static lint's class table (`Config::labstor`) and the runtime witness's
//! `LockClass` statics (`crates/ipc/src/lockwitness.rs`). A class renamed
//! or re-ranked on one side silently weakens the other, so this test
//! parses the witness source and cross-checks every declared class.

use labstor_labcheck::{workspace_root, Config};

/// A `LockClass { name: "...", rank: N, nest_within: B }` literal pulled
/// out of the witness source.
#[derive(Debug)]
struct WitnessClass {
    name: String,
    rank: u16,
    nest_within: bool,
}

fn parse_witness_classes(src: &str) -> Vec<WitnessClass> {
    let mut out = Vec::new();
    let mut rest = src;
    while let Some(i) = rest.find("LockClass {") {
        let body = &rest[i..];
        let end = body.find('}').expect("unterminated LockClass literal");
        let body = &body[..end];
        rest = &rest[i + end..];
        // The struct *definition* has typed fields (`name: &'static str`),
        // not a quoted value — only literals pass this probe.
        let Some(name) = field_quoted(body, "name:") else {
            continue;
        };
        let rank = field_str(body, "rank:")
            .expect("literal missing rank")
            .parse::<u16>()
            .expect("rank is a u16 literal");
        let nest_within = match field_str(body, "nest_within:").as_deref() {
            Some("true") => true,
            Some("false") => false,
            other => panic!("nest_within must be a bool literal, got {other:?}"),
        };
        out.push(WitnessClass {
            name,
            rank,
            nest_within,
        });
    }
    out
}

/// The quoted string value after `key` in `body`, or `None` when the
/// field is not a string literal (i.e. this is the struct definition).
fn field_quoted(body: &str, key: &str) -> Option<String> {
    let after = body[body.find(key)? + key.len()..].trim_start();
    let stripped = after.strip_prefix('"')?;
    Some(stripped[..stripped.find('"')?].to_string())
}

/// The bare value token after `key` in `body` (number or bool literal).
fn field_str(body: &str, key: &str) -> Option<String> {
    let after = body[body.find(key)? + key.len()..].trim_start();
    Some(
        after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect(),
    )
}

#[test]
fn lock_registry_matches_labcheck() {
    let path = workspace_root().join("crates/ipc/src/lockwitness.rs");
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let witness = parse_witness_classes(&src);
    assert!(
        witness.len() >= 3,
        "expected at least the shard/chunk/tracker classes in {}, found {witness:?}",
        path.display()
    );

    let cfg = Config::labstor();
    for w in &witness {
        let spec = cfg
            .lock_classes
            .iter()
            .find(|s| s.name == w.name)
            .unwrap_or_else(|| {
                panic!(
                    "witness class `{}` is not in labcheck's registry \
                     (labcheck::lint::Config::labstor)",
                    w.name
                )
            });
        assert_eq!(
            spec.rank, w.rank,
            "class `{}`: witness rank {} != lint rank {}",
            w.name, w.rank, spec.rank
        );
        assert_eq!(
            spec.nest_within, w.nest_within,
            "class `{}`: witness nest_within {} != lint nest_within {}",
            w.name, w.nest_within, spec.nest_within
        );
        assert!(
            !spec.virtual_only,
            "class `{}` is virtual in the lint registry but has a real \
             witness lock",
            w.name
        );
    }
}
