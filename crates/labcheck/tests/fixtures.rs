//! Fixture tests for each labcheck lint: good and bad snippets as
//! in-memory strings, asserting exact `file:line` diagnostics and every
//! annotation escape hatch.

use labstor_labcheck::{lint_source, render_json, render_text, Config, Lint};

fn cfg() -> Config {
    Config::labstor()
}

/// Config whose hot paths match the fixture names used below.
fn fixture_cfg() -> Config {
    let mut c = Config::labstor();
    c.hot_paths.push(labstor_labcheck::lint::HotPath {
        file_suffix: "fixtures/hot.rs",
        function: None,
    });
    c.hot_paths.push(labstor_labcheck::lint::HotPath {
        file_suffix: "fixtures/hot_fn.rs",
        function: Some("poll_loop"),
    });
    c
}

fn lines_with(diags: &[labstor_labcheck::Diagnostic], lint: Lint) -> Vec<usize> {
    diags
        .iter()
        .filter(|d| d.lint == lint)
        .map(|d| d.line)
        .collect()
}

// ---- lint 1: relaxed-ordering ------------------------------------------

#[test]
fn relaxed_without_annotation_is_flagged_with_exact_line() {
    let src = "\
fn f(c: &AtomicU64) {
    c.load(Ordering::Acquire);
    c.fetch_add(1, Ordering::Relaxed);
}
";
    let diags = lint_source(&cfg(), "crates/x/src/a.rs", src);
    assert_eq!(lines_with(&diags, Lint::RelaxedOrdering), vec![3]);
    assert_eq!(diags[0].file, "crates/x/src/a.rs");
}

#[test]
fn relaxed_annotated_same_line_passes() {
    let src = "c.fetch_add(1, Ordering::Relaxed); // relaxed-ok: pure counter\n";
    assert!(lint_source(&cfg(), "a.rs", src).is_empty());
}

#[test]
fn relaxed_annotated_preceding_line_passes() {
    let src = "\
// relaxed-ok: monotonic stat, readers tolerate lag
c.fetch_add(1, Ordering::Relaxed);
";
    assert!(lint_source(&cfg(), "a.rs", src).is_empty());
}

#[test]
fn relaxed_in_cfg_test_module_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t(c: &AtomicU64) {
        c.load(Ordering::Relaxed);
    }
}
";
    assert!(lint_source(&cfg(), "a.rs", src).is_empty());
}

#[test]
fn relaxed_in_allowlisted_file_is_exempt() {
    let src = "c.load(Ordering::Relaxed);\n";
    assert!(lint_source(&cfg(), "crates/sim/src/stats.rs", src).is_empty());
    assert_eq!(lint_source(&cfg(), "crates/sim/src/other.rs", src).len(), 1);
}

#[test]
fn relaxed_inside_string_or_comment_is_not_code() {
    let src = "\
let s = \"Ordering::Relaxed\";
// Ordering::Relaxed in prose is fine.
";
    assert!(lint_source(&cfg(), "a.rs", src).is_empty());
}

// ---- lint 2: hot-path-panic --------------------------------------------

#[test]
fn panic_constructs_in_hot_file_are_flagged() {
    let src = "\
fn push(&mut self) {
    let x = self.q.pop().unwrap();
    self.map.get(&x).expect(\"present\");
    panic!(\"boom\");
}
";
    let diags = lint_source(&fixture_cfg(), "fixtures/hot.rs", src);
    assert_eq!(lines_with(&diags, Lint::HotPathPanic), vec![2, 3, 4]);
}

#[test]
fn indexing_in_hot_file_is_flagged_but_annotation_escapes() {
    let src = "\
fn get(&self) {
    let a = self.buf[i & (self.cap() - 1)];
    // panic-ok: index is masked by cap-1, always in bounds
    let b = self.buf[j & (self.cap() - 1)];
}
";
    let diags = lint_source(&fixture_cfg(), "fixtures/hot.rs", src);
    assert_eq!(lines_with(&diags, Lint::HotPathPanic), vec![2]);
    assert!(diags[0].message.contains("indexing"));
}

#[test]
fn array_literals_and_attributes_are_not_indexing() {
    let src = "\
#[allow(clippy::too_many_arguments)]
fn f() {
    let a = [0u8; 4];
    let t: [u8; 2] = [1, 2];
}
";
    assert!(lint_source(&fixture_cfg(), "fixtures/hot.rs", src).is_empty());
}

#[test]
fn unwrap_outside_hot_path_files_is_allowed() {
    let src = "fn f() { x.unwrap(); }\n";
    assert!(lint_source(&fixture_cfg(), "crates/x/src/cold.rs", src).is_empty());
}

#[test]
fn function_scoped_hot_path_only_covers_that_fn() {
    let src = "\
fn spawn() {
    builder.spawn(f).expect(\"spawn\");
}
fn poll_loop() {
    q.pop().unwrap();
}
fn teardown() {
    j.join().unwrap();
}
";
    let diags = lint_source(&fixture_cfg(), "fixtures/hot_fn.rs", src);
    assert_eq!(lines_with(&diags, Lint::HotPathPanic), vec![5]);
}

#[test]
fn hot_path_test_module_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t() { q.pop().unwrap(); }
}
";
    assert!(lint_source(&fixture_cfg(), "fixtures/hot.rs", src).is_empty());
}

// ---- lint 3: unsafe-hygiene --------------------------------------------

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let src = "\
fn f(p: *mut u8) {
    unsafe { *p = 0 };
}
";
    let diags = lint_source(&cfg(), "a.rs", src);
    assert_eq!(lines_with(&diags, Lint::UnsafeHygiene), vec![2]);
}

#[test]
fn unsafe_with_safety_block_above_passes() {
    let src = "\
fn f(p: *mut u8) {
    // SAFETY: p is valid for writes; we hold the only reference.
    // (continued justification)
    unsafe { *p = 0 };
}
";
    assert!(lint_source(&cfg(), "a.rs", src).is_empty());
}

#[test]
fn unsafe_impl_needs_its_own_safety_comment() {
    let src = "\
// SAFETY: ownership of T moves with the queue.
unsafe impl<T: Send> Send for Q<T> {}
unsafe impl<T: Send> Sync for Q<T> {}
";
    let diags = lint_source(&cfg(), "a.rs", src);
    // Line 2 is covered by the comment; line 3 is not (code line between).
    assert_eq!(lines_with(&diags, Lint::UnsafeHygiene), vec![3]);
}

#[test]
fn unsafe_in_test_code_still_requires_safety() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t(p: *mut u8) {
        unsafe { *p = 1 };
    }
}
";
    let diags = lint_source(&cfg(), "a.rs", src);
    assert_eq!(lines_with(&diags, Lint::UnsafeHygiene), vec![4]);
}

#[test]
fn unsafe_word_in_identifier_is_not_flagged() {
    let src = "fn not_unsafe_here() { let unsafety = 1; }\n";
    assert!(lint_source(&cfg(), "a.rs", src).is_empty());
}

// ---- lint 4: labmod-contract -------------------------------------------

#[test]
fn labmod_impl_missing_both_hooks_is_flagged() {
    let src = "\
impl LabMod for Passthrough {
    fn type_name(&self) -> &'static str { \"pt\" }
}
";
    let diags = lint_source(&cfg(), "crates/mods/src/pt.rs", src);
    assert_eq!(lines_with(&diags, Lint::LabModContract), vec![1]);
    assert!(diags[0].message.contains("state_update and state_repair"));
}

#[test]
fn labmod_impl_missing_only_repair_names_it() {
    let src = "\
impl LabMod for Cache {
    fn state_update(&self, old: &dyn LabMod) { self.warm(old); }
}
";
    let diags = lint_source(&cfg(), "m.rs", src);
    assert_eq!(diags.len(), 1);
    assert!(diags[0].message.contains("state_repair"));
    assert!(!diags[0].message.contains("state_update and"));
}

#[test]
fn labmod_impl_with_both_hooks_passes() {
    let src = "\
impl LabMod for Durable {
    fn state_update(&self, old: &dyn LabMod) {}
    fn state_repair(&self) {}
}
";
    assert!(lint_source(&cfg(), "m.rs", src).is_empty());
}

#[test]
fn labmod_default_ok_annotation_escapes() {
    let src = "\
// labmod-default-ok: stateless pass-through, nothing to migrate
impl LabMod for Noop {
    fn type_name(&self) -> &'static str { \"noop\" }
}
";
    assert!(lint_source(&cfg(), "m.rs", src).is_empty());
}

#[test]
fn labmod_impl_in_test_module_is_exempt() {
    let src = "\
#[cfg(test)]
mod tests {
    impl LabMod for Probe {
        fn type_name(&self) -> &'static str { \"probe\" }
    }
}
";
    assert!(lint_source(&cfg(), "m.rs", src).is_empty());
}

// ---- lint 5: payload-copy -----------------------------------------------

#[test]
fn to_vec_in_copy_hot_path_is_flagged() {
    let src = "\
fn hit(&self) -> RespPayload {
    RespPayload::Data(self.block.to_vec())
}
";
    let diags = lint_source(&cfg(), "crates/mods/src/lru.rs", src);
    assert_eq!(lines_with(&diags, Lint::PayloadCopy), vec![2]);
    assert!(diags[0].message.contains("note_payload_copy"));
}

#[test]
fn payload_clone_is_flagged_but_handle_clone_is_not() {
    let src = "\
fn f(&self) {
    let a = data.clone();
    let b = buf.clone();
    let c = req.clone();
}
";
    let diags = lint_source(&cfg(), "crates/mods/src/labfs.rs", src);
    assert_eq!(lines_with(&diags, Lint::PayloadCopy), vec![2]);
}

#[test]
fn copy_ok_annotation_escapes_payload_copy() {
    let src = "\
// copy-ok: legacy Vec fallback; counted via note_payload_copy
let d = data.clone();
let v = stored.to_vec(); // copy-ok: decoder needs owned bytes
";
    assert!(lint_source(&cfg(), "crates/mods/src/labkvs.rs", src).is_empty());
}

#[test]
fn copies_outside_copy_hot_modules_are_allowed() {
    let src = "let d = data.to_vec();\n";
    assert!(lint_source(&cfg(), "crates/core/src/request.rs", src).is_empty());
}

#[test]
fn copies_in_test_code_are_exempt_from_payload_copy() {
    let src = "\
#[cfg(test)]
mod tests {
    fn t() { let d = data.to_vec(); }
}
";
    assert!(lint_source(&cfg(), "crates/mods/src/lru.rs", src).is_empty());
}

// ---- output formats -----------------------------------------------------

#[test]
fn text_rendering_is_file_line_lint_message() {
    let src = "c.load(Ordering::Relaxed);\n";
    let diags = lint_source(&cfg(), "crates/x/src/a.rs", src);
    let text = render_text(&diags);
    assert!(
        text.starts_with("crates/x/src/a.rs:1: [relaxed-ordering] "),
        "got: {text}"
    );
}

#[test]
fn json_rendering_is_machine_readable() {
    let src = "unsafe { x(); } // no justification\n";
    let diags = lint_source(&cfg(), "a.rs", src);
    let json = render_json(&diags);
    assert!(json.contains("\"file\": \"a.rs\""));
    assert!(json.contains("\"line\": 1"));
    assert!(json.contains("\"lint\": \"unsafe-hygiene\""));
    assert_eq!(render_json(&[]).trim(), "[]");
}

#[test]
fn json_rendering_escapes_special_characters() {
    // A path with a quote and backslash must not produce broken JSON.
    let diags = lint_source(&cfg(), "dir\\a\"b.rs", "unsafe { x(); }\n");
    let json = render_json(&diags);
    assert!(json.contains("dir\\\\a\\\"b.rs"), "got: {json}");
}
