//! Deterministic interleaving model checker for the SPSC ring hot path.
//!
//! `Producer::push`/`push_batch` and `Consumer::pop`/`pop_batch`
//! (crates/ipc/src/ring.rs) are
//! decomposed into their atomic steps — counter loads, the occupancy
//! check, the slot access, the publishing store — and a scheduler explores
//! *every* reachable interleaving of the two threads by exhaustive search
//! over the joint state space with a visited set. This is equivalent to
//! enumerating all schedules up to the configured operation bound (two
//! schedules that reach the same joint state have identical futures) while
//! staying tractable: depth 6/6 is a few thousand states, not C(48,24)
//! sequences.
//!
//! Modeled faithfully from the implementation:
//! - counters are fixed-width and wrap (modeled as `u8` so wraparound is
//!   actually exercised — see [`McConfig::start`]);
//! - slot index = counter masked by capacity (a power of two);
//! - the producer re-reads `head`, the consumer re-reads `tail`, and with
//!   [`McConfig::stale_reads`] those loads may return *any* value the
//!   other side ever published since the reader's last observation —
//!   the coherence-permitted weakness of an Acquire load of a counter the
//!   other thread bumps with Release stores. (Store/store reordering is
//!   *not* modeled; the release fences in the implementation are what
//!   forbid it.)
//! - with [`McConfig::batch`] `> 1` each operation claims up to `batch`
//!   slots from one counter observation, touches them one atomic step at
//!   a time, and publishes the whole burst with **one** counter store —
//!   exactly the batched-doorbell protocol of `push_batch`/`pop_batch`.
//!   With batched publication a counter skips intermediate values; the
//!   stale-read model still enumerates them, a safe-side
//!   over-approximation (a skipped value only ever implies *fewer*
//!   claimable slots than the published one).
//!
//! Invariants checked on every step / terminal state:
//! - a push never overwrites a slot still holding an unconsumed element
//!   (no lost elements);
//! - a pop never reads an empty/unpublished slot (no use of uninitialized
//!   memory, no double-consume);
//! - pops observe values in FIFO order (no reordering, no duplication);
//! - when both sides finish, occupancy and residual slot contents match
//!   exactly what `Drop` will drain;
//! - completion is reachable (a livelocked algorithm fails the run).

use std::collections::{HashMap, HashSet, VecDeque};

/// Maximum modeled capacity (slots array is fixed-size to keep the state
/// hashable and cheap to clone).
pub const MAX_CAP: usize = 8;

/// Algorithm variant to explore. The buggy variants exist so tests can
/// prove the checker actually detects the bug classes it claims to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped algorithm.
    Correct,
    /// Full check uses `> cap` instead of `== cap`: admits one push too
    /// many, clobbering the oldest unconsumed slot.
    FullCheckOffByOne,
    /// Consumer publishes `head + 1` *before* reading the slot: the
    /// producer may reuse the slot while the pop is still in flight.
    AdvanceHeadBeforeRead,
    /// Producer forgets the publishing store of `tail`: elements are
    /// written but never become visible, so the run cannot complete.
    MissingPublish,
    /// Batched producer publishes the *full* batch tail after writing
    /// only the first slot: the consumer may claim and read slots of the
    /// burst that were never written. Requires `batch > 1` to manifest.
    BatchPublishEarly,
}

/// Model-checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Ring capacity; must be a power of two `<= MAX_CAP`.
    pub cap: u8,
    /// Number of push operations on the producer side.
    pub pushes: u8,
    /// Number of pop operations on the consumer side (`<= pushes`).
    pub pops: u8,
    /// Initial value of both counters. Set near `u8::MAX` to drive the
    /// counters across the wrap during the run.
    pub start: u8,
    /// Model stale counter reads (see module docs).
    pub stale_reads: bool,
    /// Slots each operation may claim from one counter observation before
    /// its single publishing store (1 = the classic per-element protocol).
    pub batch: u8,
    /// Algorithm variant under test.
    pub variant: Variant,
}

impl McConfig {
    /// A correct-algorithm exploration at the given depth.
    pub fn correct(cap: u8, ops: u8) -> McConfig {
        McConfig {
            cap,
            pushes: ops,
            pops: ops,
            start: 0,
            stale_reads: true,
            batch: 1,
            variant: Variant::Correct,
        }
    }

    /// A correct-algorithm exploration using batched publication.
    pub fn correct_batched(cap: u8, ops: u8, batch: u8) -> McConfig {
        McConfig {
            batch,
            ..McConfig::correct(cap, ops)
        }
    }
}

/// Safety violation detected mid-exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Push wrote over a slot still holding an unconsumed value.
    Overwrite { slot: usize, lost: u8 },
    /// Pop read a slot with no published value.
    ReadUninit { slot: usize },
    /// Pop observed a value out of FIFO order.
    OutOfOrder { expected: u8, got: u8 },
    /// Both sides finished but occupancy/slot residue is inconsistent
    /// with the counters (what `Drop` relies on).
    Terminal(String),
    /// Exploration exhausted the state space without ever reaching a
    /// state where both sides completed (livelock / lost wakeup).
    NoCompletion,
}

/// A violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct McFailure {
    /// What went wrong.
    pub violation: Violation,
    /// Step labels from the initial state to the violating step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for McFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct joint states reached.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Number of distinct terminal (both-sides-done) states.
    pub terminals: usize,
}

/// Joint state of the two-thread system. Program counters encode where
/// inside push/pop each side is; locals mirror the implementation's stack
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    // Shared memory.
    head: u8,
    tail: u8,
    slots: [Option<u8>; MAX_CAP],
    // Producer: pc 0 = idle/start, 1 = read head, 2 = claim (occupancy
    // check), 3 = write slot (loops `p_todo` times), 4 = publish tail.
    p_pc: u8,
    p_tail: u8,
    p_head: u8,
    p_seen_head: u8,
    /// Slots claimed for the current burst.
    p_todo: u8,
    /// Slots of the current burst already written.
    p_written: u8,
    pushed: u8,
    // Consumer: pc 0 = idle/start, 1 = read tail, 2 = claim (empty
    // check), 3 = read slot (loops `c_todo` times), 4 = publish head.
    c_pc: u8,
    c_head: u8,
    c_tail: u8,
    c_seen_tail: u8,
    /// Slots claimed for the current burst.
    c_todo: u8,
    /// Slots of the current burst already read.
    c_read: u8,
    popped: u8,
}

/// Exhaustively explore all interleavings. `Ok` carries statistics; `Err`
/// carries the first violation found plus its schedule.
pub fn explore(cfg: &McConfig) -> Result<Report, McFailure> {
    assert!(
        cfg.cap.is_power_of_two() && (cfg.cap as usize) <= MAX_CAP,
        "cap must be 2/4/8"
    );
    assert!(cfg.pops <= cfg.pushes, "cannot pop more than is pushed");
    assert!(cfg.batch >= 1, "batch must be at least 1");

    let init = State {
        head: cfg.start,
        tail: cfg.start,
        slots: [None; MAX_CAP],
        p_pc: 0,
        p_tail: 0,
        p_head: 0,
        p_seen_head: cfg.start,
        p_todo: 0,
        p_written: 0,
        pushed: 0,
        c_pc: 0,
        c_head: 0,
        c_tail: 0,
        c_seen_tail: cfg.start,
        c_todo: 0,
        c_read: 0,
        popped: 0,
    };

    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    while let Some(state) = queue.pop_front() {
        let p_done = state.p_pc == 0 && state.pushed == cfg.pushes;
        let c_done = state.c_pc == 0 && state.popped == cfg.pops;
        if p_done && c_done {
            terminals += 1;
            if let Err(violation) = check_terminal(cfg, &state) {
                return Err(fail(violation, &state, None, &parent));
            }
            continue;
        }
        let mut successors: Vec<(State, String)> = Vec::new();
        if !p_done {
            match producer_step(cfg, &state) {
                Ok(mut next) => successors.append(&mut next),
                Err((violation, label)) => {
                    return Err(fail(violation, &state, Some(label), &parent));
                }
            }
        }
        if !c_done {
            match consumer_step(cfg, &state) {
                Ok(mut next) => successors.append(&mut next),
                Err((violation, label)) => {
                    return Err(fail(violation, &state, Some(label), &parent));
                }
            }
        }
        for (next, label) in successors {
            transitions += 1;
            if visited.insert(next) {
                parent.insert(next, (state, label));
                queue.push_back(next);
            }
        }
    }

    if terminals == 0 {
        return Err(McFailure {
            violation: Violation::NoCompletion,
            trace: Vec::new(),
        });
    }
    Ok(Report {
        states: visited.len(),
        transitions,
        terminals,
    })
}

/// All successor states of one producer step, or a violation.
#[allow(clippy::type_complexity)]
fn producer_step(cfg: &McConfig, s: &State) -> Result<Vec<(State, String)>, (Violation, String)> {
    let mut out = Vec::new();
    match s.p_pc {
        // load own tail (exact: only this thread stores it)
        0 => {
            let mut n = *s;
            n.p_tail = s.tail;
            n.p_pc = 1;
            out.push((n, format!("producer: read tail={}", n.p_tail)));
        }
        // load head, possibly stale
        1 => {
            for h in observable(cfg, s.p_seen_head, s.head) {
                let mut n = *s;
                n.p_head = h;
                n.p_seen_head = h;
                n.p_pc = 2;
                out.push((n, format!("producer: read head={h}")));
            }
        }
        // claim: occupancy check, burst size = min(free, batch, left)
        2 => {
            let occupancy = s.p_tail.wrapping_sub(s.p_head);
            // The off-by-one variant believes one more slot is free than
            // the ring has (`> cap` instead of `== cap` in the classic
            // per-element check).
            let free = match cfg.variant {
                Variant::FullCheckOffByOne => (cfg.cap + 1).saturating_sub(occupancy),
                _ => cfg.cap.saturating_sub(occupancy),
            };
            let burst = free.min(cfg.batch).min(cfg.pushes - s.pushed);
            let mut n = *s;
            if burst == 0 {
                n.p_pc = 0;
                out.push((
                    n,
                    format!("producer: check occupancy={occupancy} (full, retry)"),
                ));
            } else {
                n.p_todo = burst;
                n.p_written = 0;
                n.p_pc = 3;
                out.push((
                    n,
                    format!("producer: check occupancy={occupancy} (claim {burst})"),
                ));
            }
        }
        // write one slot of the burst
        3 => {
            let slot = (s.p_tail.wrapping_add(s.p_written) % cfg.cap) as usize;
            let value = s.pushed;
            if let Some(lost) = s.slots[slot] {
                return Err((
                    Violation::Overwrite { slot, lost },
                    format!("producer: write slot[{slot}]={value} OVER {lost}"),
                ));
            }
            let mut n = *s;
            n.slots[slot] = Some(value);
            n.pushed = s.pushed + 1;
            n.p_written = s.p_written + 1;
            let mut label = format!("producer: write slot[{slot}]={value}");
            if cfg.variant == Variant::BatchPublishEarly && s.p_written == 0 {
                // Bug: doorbell rings for the whole burst after the first
                // slot write.
                n.tail = s.p_tail.wrapping_add(s.p_todo);
                label = format!("{label}, publish tail={} (EARLY)", n.tail);
            }
            n.p_pc = if n.p_written == s.p_todo {
                // Early-publish variant already rang the doorbell.
                if cfg.variant == Variant::BatchPublishEarly {
                    0
                } else {
                    4
                }
            } else {
                3
            };
            out.push((n, label));
        }
        // publish tail: one Release store for the whole burst
        _ => {
            let mut n = *s;
            if cfg.variant != Variant::MissingPublish {
                n.tail = s.p_tail.wrapping_add(s.p_todo);
            }
            n.p_pc = 0;
            out.push((n, format!("producer: publish tail={}", n.tail)));
        }
    }
    Ok(out)
}

/// All successor states of one consumer step, or a violation.
#[allow(clippy::type_complexity)]
fn consumer_step(cfg: &McConfig, s: &State) -> Result<Vec<(State, String)>, (Violation, String)> {
    let mut out = Vec::new();
    match s.c_pc {
        // load own head (exact)
        0 => {
            let mut n = *s;
            n.c_head = s.head;
            n.c_pc = 1;
            out.push((n, format!("consumer: read head={}", n.c_head)));
        }
        // load tail, possibly stale
        1 => {
            for t in observable(cfg, s.c_seen_tail, s.tail) {
                let mut n = *s;
                n.c_tail = t;
                n.c_seen_tail = t;
                n.c_pc = 2;
                out.push((n, format!("consumer: read tail={t}")));
            }
        }
        // claim: empty check, burst size = min(available, batch, left)
        2 => {
            let avail = s.c_tail.wrapping_sub(s.c_head);
            let burst = avail.min(cfg.batch).min(cfg.pops - s.popped);
            let mut n = *s;
            if burst == 0 {
                n.c_pc = 0;
                out.push((n, "consumer: check (empty, retry)".to_string()));
            } else {
                n.c_todo = burst;
                n.c_read = 0;
                n.c_pc = 3;
                out.push((n, format!("consumer: check (claim {burst})")));
            }
        }
        // read one slot of the burst; in the buggy variant the head is
        // published first and the slot reads happen at pc 4.
        3 => {
            if cfg.variant == Variant::AdvanceHeadBeforeRead {
                let mut n = *s;
                n.head = s.c_head.wrapping_add(s.c_todo);
                n.c_pc = 4;
                out.push((n, format!("consumer: publish head={} (EARLY)", n.head)));
            } else {
                let (n, label) = read_slot(cfg, s)?;
                out.push((n, label));
            }
        }
        // publish head: one Release store for the whole burst (or, in
        // the buggy variant, the late slot reads)
        _ => {
            if cfg.variant == Variant::AdvanceHeadBeforeRead {
                let (n, label) = read_slot(cfg, s)?;
                out.push((n, label));
            } else {
                let mut n = *s;
                n.head = s.c_head.wrapping_add(s.c_todo);
                n.c_pc = 0;
                out.push((n, format!("consumer: publish head={}", n.head)));
            }
        }
    }
    Ok(out)
}

/// The consumer's slot read + FIFO assertion, shared by both orderings.
fn read_slot(cfg: &McConfig, s: &State) -> Result<(State, String), (Violation, String)> {
    let slot = (s.c_head.wrapping_add(s.c_read) % cfg.cap) as usize;
    let label = format!("consumer: read slot[{slot}]");
    let Some(value) = s.slots[slot] else {
        return Err((Violation::ReadUninit { slot }, label));
    };
    if value != s.popped {
        return Err((
            Violation::OutOfOrder {
                expected: s.popped,
                got: value,
            },
            label,
        ));
    }
    let mut n = *s;
    n.slots[slot] = None;
    n.popped = s.popped + 1;
    n.c_read = s.c_read + 1;
    let done = n.c_read == s.c_todo;
    n.c_pc = match (cfg.variant == Variant::AdvanceHeadBeforeRead, done) {
        // Early-publish variant already advanced head; burst ends here.
        (true, true) => 0,
        (true, false) => 4,
        (false, true) => 4,
        (false, false) => 3,
    };
    Ok((n, format!("consumer: read slot[{slot}]={value}")))
}

/// Values a load of the other side's counter may return: just the current
/// value, or — with stale reads modeled — anything in the window since
/// this thread last observed it. With batched publication a counter skips
/// intermediate values; enumerating them anyway over-approximates safely
/// (a smaller counter only shrinks the burst the reader claims).
fn observable(cfg: &McConfig, last_seen: u8, current: u8) -> Vec<u8> {
    if !cfg.stale_reads {
        return vec![current];
    }
    let span = current.wrapping_sub(last_seen);
    (0..=span).map(|d| last_seen.wrapping_add(d)).collect()
}

/// Invariants of a both-sides-done state: counters account for exactly
/// the unconsumed elements, residual slots hold exactly the FIFO suffix
/// (this is what `SpscRing::drop` walks), and nothing else survives.
fn check_terminal(cfg: &McConfig, s: &State) -> Result<(), Violation> {
    let remaining = s.tail.wrapping_sub(s.head);
    if remaining != cfg.pushes - cfg.pops {
        return Err(Violation::Terminal(format!(
            "occupancy {} != expected {}",
            remaining,
            cfg.pushes - cfg.pops
        )));
    }
    let mut expected_slots = [None; MAX_CAP];
    for k in 0..remaining {
        let idx = (s.head.wrapping_add(k) % cfg.cap) as usize;
        expected_slots[idx] = Some(cfg.pops + k);
    }
    if s.slots != expected_slots {
        return Err(Violation::Terminal(format!(
            "residual slots {:?} != expected {:?}",
            s.slots, expected_slots
        )));
    }
    Ok(())
}

/// Reconstruct the schedule from the parent map and build a failure.
fn fail(
    violation: Violation,
    at: &State,
    last_label: Option<String>,
    parent: &HashMap<State, (State, String)>,
) -> McFailure {
    let mut trace = Vec::new();
    if let Some(label) = last_label {
        trace.push(label);
    }
    let mut cur = *at;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    McFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_algorithm_depth_6_no_staleness() {
        let mut cfg = McConfig::correct(2, 6);
        cfg.stale_reads = false;
        let report = explore(&cfg).expect("no violations");
        assert!(report.terminals >= 1);
        assert!(report.states > 100, "exploration should be nontrivial");
    }

    #[test]
    fn correct_algorithm_depth_6_with_staleness() {
        let report = explore(&McConfig::correct(2, 6)).expect("no violations");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn correct_algorithm_across_counter_wrap() {
        // Counters start at 253 and wrap past 255 mid-run: the masked
        // indexing and wrapping occupancy math must hold throughout.
        let cfg = McConfig {
            cap: 4,
            pushes: 7,
            pops: 7,
            start: 253,
            stale_reads: true,
            batch: 1,
            variant: Variant::Correct,
        };
        explore(&cfg).expect("wraparound is safe");
    }

    #[test]
    fn leftover_elements_match_drop_contract() {
        // Push 6, pop 4: the terminal invariant proves the [head, tail)
        // residue is exactly what Drop drains.
        let cfg = McConfig {
            cap: 4,
            pushes: 6,
            pops: 4,
            start: 254,
            stale_reads: true,
            batch: 1,
            variant: Variant::Correct,
        };
        explore(&cfg).expect("residue consistent");
    }

    #[test]
    fn detects_off_by_one_full_check() {
        let cfg = McConfig {
            cap: 2,
            pushes: 4,
            pops: 4,
            start: 0,
            stale_reads: false,
            batch: 1,
            variant: Variant::FullCheckOffByOne,
        };
        let failure = explore(&cfg).expect_err("must catch the overwrite");
        assert!(matches!(failure.violation, Violation::Overwrite { .. }));
        assert!(!failure.trace.is_empty(), "counterexample has a schedule");
    }

    #[test]
    fn detects_early_head_publish() {
        let cfg = McConfig {
            cap: 2,
            pushes: 3,
            pops: 3,
            start: 0,
            stale_reads: false,
            batch: 1,
            variant: Variant::AdvanceHeadBeforeRead,
        };
        let failure = explore(&cfg).expect_err("must catch the race");
        assert!(matches!(
            failure.violation,
            Violation::Overwrite { .. } | Violation::ReadUninit { .. }
        ));
    }

    #[test]
    fn detects_missing_publish_as_livelock() {
        // One push: the element is written but never published, so the
        // consumer spins on empty forever. (With more pushes the stale
        // tail makes the producer clobber slot 0 first, which the
        // overwrite check reports instead.)
        let cfg = McConfig {
            cap: 2,
            pushes: 1,
            pops: 1,
            start: 0,
            stale_reads: false,
            batch: 1,
            variant: Variant::MissingPublish,
        };
        let failure = explore(&cfg).expect_err("must detect no completion");
        assert_eq!(failure.violation, Violation::NoCompletion);
    }

    #[test]
    fn batched_publication_is_safe() {
        // The push_batch/pop_batch protocol: up to 3 slots per counter
        // observation, one doorbell store per burst, stale reads on.
        let report = explore(&McConfig::correct_batched(4, 6, 3)).expect("no violations");
        assert!(report.terminals >= 1);
        assert!(report.states > 100, "exploration should be nontrivial");
    }

    #[test]
    fn batched_publication_across_counter_wrap() {
        let cfg = McConfig {
            cap: 4,
            pushes: 7,
            pops: 7,
            start: 253,
            stale_reads: true,
            batch: 3,
            variant: Variant::Correct,
        };
        explore(&cfg).expect("batched wraparound is safe");
    }

    #[test]
    fn batched_partial_drain_matches_drop_contract() {
        // Push 6 in bursts of 2, pop 4 in bursts of 2: residue must be
        // exactly the FIFO suffix Drop drains.
        let cfg = McConfig {
            cap: 4,
            pushes: 6,
            pops: 4,
            start: 254,
            stale_reads: true,
            batch: 2,
            variant: Variant::Correct,
        };
        explore(&cfg).expect("batched residue consistent");
    }

    #[test]
    fn batch_of_one_equals_classic_protocol() {
        // batch=1 must explore the same algorithm as the per-element
        // model (the claim step degenerates to the classic full check).
        let classic = explore(&McConfig::correct(2, 5)).expect("ok");
        let batched = explore(&McConfig::correct_batched(2, 5, 1)).expect("ok");
        assert_eq!(classic.states, batched.states);
        assert_eq!(classic.terminals, batched.terminals);
    }

    #[test]
    fn detects_early_batch_publish() {
        // The doorbell rings for the whole burst after only the first
        // slot write: a consumer claiming the burst reads an unwritten
        // slot.
        let cfg = McConfig {
            cap: 4,
            pushes: 3,
            pops: 3,
            start: 0,
            stale_reads: false,
            batch: 3,
            variant: Variant::BatchPublishEarly,
        };
        let failure = explore(&cfg).expect_err("must catch the early doorbell");
        assert!(
            matches!(failure.violation, Violation::ReadUninit { .. }),
            "expected ReadUninit, got {:?}",
            failure.violation
        );
        assert!(!failure.trace.is_empty(), "counterexample has a schedule");
    }

    #[test]
    fn early_batch_publish_is_harmless_at_batch_one() {
        // With batch=1 the "early" doorbell covers exactly the one slot
        // already written — the planted bug needs a real burst to bite.
        let cfg = McConfig {
            cap: 2,
            pushes: 4,
            pops: 4,
            start: 0,
            stale_reads: true,
            batch: 1,
            variant: Variant::BatchPublishEarly,
        };
        explore(&cfg).expect("degenerate batch cannot misfire");
    }

    #[test]
    fn stale_reads_enlarge_the_state_space() {
        let mut cfg = McConfig::correct(2, 4);
        cfg.stale_reads = false;
        let exact = explore(&cfg).expect("ok");
        cfg.stale_reads = true;
        let stale = explore(&cfg).expect("ok");
        assert!(stale.states > exact.states);
    }
}
