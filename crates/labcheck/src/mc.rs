//! Deterministic interleaving model checker for the SPSC ring hot path.
//!
//! `Producer::push` and `Consumer::pop` (crates/ipc/src/ring.rs) are
//! decomposed into their atomic steps — counter loads, the occupancy
//! check, the slot access, the publishing store — and a scheduler explores
//! *every* reachable interleaving of the two threads by exhaustive search
//! over the joint state space with a visited set. This is equivalent to
//! enumerating all schedules up to the configured operation bound (two
//! schedules that reach the same joint state have identical futures) while
//! staying tractable: depth 6/6 is a few thousand states, not C(48,24)
//! sequences.
//!
//! Modeled faithfully from the implementation:
//! - counters are fixed-width and wrap (modeled as `u8` so wraparound is
//!   actually exercised — see [`McConfig::start`]);
//! - slot index = counter masked by capacity (a power of two);
//! - the producer re-reads `head`, the consumer re-reads `tail`, and with
//!   [`McConfig::stale_reads`] those loads may return *any* value the
//!   other side ever published since the reader's last observation —
//!   the coherence-permitted weakness of an Acquire load of a counter the
//!   other thread bumps with Release stores. (Store/store reordering is
//!   *not* modeled; the release fences in the implementation are what
//!   forbid it.)
//!
//! Invariants checked on every step / terminal state:
//! - a push never overwrites a slot still holding an unconsumed element
//!   (no lost elements);
//! - a pop never reads an empty/unpublished slot (no use of uninitialized
//!   memory, no double-consume);
//! - pops observe values in FIFO order (no reordering, no duplication);
//! - when both sides finish, occupancy and residual slot contents match
//!   exactly what `Drop` will drain;
//! - completion is reachable (a livelocked algorithm fails the run).

use std::collections::{HashMap, HashSet, VecDeque};

/// Maximum modeled capacity (slots array is fixed-size to keep the state
/// hashable and cheap to clone).
pub const MAX_CAP: usize = 8;

/// Algorithm variant to explore. The buggy variants exist so tests can
/// prove the checker actually detects the bug classes it claims to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The shipped algorithm.
    Correct,
    /// Full check uses `> cap` instead of `== cap`: admits one push too
    /// many, clobbering the oldest unconsumed slot.
    FullCheckOffByOne,
    /// Consumer publishes `head + 1` *before* reading the slot: the
    /// producer may reuse the slot while the pop is still in flight.
    AdvanceHeadBeforeRead,
    /// Producer forgets the publishing store of `tail`: elements are
    /// written but never become visible, so the run cannot complete.
    MissingPublish,
}

/// Model-checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Ring capacity; must be a power of two `<= MAX_CAP`.
    pub cap: u8,
    /// Number of push operations on the producer side.
    pub pushes: u8,
    /// Number of pop operations on the consumer side (`<= pushes`).
    pub pops: u8,
    /// Initial value of both counters. Set near `u8::MAX` to drive the
    /// counters across the wrap during the run.
    pub start: u8,
    /// Model stale counter reads (see module docs).
    pub stale_reads: bool,
    /// Algorithm variant under test.
    pub variant: Variant,
}

impl McConfig {
    /// A correct-algorithm exploration at the given depth.
    pub fn correct(cap: u8, ops: u8) -> McConfig {
        McConfig {
            cap,
            pushes: ops,
            pops: ops,
            start: 0,
            stale_reads: true,
            variant: Variant::Correct,
        }
    }
}

/// Safety violation detected mid-exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Push wrote over a slot still holding an unconsumed value.
    Overwrite { slot: usize, lost: u8 },
    /// Pop read a slot with no published value.
    ReadUninit { slot: usize },
    /// Pop observed a value out of FIFO order.
    OutOfOrder { expected: u8, got: u8 },
    /// Both sides finished but occupancy/slot residue is inconsistent
    /// with the counters (what `Drop` relies on).
    Terminal(String),
    /// Exploration exhausted the state space without ever reaching a
    /// state where both sides completed (livelock / lost wakeup).
    NoCompletion,
}

/// A violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct McFailure {
    /// What went wrong.
    pub violation: Violation,
    /// Step labels from the initial state to the violating step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for McFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Distinct joint states reached.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Number of distinct terminal (both-sides-done) states.
    pub terminals: usize,
}

/// Joint state of the two-thread system. Program counters encode where
/// inside push/pop each side is; locals mirror the implementation's stack
/// variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    // Shared memory.
    head: u8,
    tail: u8,
    slots: [Option<u8>; MAX_CAP],
    // Producer: pc 0 = idle/start, 1 = read head, 2 = check full,
    // 3 = write slot, 4 = publish tail.
    p_pc: u8,
    p_tail: u8,
    p_head: u8,
    p_seen_head: u8,
    pushed: u8,
    // Consumer: pc 0 = idle/start, 1 = read tail, 2 = check empty,
    // 3 = read slot, 4 = publish head.
    c_pc: u8,
    c_head: u8,
    c_tail: u8,
    c_seen_tail: u8,
    popped: u8,
}

/// Exhaustively explore all interleavings. `Ok` carries statistics; `Err`
/// carries the first violation found plus its schedule.
pub fn explore(cfg: &McConfig) -> Result<Report, McFailure> {
    assert!(
        cfg.cap.is_power_of_two() && (cfg.cap as usize) <= MAX_CAP,
        "cap must be 2/4/8"
    );
    assert!(cfg.pops <= cfg.pushes, "cannot pop more than is pushed");

    let init = State {
        head: cfg.start,
        tail: cfg.start,
        slots: [None; MAX_CAP],
        p_pc: 0,
        p_tail: 0,
        p_head: 0,
        p_seen_head: cfg.start,
        pushed: 0,
        c_pc: 0,
        c_head: 0,
        c_tail: 0,
        c_seen_tail: cfg.start,
        popped: 0,
    };

    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    while let Some(state) = queue.pop_front() {
        let p_done = state.p_pc == 0 && state.pushed == cfg.pushes;
        let c_done = state.c_pc == 0 && state.popped == cfg.pops;
        if p_done && c_done {
            terminals += 1;
            if let Err(violation) = check_terminal(cfg, &state) {
                return Err(fail(violation, &state, None, &parent));
            }
            continue;
        }
        let mut successors: Vec<(State, String)> = Vec::new();
        if !p_done {
            match producer_step(cfg, &state) {
                Ok(mut next) => successors.append(&mut next),
                Err((violation, label)) => {
                    return Err(fail(violation, &state, Some(label), &parent));
                }
            }
        }
        if !c_done {
            match consumer_step(cfg, &state) {
                Ok(mut next) => successors.append(&mut next),
                Err((violation, label)) => {
                    return Err(fail(violation, &state, Some(label), &parent));
                }
            }
        }
        for (next, label) in successors {
            transitions += 1;
            if visited.insert(next) {
                parent.insert(next, (state, label));
                queue.push_back(next);
            }
        }
    }

    if terminals == 0 {
        return Err(McFailure {
            violation: Violation::NoCompletion,
            trace: Vec::new(),
        });
    }
    Ok(Report {
        states: visited.len(),
        transitions,
        terminals,
    })
}

/// All successor states of one producer step, or a violation.
#[allow(clippy::type_complexity)]
fn producer_step(cfg: &McConfig, s: &State) -> Result<Vec<(State, String)>, (Violation, String)> {
    let mut out = Vec::new();
    match s.p_pc {
        // load own tail (exact: only this thread stores it)
        0 => {
            let mut n = *s;
            n.p_tail = s.tail;
            n.p_pc = 1;
            out.push((n, format!("producer: read tail={}", n.p_tail)));
        }
        // load head, possibly stale
        1 => {
            for h in observable(cfg, s.p_seen_head, s.head) {
                let mut n = *s;
                n.p_head = h;
                n.p_seen_head = h;
                n.p_pc = 2;
                out.push((n, format!("producer: read head={h}")));
            }
        }
        // occupancy check
        2 => {
            let occupancy = s.p_tail.wrapping_sub(s.p_head);
            let full = match cfg.variant {
                Variant::FullCheckOffByOne => occupancy > cfg.cap,
                _ => occupancy == cfg.cap,
            };
            let mut n = *s;
            n.p_pc = if full { 0 } else { 3 };
            let what = if full { "full, retry" } else { "has space" };
            out.push((n, format!("producer: check occupancy={occupancy} ({what})")));
        }
        // write the slot
        3 => {
            let slot = (s.p_tail % cfg.cap) as usize;
            let value = s.pushed;
            if let Some(lost) = s.slots[slot] {
                return Err((
                    Violation::Overwrite { slot, lost },
                    format!("producer: write slot[{slot}]={value} OVER {lost}"),
                ));
            }
            let mut n = *s;
            n.slots[slot] = Some(value);
            n.p_pc = 4;
            out.push((n, format!("producer: write slot[{slot}]={value}")));
        }
        // publish tail
        _ => {
            let mut n = *s;
            if cfg.variant != Variant::MissingPublish {
                n.tail = s.p_tail.wrapping_add(1);
            }
            n.pushed = s.pushed + 1;
            n.p_pc = 0;
            out.push((n, format!("producer: publish tail={}", n.tail)));
        }
    }
    Ok(out)
}

/// All successor states of one consumer step, or a violation.
#[allow(clippy::type_complexity)]
fn consumer_step(cfg: &McConfig, s: &State) -> Result<Vec<(State, String)>, (Violation, String)> {
    let mut out = Vec::new();
    match s.c_pc {
        // load own head (exact)
        0 => {
            let mut n = *s;
            n.c_head = s.head;
            n.c_pc = 1;
            out.push((n, format!("consumer: read head={}", n.c_head)));
        }
        // load tail, possibly stale
        1 => {
            for t in observable(cfg, s.c_seen_tail, s.tail) {
                let mut n = *s;
                n.c_tail = t;
                n.c_seen_tail = t;
                n.c_pc = 2;
                out.push((n, format!("consumer: read tail={t}")));
            }
        }
        // empty check
        2 => {
            let empty = s.c_head == s.c_tail;
            let mut n = *s;
            n.c_pc = if empty { 0 } else { 3 };
            let what = if empty { "empty, retry" } else { "has element" };
            out.push((n, format!("consumer: check ({what})")));
        }
        // read the slot (move the value out); in the buggy variant the
        // head is published first and the slot read happens at pc 4.
        3 => {
            if cfg.variant == Variant::AdvanceHeadBeforeRead {
                let mut n = *s;
                n.head = s.c_head.wrapping_add(1);
                n.c_pc = 4;
                out.push((n, format!("consumer: publish head={} (EARLY)", n.head)));
            } else {
                let (n, label) = read_slot(cfg, s)?;
                out.push((n, label));
            }
        }
        // publish head (or, in the buggy variant, the late slot read)
        _ => {
            if cfg.variant == Variant::AdvanceHeadBeforeRead {
                let (n, label) = read_slot(cfg, s)?;
                out.push((n, label));
            } else {
                let mut n = *s;
                n.head = s.c_head.wrapping_add(1);
                n.popped = s.popped + 1;
                n.c_pc = 0;
                out.push((n, format!("consumer: publish head={}", n.head)));
            }
        }
    }
    Ok(out)
}

/// The consumer's slot read + FIFO assertion, shared by both orderings.
fn read_slot(cfg: &McConfig, s: &State) -> Result<(State, String), (Violation, String)> {
    let slot = (s.c_head % cfg.cap) as usize;
    let label = format!("consumer: read slot[{slot}]");
    let Some(value) = s.slots[slot] else {
        return Err((Violation::ReadUninit { slot }, label));
    };
    if value != s.popped {
        return Err((
            Violation::OutOfOrder {
                expected: s.popped,
                got: value,
            },
            label,
        ));
    }
    let mut n = *s;
    n.slots[slot] = None;
    if cfg.variant == Variant::AdvanceHeadBeforeRead {
        n.popped = s.popped + 1;
        n.c_pc = 0;
    } else {
        n.c_pc = 4;
    }
    Ok((n, format!("consumer: read slot[{slot}]={value}")))
}

/// Values a load of the other side's counter may return: just the current
/// value, or — with stale reads modeled — anything the counter passed
/// through since this thread last observed it (counters advance by 1).
fn observable(cfg: &McConfig, last_seen: u8, current: u8) -> Vec<u8> {
    if !cfg.stale_reads {
        return vec![current];
    }
    let span = current.wrapping_sub(last_seen);
    (0..=span).map(|d| last_seen.wrapping_add(d)).collect()
}

/// Invariants of a both-sides-done state: counters account for exactly
/// the unconsumed elements, residual slots hold exactly the FIFO suffix
/// (this is what `SpscRing::drop` walks), and nothing else survives.
fn check_terminal(cfg: &McConfig, s: &State) -> Result<(), Violation> {
    let remaining = s.tail.wrapping_sub(s.head);
    if remaining != cfg.pushes - cfg.pops {
        return Err(Violation::Terminal(format!(
            "occupancy {} != expected {}",
            remaining,
            cfg.pushes - cfg.pops
        )));
    }
    let mut expected_slots = [None; MAX_CAP];
    for k in 0..remaining {
        let idx = (s.head.wrapping_add(k) % cfg.cap) as usize;
        expected_slots[idx] = Some(cfg.pops + k);
    }
    if s.slots != expected_slots {
        return Err(Violation::Terminal(format!(
            "residual slots {:?} != expected {:?}",
            s.slots, expected_slots
        )));
    }
    Ok(())
}

/// Reconstruct the schedule from the parent map and build a failure.
fn fail(
    violation: Violation,
    at: &State,
    last_label: Option<String>,
    parent: &HashMap<State, (State, String)>,
) -> McFailure {
    let mut trace = Vec::new();
    if let Some(label) = last_label {
        trace.push(label);
    }
    let mut cur = *at;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    McFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_algorithm_depth_6_no_staleness() {
        let mut cfg = McConfig::correct(2, 6);
        cfg.stale_reads = false;
        let report = explore(&cfg).expect("no violations");
        assert!(report.terminals >= 1);
        assert!(report.states > 100, "exploration should be nontrivial");
    }

    #[test]
    fn correct_algorithm_depth_6_with_staleness() {
        let report = explore(&McConfig::correct(2, 6)).expect("no violations");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn correct_algorithm_across_counter_wrap() {
        // Counters start at 253 and wrap past 255 mid-run: the masked
        // indexing and wrapping occupancy math must hold throughout.
        let cfg = McConfig {
            cap: 4,
            pushes: 7,
            pops: 7,
            start: 253,
            stale_reads: true,
            variant: Variant::Correct,
        };
        explore(&cfg).expect("wraparound is safe");
    }

    #[test]
    fn leftover_elements_match_drop_contract() {
        // Push 6, pop 4: the terminal invariant proves the [head, tail)
        // residue is exactly what Drop drains.
        let cfg = McConfig {
            cap: 4,
            pushes: 6,
            pops: 4,
            start: 254,
            stale_reads: true,
            variant: Variant::Correct,
        };
        explore(&cfg).expect("residue consistent");
    }

    #[test]
    fn detects_off_by_one_full_check() {
        let cfg = McConfig {
            cap: 2,
            pushes: 4,
            pops: 4,
            start: 0,
            stale_reads: false,
            variant: Variant::FullCheckOffByOne,
        };
        let failure = explore(&cfg).expect_err("must catch the overwrite");
        assert!(matches!(failure.violation, Violation::Overwrite { .. }));
        assert!(!failure.trace.is_empty(), "counterexample has a schedule");
    }

    #[test]
    fn detects_early_head_publish() {
        let cfg = McConfig {
            cap: 2,
            pushes: 3,
            pops: 3,
            start: 0,
            stale_reads: false,
            variant: Variant::AdvanceHeadBeforeRead,
        };
        let failure = explore(&cfg).expect_err("must catch the race");
        assert!(matches!(
            failure.violation,
            Violation::Overwrite { .. } | Violation::ReadUninit { .. }
        ));
    }

    #[test]
    fn detects_missing_publish_as_livelock() {
        // One push: the element is written but never published, so the
        // consumer spins on empty forever. (With more pushes the stale
        // tail makes the producer clobber slot 0 first, which the
        // overwrite check reports instead.)
        let cfg = McConfig {
            cap: 2,
            pushes: 1,
            pops: 1,
            start: 0,
            stale_reads: false,
            variant: Variant::MissingPublish,
        };
        let failure = explore(&cfg).expect_err("must detect no completion");
        assert_eq!(failure.violation, Violation::NoCompletion);
    }

    #[test]
    fn stale_reads_enlarge_the_state_space() {
        let mut cfg = McConfig::correct(2, 4);
        cfg.stale_reads = false;
        let exact = explore(&cfg).expect("ok");
        cfg.stale_reads = true;
        let stale = explore(&cfg).expect("ok");
        assert!(stale.states > exact.states);
    }
}
