//! The four LabStor-specific lints (see DESIGN.md §"Static analysis").
//!
//! Each lint is a pure function over a preprocessed [`SourceFile`], which
//! makes them trivially testable on in-memory fixture snippets; the
//! workspace walk in [`lint_workspace`] is just plumbing around them.
//!
//! Annotation grammar (all checked on the same line or the contiguous
//! comment block directly above the flagged line):
//!
//! - `// relaxed-ok: <reason>`        — permits `Ordering::Relaxed`
//! - `// panic-ok: <reason>`          — permits a panicking construct in a
//!   hot path
//! - `// SAFETY: <argument>`          — required before `unsafe`
//! - `// labmod-default-ok: <reason>` — permits an `impl LabMod` to keep
//!   the default no-op `state_update`/`state_repair`
//! - `// copy-ok: <reason>`           — permits a payload materialization
//!   (`.to_vec()` / buffer `.clone()`) in a zero-copy data-path module
//! - `// lock-class: <name>`          — names the registry class of a lock
//!   acquisition (required on every acquisition in the governed crates;
//!   see [`crate::lockcheck`])

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lockcheck::{lint_lock_discipline, LockClassSpec};
use crate::scan::SourceFile;

/// Lint identifiers, stable across text and JSON output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// `Ordering::Relaxed` without a `relaxed-ok` annotation.
    RelaxedOrdering,
    /// Panicking construct in a designated hot path.
    HotPathPanic,
    /// `unsafe` without a preceding `SAFETY:` comment.
    UnsafeHygiene,
    /// `impl LabMod` silently inheriting contract defaults.
    LabModContract,
    /// Payload materialization in a zero-copy data-path module.
    PayloadCopy,
    /// Lock acquisition without a (valid) `lock-class` annotation.
    LockAnnotation,
    /// Nested acquisition violating the declared lock-class order.
    LockOrder,
    /// Re-acquisition of a held non-reentrant lock class.
    LockReentry,
}

impl Lint {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::RelaxedOrdering => "relaxed-ordering",
            Lint::HotPathPanic => "hot-path-panic",
            Lint::UnsafeHygiene => "unsafe-hygiene",
            Lint::LabModContract => "labmod-contract",
            Lint::PayloadCopy => "payload-copy",
            Lint::LockAnnotation => "lock-annotation",
            Lint::LockOrder => "lock-order",
            Lint::LockReentry => "lock-reentry",
        }
    }
}

/// One `file:line` finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path (or fixture name).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: Lint,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.lint.name(),
            self.message
        )
    }
}

/// A hot-path region governed by the panic-freedom lint.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Path suffix selecting the file (workspace-relative, `/` separators).
    pub file_suffix: &'static str,
    /// Restrict to one function's body; `None` covers the whole file.
    pub function: Option<&'static str>,
}

/// Lint configuration. [`Config::labstor`] is the workspace policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Regions where panicking constructs are forbidden.
    pub hot_paths: Vec<HotPath>,
    /// Path substrings exempt from the relaxed-ordering lint.
    pub relaxed_allowlist: Vec<&'static str>,
    /// Zero-copy data-path modules governed by the payload-copy lint
    /// (path suffixes, workspace-relative with `/` separators).
    pub copy_hot_paths: Vec<&'static str>,
    /// The workspace lock-class registry: every lock acquisition in the
    /// governed paths must name one of these classes, and nested
    /// acquisitions must follow ascending rank (see `lockcheck`).
    pub lock_classes: Vec<LockClassSpec>,
    /// Path substrings selecting the crates governed by the lock lints.
    pub lock_paths: Vec<&'static str>,
}

impl Config {
    /// The LabStor-RS workspace policy: the IPC ring and queue pair are
    /// hot end to end, and so is the telemetry span ring (`record` runs
    /// inside the IPC hot path on every request); in `core::worker` only
    /// the poll loop is hot (spawn and teardown may panic).
    pub fn labstor() -> Config {
        Config {
            hot_paths: vec![
                HotPath {
                    file_suffix: "crates/ipc/src/ring.rs",
                    function: None,
                },
                HotPath {
                    file_suffix: "crates/ipc/src/queue_pair.rs",
                    function: None,
                },
                HotPath {
                    file_suffix: "crates/core/src/worker.rs",
                    function: Some("worker_loop"),
                },
                HotPath {
                    file_suffix: "crates/telemetry/src/span.rs",
                    function: None,
                },
                // Doorbells ring on every submit/complete burst and the
                // reactor parks on them; a panic here strands a waiter.
                HotPath {
                    file_suffix: "crates/ipc/src/doorbell.rs",
                    function: None,
                },
                // The pushdown interpreter runs verified-but-untrusted
                // bytecode inside kernel-side LabMods over raw handle
                // slices; a panic here takes down a worker on behalf of
                // a tenant-supplied program.
                HotPath {
                    file_suffix: "crates/pushdown/src/interp.rs",
                    function: None,
                },
            ],
            // The simulator's virtual-clock counters are single-threaded
            // bookkeeping behind &mut self; auditing them adds noise, not
            // signal. Everything else must justify each Relaxed.
            relaxed_allowlist: vec!["crates/sim/src/stats.rs"],
            // The zero-copy data path: every stage that handles payload
            // bytes between the client's pool buffer and the device model.
            copy_hot_paths: vec![
                "crates/ipc/src/buf.rs",
                "crates/kernel/src/page_cache.rs",
                "crates/mods/src/lru.rs",
                "crates/mods/src/arc_cache.rs",
                "crates/mods/src/cache_common.rs",
                "crates/mods/src/labfs.rs",
                "crates/mods/src/labkvs.rs",
                "crates/mods/src/compress.rs",
                "crates/mods/src/drivers.rs",
                "crates/pushdown/src/interp.rs",
                "crates/ipc/src/inline.rs",
            ],
            // The lock-class registry (DESIGN.md §7 "Lock classes &
            // ordering"). Ranks are acquired ascending; gaps leave room
            // for new classes without renumbering. The order encodes the
            // real nesting facts of the workspace: the Runtime rebalance
            // holds its coordinator and worker-set locks while touching
            // per-worker queues and rebalance state; the module stack
            // holds `by_mount` while updating `by_id`; the filesystem
            // appends to the journal under the inode table; the page
            // cache may consult the pool's debug tracker under a shard;
            // and ShMem's id counter is held while the region map and
            // grant sets are updated.
            lock_classes: vec![
                LockClassSpec::lock("runtime.coord", 10),
                LockClassSpec::lock("runtime.workers", 20),
                LockClassSpec::lock("runtime.state", 30),
                LockClassSpec::lock("runtime.policy", 32),
                LockClassSpec::lock("runtime.admin", 34),
                LockClassSpec::lock("qos.tenants", 36),
                LockClassSpec::lock("qos.bucket", 38),
                LockClassSpec::lock("registry.factories", 40),
                LockClassSpec::lock("registry.repos", 42),
                LockClassSpec::lock("registry.instances", 44),
                LockClassSpec::lock("registry.upgrades", 46),
                LockClassSpec::lock("stack.mounts", 48),
                LockClassSpec::lock("stack.ids", 49),
                LockClassSpec::lock("worker.queues", 50),
                LockClassSpec::lock("vfs.mounts", 54),
                LockClassSpec::lock("vfs.table", 56),
                LockClassSpec::lock("ipc.conns", 58),
                LockClassSpec::lock("ipc.qps", 59),
                LockClassSpec::lock("fs.inodes", 60),
                LockClassSpec::lock("fs.journal", 62),
                LockClassSpec::lock("block.sched", 64),
                LockClassSpec::lock("block.stash", 66),
                LockClassSpec::lock("engines.staged", 68),
                LockClassSpec::lock("pagecache.shard", 70),
                LockClassSpec::lock("shmem.ids", 72),
                LockClassSpec::lock("shmem.regions", 74),
                LockClassSpec::lock("shmem.grants", 76),
                LockClassSpec::ordered("shmem.chunk", 78),
                LockClassSpec::lock("sim.queue", 80),
                LockClassSpec::ordered("sim.chunk", 82),
                // Doorbell registration slots and the park/notify
                // handshake: rung from producers that may hold any of the
                // classes above (rebalance rings under runtime.workers), so
                // they rank just below the leaf pool.tracker. A ring holds
                // the slot (86) while taking the bell mutex (88); nothing
                // is acquired while holding the bell.
                LockClassSpec::lock("ipc.bellslot", 86),
                LockClassSpec::lock("ipc.bell", 88),
                LockClassSpec::lock("pool.tracker", 90),
                // Virtual-time Resources: reservations return a time
                // window, not a guard, so they participate in annotation
                // coverage but never in hold tracking.
                LockClassSpec::resource("pagecache.maplock"),
                LockClassSpec::resource("fs.meta"),
                LockClassSpec::resource("fs.dir"),
                LockClassSpec::resource("fs.alloc"),
                LockClassSpec::resource("sim.channel"),
            ],
            lock_paths: vec![
                "crates/kernel/src/",
                "crates/ipc/src/",
                "crates/core/src/",
                "crates/sim/src/",
                "crates/qos/src/",
            ],
        }
    }
}

/// Run every lint over one preprocessed file.
pub fn lint_file(cfg: &Config, file: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lint_relaxed_ordering(cfg, file, &mut diags);
    lint_hot_path_panic(cfg, file, &mut diags);
    lint_unsafe_hygiene(file, &mut diags);
    lint_labmod_contract(file, &mut diags);
    lint_payload_copy(cfg, file, &mut diags);
    lint_lock_discipline(cfg, file, &mut diags);
    diags.sort_by(|a, b| (a.line, a.lint.name()).cmp(&(b.line, b.lint.name())));
    diags
}

/// Convenience: preprocess + lint an in-memory snippet (fixture tests).
pub fn lint_source(cfg: &Config, name: &str, text: &str) -> Vec<Diagnostic> {
    lint_file(cfg, &SourceFile::parse(name, text))
}

/// Lint 1: every `Ordering::Relaxed` outside the allowlist and outside
/// test code needs a `relaxed-ok` justification.
fn lint_relaxed_ordering(cfg: &Config, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if cfg.relaxed_allowlist.iter().any(|p| file.name.contains(p)) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.code.contains("Ordering::Relaxed") {
            continue;
        }
        if !file.annotated(idx, "relaxed-ok:") {
            diags.push(Diagnostic {
                file: file.name.clone(),
                line: idx + 1,
                lint: Lint::RelaxedOrdering,
                message: "Ordering::Relaxed without `// relaxed-ok: <reason>` \
                          (justify why no synchronization is needed, or use \
                          Acquire/Release)"
                    .into(),
            });
        }
    }
}

/// Panicking constructs searched for by lint 2, as code substrings.
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Lint 2: no panicking constructs (including `buf[i]` indexing, which
/// panics out of bounds) in hot-path regions, unless annotated `panic-ok`.
fn lint_hot_path_panic(cfg: &Config, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for hp in &cfg.hot_paths {
        if !file.name.ends_with(hp.file_suffix) {
            continue;
        }
        // A named function may occur several times (impl blocks for
        // different types reusing a method name): lint every extent.
        let extents = match hp.function {
            Some(name) => file.fn_extents(name),
            None => vec![(0, file.lines.len().saturating_sub(1))],
        };
        for idx in extents.into_iter().flat_map(|(s, e)| s..=e) {
            let line = &file.lines[idx];
            let trimmed = line.code.trim_start();
            if line.in_test || trimmed.starts_with('#') {
                continue; // test code; attributes like #[allow(...)]
            }
            let mut hits: Vec<&str> = PANIC_PATTERNS
                .iter()
                .copied()
                .filter(|pat| line.code.contains(pat))
                .collect();
            if has_index_expression(&line.code) {
                hits.push("indexing");
            }
            if hits.is_empty() || file.annotated(idx, "panic-ok:") {
                continue;
            }
            diags.push(Diagnostic {
                file: file.name.clone(),
                line: idx + 1,
                lint: Lint::HotPathPanic,
                message: format!(
                    "{} in hot path without `// panic-ok: <reason>`",
                    hits.join(" and ")
                ),
            });
        }
    }
}

/// True if the line contains an index/slice expression `expr[…]`: a `[`
/// whose previous non-space character ends an expression. Array literals,
/// types, and attributes all have a non-expression character (or nothing)
/// before their `[`.
fn has_index_expression(code: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' {
            continue;
        }
        let prev = chars[..i].iter().rev().find(|c| !c.is_whitespace());
        if matches!(prev, Some(&p) if p.is_alphanumeric() || p == '_' || p == ')' || p == ']') {
            return true;
        }
    }
    false
}

/// Lint 3: every `unsafe` keyword needs a `SAFETY:` comment on the same
/// line or in the comment block directly above. Applies everywhere,
/// including tests — unsafety does not become self-evident in test code.
fn lint_unsafe_hygiene(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if !file.annotated(idx, "SAFETY:") {
            diags.push(Diagnostic {
                file: file.name.clone(),
                line: idx + 1,
                lint: Lint::UnsafeHygiene,
                message: "`unsafe` without a preceding `// SAFETY: <argument>` comment".into(),
            });
        }
    }
}

/// True if `word` appears in `code` delimited by non-identifier chars.
fn has_word(code: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let abs = from + pos;
        let before = code[..abs].chars().next_back();
        let after = code[abs + word.len()..].chars().next();
        let ident = |c: Option<char>| matches!(c, Some(c) if c.is_alphanumeric() || c == '_');
        if !ident(before) && !ident(after) {
            return true;
        }
        from = abs + word.len();
    }
    false
}

/// Lint 4: an `impl LabMod for` block outside tests that leaves either
/// `state_update` or `state_repair` to the trait's no-op default must say
/// so with `labmod-default-ok` — crash-recovery and live-upgrade coverage
/// is an explicit per-module decision (paper §III-C platform contract).
fn lint_labmod_contract(file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    for idx in 0..file.lines.len() {
        let line = &file.lines[idx];
        if line.in_test || !line.code.contains("impl LabMod for") {
            continue;
        }
        let Some((start, end)) = file.item_extent(idx) else {
            continue;
        };
        let body = &file.lines[start..=end];
        let missing: Vec<&str> = ["state_update", "state_repair"]
            .into_iter()
            .filter(|f| !body.iter().any(|l| l.code.contains(&format!("fn {f}"))))
            .collect();
        if missing.is_empty() || file.annotated(idx, "labmod-default-ok:") {
            continue;
        }
        diags.push(Diagnostic {
            file: file.name.clone(),
            line: idx + 1,
            lint: Lint::LabModContract,
            message: format!(
                "impl LabMod inherits default no-op {} — implement or annotate \
                 `// labmod-default-ok: <reason>`",
                missing.join(" and ")
            ),
        });
    }
}

/// Receivers whose `.clone()` duplicates payload bytes (by workspace
/// convention these names hold `Vec<u8>` payloads; `BufHandle` bindings
/// are named `buf`/`h` and clone by refcount bump).
const PAYLOAD_RECEIVERS: [&str; 5] = ["data", "value", "bytes", "stored", "payload"];

/// Lint 5: in the zero-copy data-path modules, every payload
/// materialization — `.to_vec()`, or `.clone()` on a payload-named
/// receiver — must carry a `copy-ok` justification. This is what keeps
/// the read-hit path copy-free as the modules evolve: a new `Vec`
/// round-trip cannot land without either a counted, annotated copy or a
/// lint failure.
fn lint_payload_copy(cfg: &Config, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !cfg.copy_hot_paths.iter().any(|p| file.name.ends_with(p)) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut hits: Vec<String> = Vec::new();
        if line.code.contains(".to_vec()") {
            hits.push(".to_vec()".to_string());
        }
        for recv in clone_receivers(&line.code) {
            if PAYLOAD_RECEIVERS.contains(&recv.as_str()) {
                hits.push(format!("{recv}.clone()"));
            }
        }
        if hits.is_empty() || file.annotated(idx, "copy-ok:") {
            continue;
        }
        diags.push(Diagnostic {
            file: file.name.clone(),
            line: idx + 1,
            lint: Lint::PayloadCopy,
            message: format!(
                "{} copies payload bytes in a zero-copy data-path module — \
                 pass the BufHandle (or annotate `// copy-ok: <reason>` and \
                 count it via note_payload_copy)",
                hits.join(" and ")
            ),
        });
    }
}

/// The identifiers that appear as the receiver of a `.clone()` call on
/// this line (the identifier token directly before each `.clone()`).
fn clone_receivers(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(".clone()") {
        let abs = from + pos;
        let recv: String = code[..abs]
            .chars()
            .rev()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if !recv.is_empty() {
            out.push(recv);
        }
        from = abs + ".clone()".len();
    }
    out
}

/// Collect all workspace `.rs` files under `root` (skipping `target/` and
/// dot-directories) and lint them. Paths in diagnostics are
/// workspace-relative with `/` separators.
pub fn lint_workspace(cfg: &Config, root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        diags.extend(lint_file(cfg, &SourceFile::parse(&rel, &text)));
    }
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render diagnostics as `file:line: [lint] message`, one per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Render diagnostics as a JSON array (machine-readable mode).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.lint.name(),
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
