//! Deterministic interleaving model checker for the buffer-pool
//! refcount-release protocol.
//!
//! `BufHandle` (crates/ipc/src/buf.rs) frees its slot with the Arc
//! protocol: `clone` is a `fetch_add`, `drop` is a `fetch_sub` whose
//! *return value* decides the free — the slot is recycled iff the
//! decrement observed `1`, i.e. this drop destroyed the last handle.
//! That decision must be a single atomic read-modify-write: splitting it
//! into a load and a store re-introduces the classic refcounting races.
//!
//! This checker decomposes two threads' clone/use/release sequences into
//! atomic steps and explores every interleaving exhaustively (visited-set
//! BFS over the joint state space, same technique as [`crate::mc`]).
//! Planted-bug variants split the release decision the two possible wrong
//! ways and must be caught:
//!
//! - [`RcVariant::LoadThenSub`] — decide on a *pre*-decrement load, then
//!   decrement separately. Two racing drops can both observe `2`, so
//!   nobody frees: the slot leaks.
//! - [`RcVariant::SubThenLoad`] — decrement, then decide on a separate
//!   load of the counter. Two racing drops can both observe `0` after
//!   both decrements land: the slot is freed twice.
//!
//! Invariants: no use of a freed slot, no double free, and at quiescence
//! the slot is freed exactly once with a zero refcount.

use std::collections::{HashMap, HashSet, VecDeque};

/// Release-protocol variant under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcVariant {
    /// The shipped protocol: one atomic `fetch_sub`, free iff it
    /// returned 1.
    Correct,
    /// Bug: load the counter, decide, then decrement — racing drops both
    /// see a count above 1 and the slot leaks.
    LoadThenSub,
    /// Bug: decrement, then load and free on zero — racing drops both
    /// see zero and the slot is freed twice.
    SubThenLoad,
}

/// Model-checker configuration: two threads, each starting with one
/// handle to the same slot, cloning it `clones` times before releasing
/// everything it owns (each handle is used once before its release).
#[derive(Debug, Clone, Copy)]
pub struct RcConfig {
    /// Clones each thread performs before releasing (0 = plain drop race).
    pub clones: u8,
    /// Release protocol under test.
    pub variant: RcVariant,
}

impl RcConfig {
    /// The shipped protocol at the given clone depth.
    pub fn correct(clones: u8) -> RcConfig {
        RcConfig {
            clones,
            variant: RcVariant::Correct,
        }
    }
}

/// Safety violation detected mid-exploration or at quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcViolation {
    /// A thread used a handle whose slot was already recycled.
    UseAfterFree { thread: usize },
    /// The slot was returned to the free list twice.
    DoubleFree { thread: usize },
    /// All handles released but the slot was never freed.
    Leak,
    /// Quiescent refcount is not zero (accounting drift).
    Residue { refs: u8 },
}

/// A violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct RcFailure {
    /// What went wrong.
    pub violation: RcViolation,
    /// Step labels from the initial state to the violating step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for RcFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct RcReport {
    /// Distinct joint states reached.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Number of distinct quiescent states.
    pub terminals: usize,
}

/// Per-thread model state. `pc` encodes where in the clone/use/release
/// cycle the thread is: 0 = choose next action, 1 = release step A done
/// (split variants only, `observed` holds the stale view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Thread {
    /// Handles currently owned.
    owned: u8,
    /// Clones performed so far.
    cloned: u8,
    /// 0 = choose (clone / use+begin release / done); 1 = finish a split
    /// release.
    pc: u8,
    /// Counter value observed by a split release's first step.
    observed: u8,
}

/// Joint state of the two-thread system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// The shared atomic refcount.
    refs: u8,
    /// True once the slot has been returned to the free list.
    freed: bool,
    threads: [Thread; 2],
}

/// Exhaustively explore all interleavings. `Ok` carries statistics;
/// `Err` carries the first violation found plus its schedule.
pub fn explore_rc(cfg: &RcConfig) -> Result<RcReport, RcFailure> {
    let init = State {
        refs: 2,
        freed: false,
        threads: [Thread {
            owned: 1,
            cloned: 0,
            pc: 0,
            observed: 0,
        }; 2],
    };

    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    while let Some(state) = queue.pop_front() {
        let done = |t: &Thread| t.pc == 0 && t.owned == 0 && t.cloned == cfg.clones;
        if state.threads.iter().all(done) {
            terminals += 1;
            if !state.freed {
                return Err(fail(RcViolation::Leak, &state, None, &parent));
            }
            if state.refs != 0 {
                return Err(fail(
                    RcViolation::Residue { refs: state.refs },
                    &state,
                    None,
                    &parent,
                ));
            }
            continue;
        }
        for tid in 0..2 {
            if done(&state.threads[tid]) {
                continue;
            }
            match thread_step(cfg, &state, tid) {
                Ok(successors) => {
                    for (next, label) in successors {
                        transitions += 1;
                        if visited.insert(next) {
                            parent.insert(next, (state, label));
                            queue.push_back(next);
                        }
                    }
                }
                Err((violation, label)) => {
                    return Err(fail(violation, &state, Some(label), &parent));
                }
            }
        }
    }

    Ok(RcReport {
        states: visited.len(),
        transitions,
        terminals,
    })
}

/// All successor states of one atomic step by thread `tid`.
#[allow(clippy::type_complexity)]
fn thread_step(
    cfg: &RcConfig,
    s: &State,
    tid: usize,
) -> Result<Vec<(State, String)>, (RcViolation, String)> {
    let t = s.threads[tid];
    let mut out = Vec::new();
    if t.pc == 0 {
        if t.cloned < cfg.clones {
            // clone: one atomic fetch_add. Cloning requires a live handle
            // — model the use-after-free a clone of a freed slot would be.
            if s.freed {
                return Err((
                    RcViolation::UseAfterFree { thread: tid },
                    format!("t{tid}: clone on freed slot"),
                ));
            }
            let mut n = *s;
            n.refs = s.refs.wrapping_add(1);
            n.threads[tid].cloned = t.cloned + 1;
            n.threads[tid].owned = t.owned + 1;
            out.push((n, format!("t{tid}: clone (refs -> {})", n.refs)));
        } else if t.owned > 0 {
            // use the handle's bytes, then begin its release
            if s.freed {
                return Err((
                    RcViolation::UseAfterFree { thread: tid },
                    format!("t{tid}: read through freed slot"),
                ));
            }
            match cfg.variant {
                RcVariant::Correct => {
                    // one atomic fetch_sub; its return value decides
                    let prev = s.refs;
                    let mut n = *s;
                    n.refs = prev.wrapping_sub(1);
                    n.threads[tid].owned = t.owned - 1;
                    let mut label = format!("t{tid}: use + fetch_sub (prev={prev})");
                    if prev == 1 {
                        if s.freed {
                            return Err((RcViolation::DoubleFree { thread: tid }, label));
                        }
                        n.freed = true;
                        label.push_str(", free");
                    }
                    out.push((n, label));
                }
                RcVariant::LoadThenSub => {
                    // bug step A: decide on a pre-decrement load
                    let mut n = *s;
                    n.threads[tid].observed = s.refs;
                    n.threads[tid].pc = 1;
                    out.push((n, format!("t{tid}: use + load (refs={})", s.refs)));
                }
                RcVariant::SubThenLoad => {
                    // bug step A: decrement, discard the return value
                    let mut n = *s;
                    n.refs = s.refs.wrapping_sub(1);
                    n.threads[tid].pc = 1;
                    out.push((n, format!("t{tid}: use + fetch_sub (refs -> {})", n.refs)));
                }
            }
        }
    } else {
        // pc == 1: second half of a split release
        match cfg.variant {
            RcVariant::LoadThenSub => {
                let mut n = *s;
                n.refs = s.refs.wrapping_sub(1);
                n.threads[tid].owned = t.owned - 1;
                n.threads[tid].pc = 0;
                let mut label = format!("t{tid}: fetch_sub (observed was {})", t.observed);
                if t.observed == 1 {
                    if s.freed {
                        return Err((RcViolation::DoubleFree { thread: tid }, label));
                    }
                    n.freed = true;
                    label.push_str(", free");
                }
                out.push((n, label));
            }
            RcVariant::SubThenLoad => {
                let observed = s.refs;
                let mut n = *s;
                n.threads[tid].owned = t.owned - 1;
                n.threads[tid].pc = 0;
                let mut label = format!("t{tid}: load (refs={observed})");
                if observed == 0 {
                    if s.freed {
                        return Err((RcViolation::DoubleFree { thread: tid }, label));
                    }
                    n.freed = true;
                    label.push_str(", free");
                }
                out.push((n, label));
            }
            RcVariant::Correct => unreachable!("correct release is a single step"),
        }
    }
    Ok(out)
}

/// Reconstruct the schedule from the parent map and build a failure.
fn fail(
    violation: RcViolation,
    at: &State,
    last_label: Option<String>,
    parent: &HashMap<State, (State, String)>,
) -> RcFailure {
    let mut trace = Vec::new();
    if let Some(label) = last_label {
        trace.push(label);
    }
    let mut cur = *at;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    RcFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_frees_exactly_once() {
        for clones in 0..=3 {
            let report = explore_rc(&RcConfig::correct(clones)).expect("no violations");
            assert!(report.terminals >= 1, "clones={clones} must quiesce");
        }
    }

    #[test]
    fn correct_protocol_exploration_is_nontrivial() {
        // The atomic fetch_sub release keeps the space small (that is the
        // point of the protocol); clones still interleave combinatorially.
        let report = explore_rc(&RcConfig::correct(3)).expect("ok");
        assert!(report.states > 30, "got {} states", report.states);
    }

    #[test]
    fn load_then_sub_leaks() {
        let cfg = RcConfig {
            clones: 0,
            variant: RcVariant::LoadThenSub,
        };
        let failure = explore_rc(&cfg).expect_err("must catch the leak");
        assert_eq!(failure.violation, RcViolation::Leak);
    }

    #[test]
    fn sub_then_load_double_frees() {
        let cfg = RcConfig {
            clones: 0,
            variant: RcVariant::SubThenLoad,
        };
        let failure = explore_rc(&cfg).expect_err("must catch the double free");
        assert!(
            matches!(failure.violation, RcViolation::DoubleFree { .. }),
            "expected DoubleFree, got {:?}",
            failure.violation
        );
        assert!(!failure.trace.is_empty(), "counterexample has a schedule");
    }

    #[test]
    fn sub_then_load_still_fails_with_clones() {
        let cfg = RcConfig {
            clones: 2,
            variant: RcVariant::SubThenLoad,
        };
        explore_rc(&cfg).expect_err("clones only widen the race window");
    }
}
