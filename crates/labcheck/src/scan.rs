//! Source preprocessing for the lint pass.
//!
//! The lints are line-oriented, but raw source lines are full of traps: a
//! pattern like `Ordering::Relaxed` may appear inside a string literal or a
//! doc comment, and an annotation like `// relaxed-ok:` must only count
//! when it really is a comment. This module does one conservative
//! tokenizer-lite pass per file and hands the lints two parallel views of
//! every line:
//!
//! - `code`: the line with comments removed and string/char literal
//!   *bodies* blanked (quotes kept, contents dropped), so substring
//!   matching on code never fires inside literals;
//! - `comment`: the concatenated comment text of the line (line comments,
//!   doc comments, and the slice of any block comment crossing the line),
//!   which is where annotations live.
//!
//! It also marks which lines sit inside a `#[cfg(test)]` item, so lints
//! that only govern shipping code can skip test modules.

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with comments stripped and literal bodies blanked.
    pub code: String,
    /// Comment text on this line (including the `//` / `/*` markers).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A preprocessed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Display path (workspace-relative for real files, fixture name for
    /// in-memory snippets).
    pub name: String,
    /// Preprocessed lines, index 0 = line 1.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Preprocess `text` into per-line code/comment views.
    pub fn parse(name: &str, text: &str) -> SourceFile {
        let mut lines = split_literals(text);
        mark_test_regions(&mut lines);
        SourceFile {
            name: name.to_string(),
            lines,
        }
    }

    /// True when line `idx` (0-based) is covered by `marker`: a comment on
    /// the same line, on an earlier line of the same statement, or in the
    /// contiguous comment-only block directly above the statement (doc
    /// comments included). A blank line ends the block.
    ///
    /// Statement awareness matters because rustfmt freely rewraps long
    /// statements: an annotation written against one physical line must
    /// keep covering the code after the formatter splits it. A line is
    /// taken to start a statement when the code line above it is blank,
    /// comment-only, or ends with `;`, `{` or `}`.
    pub fn annotated(&self, idx: usize, marker: &str) -> bool {
        if self.lines[idx].comment.contains(marker) {
            return true;
        }
        // Walk back to the first line of the enclosing statement, honoring
        // annotations on any earlier line of it along the way.
        let mut start = idx;
        while start > 0 {
            let prev = self.lines[start - 1].code.trim();
            if prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}')
            {
                break;
            }
            start -= 1;
            if self.lines[start].comment.contains(marker) {
                return true;
            }
        }
        // Contiguous comment-only block directly above the statement.
        let mut i = start;
        while i > 0 {
            i -= 1;
            let line = &self.lines[i];
            if !line.code.trim().is_empty() {
                return false;
            }
            if line.comment.is_empty() {
                return false;
            }
            if line.comment.contains(marker) {
                return true;
            }
        }
        false
    }

    /// The value of a `<marker> <value>` annotation covering line `idx`,
    /// using the same coverage walk as [`SourceFile::annotated`]: same
    /// line, an earlier line of the same statement, or the contiguous
    /// comment block directly above. The value is the first
    /// whitespace-delimited token after the marker (e.g.
    /// `// lock-class: pagecache.shard` yields `pagecache.shard`).
    pub fn annotation_value(&self, idx: usize, marker: &str) -> Option<String> {
        let extract = |comment: &str| -> Option<String> {
            let pos = comment.find(marker)?;
            let rest = comment[pos + marker.len()..].trim_start();
            let token: String = rest.chars().take_while(|c| !c.is_whitespace()).collect();
            (!token.is_empty()).then_some(token)
        };
        if let Some(v) = extract(&self.lines[idx].comment) {
            return Some(v);
        }
        let mut start = idx;
        while start > 0 {
            let prev = self.lines[start - 1].code.trim();
            if prev.is_empty() || prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}')
            {
                break;
            }
            start -= 1;
            if let Some(v) = extract(&self.lines[start].comment) {
                return Some(v);
            }
        }
        let mut i = start;
        while i > 0 {
            i -= 1;
            let line = &self.lines[i];
            if !line.code.trim().is_empty() || line.comment.is_empty() {
                return None;
            }
            if let Some(v) = extract(&line.comment) {
                return Some(v);
            }
        }
        None
    }

    /// Extent of the item whose header is at line `start` (0-based): scans
    /// forward for the first `{` and returns the inclusive line range up
    /// to its matching `}`. Returns `None` if a `;` ends the item before
    /// any brace opens (e.g. a declaration) or the braces never close.
    pub fn item_extent(&self, start: usize) -> Option<(usize, usize)> {
        let mut depth: i64 = 0;
        let mut opened = false;
        for (i, line) in self.lines.iter().enumerate().skip(start) {
            for ch in line.code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            return Some((start, i));
                        }
                    }
                    ';' if !opened && depth == 0 => return None,
                    _ => {}
                }
            }
        }
        None
    }

    /// Line ranges (inclusive, 0-based) of the bodies of *every*
    /// occurrence of the named function. A file may define the same method
    /// name in several impl blocks (`LruMap::len` vs `PageCache::len`);
    /// extent-aware lints must attribute each body to its own occurrence,
    /// not to whichever header happens to appear first.
    pub fn fn_extents(&self, fn_name: &str) -> Vec<(usize, usize)> {
        let needle = format!("fn {fn_name}");
        let mut out = Vec::new();
        for (i, l) in self.lines.iter().enumerate() {
            let matched = match l.code.find(&needle) {
                // Require a non-identifier char after the name so
                // `fn worker_loop` does not match `fn worker_loop_ext`.
                Some(pos) => {
                    let rest = &l.code[pos + needle.len()..];
                    !rest.starts_with(|c: char| c.is_alphanumeric() || c == '_')
                }
                None => false,
            };
            if matched {
                if let Some(extent) = self.item_extent(i) {
                    out.push(extent);
                }
            }
        }
        out
    }

    /// Line range of the first occurrence of the named function (see
    /// [`SourceFile::fn_extents`] for all occurrences).
    pub fn fn_extent(&self, fn_name: &str) -> Option<(usize, usize)> {
        self.fn_extents(fn_name).into_iter().next()
    }

    /// Every function item in the file: `(name, start, end)` with the
    /// extent of each body. Declarations without a body (trait methods
    /// ending in `;`) are skipped.
    pub fn fn_items(&self) -> Vec<(String, usize, usize)> {
        let mut out = Vec::new();
        for (i, l) in self.lines.iter().enumerate() {
            let mut from = 0;
            while let Some(pos) = l.code[from..].find("fn ") {
                let abs = from + pos;
                from = abs + 3;
                // `fn` must be a standalone keyword (not `magic_fn `).
                let before = l.code[..abs].chars().next_back();
                if matches!(before, Some(c) if c.is_alphanumeric() || c == '_') {
                    continue;
                }
                let name: String = l.code[abs + 3..]
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if name.is_empty() {
                    continue;
                }
                if let Some((start, end)) = self.item_extent(i) {
                    out.push((name, start, end));
                }
                break; // one fn header per line in rustfmt'd code
            }
        }
        out
    }
}

/// Split `text` into lines while separating code from comments and
/// blanking string/char literal bodies.
fn split_literals(text: &str) -> Vec<Line> {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        /// Block comment with nesting depth.
        BlockComment(u32),
        /// String literal; `raw_hashes` is `Some(n)` for `r#…#"` forms.
        Str {
            raw_hashes: Option<u32>,
        },
    }

    let chars: Vec<char> = text.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            flush_line!();
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    comment.push_str("//");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '"' {
                    // Plain or byte string; raw strings are caught at the
                    // `r` below before the quote is reached.
                    code.push('"');
                    mode = Mode::Str { raw_hashes: None };
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident(chars.get(i.wrapping_sub(1))) {
                    // Possible raw/byte string prefix: r", br", r#", …
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && (c == 'r' || j > i + 1) {
                        code.push('"');
                        mode = Mode::Str {
                            raw_hashes: Some(hashes),
                        };
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime/label: a char literal is
                    // `'\…'` or `'x'`; anything else is a lifetime tick.
                    if next == Some('\\') {
                        code.push_str("''");
                        i += 3; // opening quote, backslash, escaped char
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        i += 1; // closing quote
                    } else if chars.get(i + 2) == Some(&'\'') {
                        code.push_str("''");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                comment.push(c);
                i += 1;
            }
            Mode::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    comment.push_str("*/");
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            Mode::Str { raw_hashes } => match raw_hashes {
                None => {
                    if c == '\\' {
                        i += 2; // skip escaped char (incl. \" and \\)
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Some(n) => {
                    if c == '"' && (1..=n as usize).all(|k| chars.get(i + k) == Some(&'#')) {
                        code.push('"');
                        mode = Mode::Code;
                        i += 1 + n as usize;
                    } else {
                        i += 1;
                    }
                }
            },
        }
    }
    flush_line!();
    lines
}

fn is_ident(c: Option<&char>) -> bool {
    matches!(c, Some(c) if c.is_alphanumeric() || *c == '_')
}

/// Mark lines inside `#[cfg(test)]` items. The attribute arms a pending
/// flag; the next `{` opens a test region that closes with its matching
/// `}`. A `;` at the attribute's depth cancels the pending flag (the
/// attribute decorated a braceless item).
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending: Option<i64> = None;
    let mut regions: Vec<i64> = Vec::new();
    for line in lines.iter_mut() {
        let mut in_test = !regions.is_empty();
        if line.code.contains("cfg(test)") || line.code.contains("cfg(all(test") {
            pending = Some(depth);
        }
        for ch in line.code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending.take().is_some() {
                        regions.push(depth);
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                ';' if pending == Some(depth) => {
                    pending = None;
                }
                _ => {}
            }
            if !regions.is_empty() {
                in_test = true;
            }
        }
        line.in_test = in_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked() {
        let f = SourceFile::parse("t.rs", "let x = \"Ordering::Relaxed // no\";");
        assert_eq!(f.lines[0].code, "let x = \"\";");
        assert!(f.lines[0].comment.is_empty());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = "let j = r#\"{ \"k\": \"unsafe { }\" }\"#; let b = b\"//x\";";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines[0].code, "let j = \"\"; let b = b\"\";");
    }

    #[test]
    fn comments_are_captured() {
        let f = SourceFile::parse("t.rs", "foo(); // relaxed-ok: counter only\nbar();");
        assert_eq!(f.lines[0].code, "foo(); ");
        assert!(f.lines[0].comment.contains("relaxed-ok:"));
        assert_eq!(f.lines[1].code, "bar();");
    }

    #[test]
    fn block_comments_span_lines() {
        let f = SourceFile::parse("t.rs", "a(); /* start\n unsafe middle\n end */ b();");
        assert_eq!(f.lines[0].code, "a(); ");
        assert!(f.lines[1].code.trim().is_empty());
        assert!(f.lines[1].comment.contains("unsafe middle"));
        assert_eq!(f.lines[2].code.trim(), "b();");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = SourceFile::parse(
            "t.rs",
            "fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }",
        );
        let code = &f.lines[0].code;
        assert!(code.contains("<'a>"), "lifetime kept: {code}");
        assert!(code.contains("''"), "char literal blanked: {code}");
        // The quote inside the char literal must not open a string.
        assert!(!code.contains('"'), "no stray quote: {code}");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn more() {}";
        let f = SourceFile::parse("t.rs", src);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_braceless_item_is_cancelled() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn f() { body(); }";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.lines.iter().all(|l| !l.in_test));
    }

    #[test]
    fn annotation_same_line_and_block_above() {
        let src =
            "x(); // panic-ok: bounded\n// SAFETY: exclusive owner\n// more words\ny();\n\nz();";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.annotated(0, "panic-ok:"));
        assert!(f.annotated(3, "SAFETY:"));
        // Blank line breaks the comment block.
        assert!(!f.annotated(5, "SAFETY:"));
    }

    #[test]
    fn annotation_covers_rustfmt_split_statements() {
        // An annotation above (or on the first line of) a statement keeps
        // covering it after rustfmt rewraps the statement across lines.
        let src = "// relaxed-ok: counter\nlet x = a\n    .load(R);\nb.store(\n    1,\n    R,\n);";
        let f = SourceFile::parse("t.rs", src);
        assert!(f.annotated(2, "relaxed-ok:"), "block above split statement");
        // The second statement starts after the `;` — not covered.
        assert!(!f.annotated(5, "relaxed-ok:"));
        // Trailing comment on an earlier line of the same statement.
        let src2 = "c.store( // relaxed-ok: counter\n    1,\n    R,\n);";
        let f2 = SourceFile::parse("t.rs", src2);
        assert!(f2.annotated(2, "relaxed-ok:"));
    }

    #[test]
    fn fn_extent_brace_matching() {
        let src = "fn a() {\n  if x { y(); }\n}\nfn ab() {\n  z();\n}";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.fn_extent("a"), Some((0, 2)));
        assert_eq!(f.fn_extent("ab"), Some((3, 5)));
        assert_eq!(f.fn_extent("missing"), None);
    }
}
