//! Deterministic interleaving model checker for the doorbell park/wake
//! protocol (`labstor_ipc::doorbell`).
//!
//! The reactor runtime lives or dies by one liveness property: **a
//! producer's ring after an envelope is queued must eventually wake a
//! consumer that decided to park**. The shipped protocol earns it with
//! an epoch word and a capture/check/re-check dance:
//!
//! * Producer: push the burst, then `ring()` — bump the epoch, then
//!   notify (under the bell mutex) if a waiter is registered. One ring
//!   per burst (the PR 3 one-doorbell-per-burst contract).
//! * Consumer: capture the epoch **before** scanning; scan; if idle,
//!   register as a waiter and — *under the bell mutex* — re-check that
//!   the epoch still equals the capture before sleeping. A ring that
//!   landed anywhere between capture and park moves the epoch, the
//!   re-check sees it, and the consumer retries instead of sleeping.
//!
//! This checker exhaustively explores producer/consumer interleavings
//! (visited-set BFS, same technique as [`crate::mc`] / [`crate::mc_lock`])
//! of that protocol and two planted bugs, with **no timeout in the
//! model**: the real `wait_past` carries a safety-net timeout, but the
//! protocol must not need it.
//!
//! - [`DoorbellVariant::Correct`] — the shipped protocol. Every schedule
//!   drains every burst; no reachable state has the consumer parked with
//!   work queued and no ring in flight.
//! - [`DoorbellVariant::ParkWithoutRecheck`] — the classic lost wakeup:
//!   the consumer parks after its idle scan *without* re-checking the
//!   epoch under the mutex. A ring between "check empty" and "park"
//!   already notified nobody, so the consumer sleeps on a non-empty
//!   queue forever.
//! - [`DoorbellVariant::EdgeOnlyRing`] — ring only on the producer's
//!   *believed* empty→non-empty edge: read the queue depth, push, and
//!   skip the ring if the pre-push read was non-zero. The belief is
//!   stale the moment a consumer pops concurrently, so a push can land
//!   on a queue the consumer just drained — no edge observed, no ring,
//!   consumer parks forever. (This is why the real producers ring
//!   unconditionally per successful burst.)

use std::collections::{HashMap, HashSet, VecDeque};

/// Park/wake protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorbellVariant {
    /// The shipped protocol: capture before scan, re-check under the
    /// mutex before sleeping, unconditional ring per burst.
    Correct,
    /// Planted bug: park after the idle scan without re-checking the
    /// epoch (ring between "check empty" and "park" is lost).
    ParkWithoutRecheck,
    /// Planted bug: ring only when the producer's pre-push depth read
    /// was zero — a stale emptiness belief skips the wake.
    EdgeOnlyRing,
}

/// Model-checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct DoorbellConfig {
    /// Number of producer bursts.
    pub bursts: u8,
    /// Envelopes pushed per burst (one ring per burst regardless).
    pub batch: u8,
    /// Protocol under test.
    pub variant: DoorbellVariant,
}

impl DoorbellConfig {
    /// The shipped protocol at a given shape.
    pub fn correct(bursts: u8, batch: u8) -> Self {
        DoorbellConfig {
            bursts,
            batch,
            variant: DoorbellVariant::Correct,
        }
    }
}

/// Liveness violation detected at a stuck state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoorbellViolation {
    /// The consumer is parked, envelopes are queued, and no ring is in
    /// flight: nothing will ever wake it (the model has no timeout).
    LostWakeup {
        /// Envelopes stranded in the queue.
        queued: u8,
    },
    /// Backstop: some other quiescent-but-unfinished state.
    Stuck,
}

/// A violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct DoorbellFailure {
    /// What went wrong.
    pub violation: DoorbellViolation,
    /// Step labels from the initial state to the stuck state.
    pub trace: Vec<String>,
}

impl std::fmt::Display for DoorbellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct DoorbellReport {
    /// Distinct joint states reached.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Number of distinct finished states (all bursts pushed and popped).
    pub terminals: usize,
}

/// Producer position within the current burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PPhase {
    /// `EdgeOnlyRing` only: read the queue depth (the stale belief).
    ReadDepth,
    /// Push the `i`-th envelope of the burst.
    Push(u8),
    /// Ring step 1: bump the epoch (SeqCst in the real bell).
    RingEpoch,
    /// Ring step 2: notify under the mutex if a waiter is registered.
    RingNotify,
}

/// Consumer position. `Parked` has no self-transition — only a
/// producer's `RingNotify` moves a parked consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CPhase {
    /// Capture the epoch (before the scan — the protocol's key line).
    Capture,
    /// Scan: pop if non-empty, else fall through to the park sequence.
    Scan,
    /// Register as a waiter on the bell.
    Register,
    /// Decide to sleep. `Correct` re-checks the epoch against the
    /// capture under the mutex; `ParkWithoutRecheck` does not.
    ParkDecide,
    /// Asleep on the condvar.
    Parked,
    /// Woken (or retreating): deregister, then rescan.
    Deregister,
    /// All envelopes popped.
    Done,
}

/// Joint state of the two-thread model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Queue depth.
    q: u8,
    /// Doorbell epoch (bounded by the burst count).
    epoch: u8,
    /// Consumer's captured epoch.
    capture: u8,
    /// `EdgeOnlyRing` producer's pre-push depth read.
    saw: u8,
    /// A consumer registered on the bell.
    waiters: bool,
    pphase: PPhase,
    /// Bursts fully issued.
    burst: u8,
    cphase: CPhase,
    /// Envelopes popped so far.
    popped: u8,
}

/// Exhaustively explore all interleavings. `Ok` carries statistics;
/// `Err` carries the first stuck state found plus its schedule.
pub fn explore_doorbell(cfg: &DoorbellConfig) -> Result<DoorbellReport, DoorbellFailure> {
    let total = cfg.bursts * cfg.batch;
    let first_p = if cfg.variant == DoorbellVariant::EdgeOnlyRing {
        PPhase::ReadDepth
    } else {
        PPhase::Push(0)
    };
    let init = State {
        q: 0,
        epoch: 0,
        capture: 0,
        saw: 0,
        waiters: false,
        pphase: first_p,
        burst: 0,
        cphase: CPhase::Capture,
        popped: 0,
    };

    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    let visit = |n: State,
                 from: State,
                 label: String,
                 visited: &mut HashSet<State>,
                 parent: &mut HashMap<State, (State, String)>,
                 queue: &mut VecDeque<State>| {
        if visited.insert(n) {
            parent.insert(n, (from, label));
            queue.push_back(n);
        }
    };

    while let Some(s) = queue.pop_front() {
        let p_done = s.burst >= cfg.bursts;
        let c_done = s.cphase == CPhase::Done;
        if p_done && c_done {
            terminals += 1;
            continue;
        }
        let mut any_step = false;

        // ---- producer ------------------------------------------------
        if !p_done {
            any_step = true;
            transitions += 1;
            let mut n = s;
            let label = match s.pphase {
                PPhase::ReadDepth => {
                    n.saw = s.q;
                    n.pphase = PPhase::Push(0);
                    format!("prod: read depth = {}", s.q)
                }
                PPhase::Push(i) => {
                    n.q += 1;
                    n.pphase = if i + 1 < cfg.batch {
                        PPhase::Push(i + 1)
                    } else {
                        PPhase::RingEpoch
                    };
                    format!("prod: push (q -> {})", n.q)
                }
                PPhase::RingEpoch => {
                    if cfg.variant == DoorbellVariant::EdgeOnlyRing && s.saw != 0 {
                        // Stale belief "already non-empty": skip the ring.
                        n.burst += 1;
                        n.pphase = if n.burst < cfg.bursts {
                            PPhase::ReadDepth
                        } else {
                            s.pphase
                        };
                        "prod: skip ring (believed non-empty)".to_string()
                    } else {
                        n.epoch += 1;
                        n.pphase = PPhase::RingNotify;
                        format!("prod: ring epoch -> {}", n.epoch)
                    }
                }
                PPhase::RingNotify => {
                    if s.waiters && s.cphase == CPhase::Parked {
                        n.cphase = CPhase::Deregister;
                    }
                    n.burst += 1;
                    n.pphase = if cfg.variant == DoorbellVariant::EdgeOnlyRing {
                        PPhase::ReadDepth
                    } else {
                        PPhase::Push(0)
                    };
                    "prod: notify".to_string()
                }
            };
            visit(n, s, label, &mut visited, &mut parent, &mut queue);
        }

        // ---- consumer ------------------------------------------------
        if !c_done && s.cphase != CPhase::Parked {
            any_step = true;
            transitions += 1;
            let mut n = s;
            let label = match s.cphase {
                CPhase::Capture => {
                    n.capture = s.epoch;
                    n.cphase = CPhase::Scan;
                    format!("cons: capture epoch {}", s.epoch)
                }
                CPhase::Scan => {
                    if s.q > 0 {
                        n.q -= 1;
                        n.popped += 1;
                        n.cphase = if n.popped == total {
                            CPhase::Done
                        } else {
                            CPhase::Capture
                        };
                        format!("cons: pop (q -> {})", n.q)
                    } else {
                        n.cphase = CPhase::Register;
                        "cons: scan idle".to_string()
                    }
                }
                CPhase::Register => {
                    n.waiters = true;
                    n.cphase = CPhase::ParkDecide;
                    "cons: register waiter".to_string()
                }
                CPhase::ParkDecide => {
                    let recheck = cfg.variant != DoorbellVariant::ParkWithoutRecheck;
                    if recheck && s.epoch != s.capture {
                        n.cphase = CPhase::Deregister;
                        "cons: recheck sees ring, retreat".to_string()
                    } else {
                        // Re-check and sleep are one atomic step: both
                        // sides hold the bell mutex, and the condvar
                        // releases it atomically with sleeping.
                        n.cphase = CPhase::Parked;
                        "cons: park".to_string()
                    }
                }
                CPhase::Deregister => {
                    n.waiters = false;
                    n.cphase = CPhase::Capture;
                    "cons: deregister".to_string()
                }
                CPhase::Parked | CPhase::Done => unreachable!(),
            };
            visit(n, s, label, &mut visited, &mut parent, &mut queue);
        }

        if !any_step {
            let violation = if s.cphase == CPhase::Parked && s.q > 0 {
                DoorbellViolation::LostWakeup { queued: s.q }
            } else {
                DoorbellViolation::Stuck
            };
            return Err(fail(violation, &s, &parent));
        }
    }

    Ok(DoorbellReport {
        states: visited.len(),
        transitions,
        terminals,
    })
}

/// Reconstruct the schedule from the parent map and build a failure.
fn fail(
    violation: DoorbellViolation,
    at: &State,
    parent: &HashMap<State, (State, String)>,
) -> DoorbellFailure {
    let mut trace = Vec::new();
    let mut cur = *at;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    DoorbellFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_never_strands_a_parked_consumer() {
        for (bursts, batch) in [(1, 1), (3, 1), (2, 2), (2, 3)] {
            let report = explore_doorbell(&DoorbellConfig::correct(bursts, batch))
                .expect("capture/recheck protocol is lost-wakeup free");
            assert!(report.terminals >= 1);
            assert!(report.states > 10, "got {} states", report.states);
        }
    }

    #[test]
    fn park_without_recheck_loses_the_wakeup() {
        let failure = explore_doorbell(&DoorbellConfig {
            bursts: 2,
            batch: 1,
            variant: DoorbellVariant::ParkWithoutRecheck,
        })
        .expect_err("must catch the planted ring-between-check-and-park bug");
        assert!(
            matches!(failure.violation, DoorbellViolation::LostWakeup { queued } if queued > 0),
            "expected LostWakeup, got {:?}",
            failure.violation
        );
        assert!(!failure.trace.is_empty());
    }

    #[test]
    fn edge_only_ring_loses_the_wakeup() {
        let failure = explore_doorbell(&DoorbellConfig {
            bursts: 2,
            batch: 1,
            variant: DoorbellVariant::EdgeOnlyRing,
        })
        .expect_err("must catch the stale empty->non-empty edge belief");
        assert!(
            matches!(failure.violation, DoorbellViolation::LostWakeup { queued } if queued > 0),
            "got {:?}",
            failure.violation
        );
    }

    #[test]
    fn batched_bursts_ring_once_and_still_wake() {
        // One ring per 3-push burst: the PR 3 contract carried to the
        // doorbell. The single trailing ring must still cover a consumer
        // that went idle mid-burst.
        let report =
            explore_doorbell(&DoorbellConfig::correct(2, 3)).expect("one ring per burst suffices");
        assert!(report.terminals >= 1);
    }
}
