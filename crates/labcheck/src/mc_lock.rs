//! Deterministic interleaving model checker for the lock-witness
//! acquire/release state machine.
//!
//! The runtime lock witness (`labstor_ipc::lockwitness`) enforces, per
//! thread, the registry discipline from DESIGN.md §7: classes are
//! acquired in ascending rank, a non-reentrant class is never acquired
//! while held (not even a different instance), and a `nest_within` class
//! (the ShMem chunk sweep) may stack only in ascending instance order.
//! This checker exercises those rules against exhaustive two-thread
//! interleavings (visited-set BFS, same technique as [`crate::mc`] /
//! [`crate::mc_rc`]) of small lock programs modeled on the real PR 5
//! protocols:
//!
//! - [`LockVariant::CorrectWrite`] — the *fixed* `PageCache::write` on a
//!   pool-dry cache: lock shard / unlock / shed own shard / shed the
//!   other shard (one at a time) / re-lock / touch the pool tracker under
//!   the shard. Never holds two shards; tracker nests ascending. Passes.
//! - [`LockVariant::CorrectChunks`] — the fixed multi-chunk ShMem
//!   access: both threads sweep chunk 0 → chunk 1 ascending. Passes.
//! - [`LockVariant::ReentrantShard`] — the PR 5 bug: the pool-dry
//!   fallback re-acquires the shard the caller already holds. The
//!   witness rule catches it as a self-deadlock on every schedule.
//! - [`LockVariant::DescendingChunks`] — the pre-PR 5 chunk sweep: one
//!   thread locks chunk 1 → chunk 0. Instance order inverts (and the
//!   ABBA deadlock exists); the witness flags the descending acquire.
//! - [`LockVariant::HoldAcrossAlloc`] — shedding from another shard
//!   *while still holding your own*: two threads on opposite shards
//!   deadlock ABBA. The same-class double-hold rule flags it first.
//! - [`LockVariant::CorrectTenantCharge`] — the labtenant admission
//!   path: resolve the tenant in the `TenantTable` (rank 36), release
//!   it, then take the page-cache shard and pool tracker ascending.
//!   The table is never held across pool locks. Passes.
//! - [`LockVariant::TenantTableAfterShard`] — the inversion the QoS
//!   design rules out: attributing a shed to the `TenantTable` from
//!   *inside* the shard lock (36 < 70). The witness flags the
//!   descending acquire on every schedule.
//!
//! A deadlocked schedule (every unfinished thread blocked) is kept as a
//! backstop violation, so the checker stays sound even for bugs the
//! witness rules would miss.

use std::collections::{HashMap, HashSet, VecDeque};

/// One lock instance in the model: registry class plus instance index.
#[derive(Debug, Clone, Copy)]
struct LockSpec {
    name: &'static str,
    rank: u16,
    /// Instance index within the class (the address order the runtime
    /// witness compares for `nest_within` classes).
    instance: u8,
    nest_within: bool,
}

/// One atomic step of a thread's lock program.
#[derive(Debug, Clone, Copy)]
enum Step {
    Acq(usize),
    Rel(usize),
}

/// Lock protocol under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockVariant {
    /// The fixed pool-dry `PageCache::write`: drop before alloc, shed one
    /// shard at a time, tracker nests above the shard.
    CorrectWrite,
    /// The fixed ShMem span access: chunks acquired ascending up front.
    CorrectChunks,
    /// Planted PR 5 bug: re-acquire the held shard in the dry fallback.
    ReentrantShard,
    /// Planted bug: one thread sweeps chunks in descending order.
    DescendingChunks,
    /// Planted bug: shed another shard while holding your own.
    HoldAcrossAlloc,
    /// The labtenant admission path: tenant table released before any
    /// pool lock; shard and tracker then nest ascending.
    CorrectTenantCharge,
    /// Planted bug: acquire the tenant table (rank 36) while holding a
    /// page-cache shard (rank 70) — the shed-attribution inversion.
    TenantTableAfterShard,
}

/// Model-checker configuration (the variant fixes both threads' programs).
#[derive(Debug, Clone, Copy)]
pub struct LockConfig {
    /// Protocol under test.
    pub variant: LockVariant,
}

/// Discipline violation detected mid-exploration or at quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockViolation {
    /// A thread acquired a lock it already holds (non-reentrant mutex:
    /// guaranteed deadlock).
    SelfDeadlock {
        /// The acquiring thread.
        thread: usize,
        /// The re-acquired lock.
        lock: &'static str,
    },
    /// An acquisition inverted the declared class/instance order.
    OrderViolation {
        /// The acquiring thread.
        thread: usize,
        /// A lock it holds that outranks the new one.
        held: &'static str,
        /// The out-of-order acquisition.
        acquiring: &'static str,
    },
    /// Every unfinished thread is blocked on a held lock.
    Deadlock,
    /// A thread finished its program still holding a lock.
    HeldAtExit {
        /// The finishing thread.
        thread: usize,
        /// The lock never released.
        lock: &'static str,
    },
}

/// A violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct LockFailure {
    /// What went wrong.
    pub violation: LockViolation,
    /// Step labels from the initial state to the violating step.
    pub trace: Vec<String>,
}

impl std::fmt::Display for LockFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct LockReport {
    /// Distinct joint states reached.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Number of distinct quiescent states.
    pub terminals: usize,
}

const FREE: u8 = u8::MAX;
const MAX_LOCKS: usize = 3;

/// Joint state: lock owners (thread id or [`FREE`]) and per-thread pc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    owners: [u8; MAX_LOCKS],
    pcs: [u8; 2],
}

/// The lock set and the two thread programs of a variant. The model's
/// lock classes mirror the workspace registry: `pagecache.shard` rank 70
/// (non-reentrant), `shmem.chunk` rank 78 (`nest_within`), `pool.tracker`
/// rank 90.
fn programs(variant: LockVariant) -> (Vec<LockSpec>, [Vec<Step>; 2]) {
    let shard = |i: u8| LockSpec {
        name: if i == 0 {
            "pagecache.shard#0"
        } else {
            "pagecache.shard#1"
        },
        rank: 70,
        instance: i,
        nest_within: false,
    };
    let chunk = |i: u8| LockSpec {
        name: if i == 0 {
            "shmem.chunk#0"
        } else {
            "shmem.chunk#1"
        },
        rank: 78,
        instance: i,
        nest_within: true,
    };
    let tracker = LockSpec {
        name: "pool.tracker",
        rank: 90,
        instance: 0,
        nest_within: false,
    };
    let table = LockSpec {
        name: "qos.tenants",
        rank: 36,
        instance: 0,
        nest_within: false,
    };
    use Step::{Acq, Rel};
    match variant {
        // Locks: [shard0, shard1, tracker]. Each thread writes a key in
        // its own shard with the pool dry: lock / miss / unlock; shed own
        // shard; shed the *other* shard; re-lock own; drop a BufHandle
        // into the tracker under the shard; unlock.
        LockVariant::CorrectWrite => (
            vec![shard(0), shard(1), tracker],
            [
                vec![
                    Acq(0),
                    Rel(0),
                    Acq(0),
                    Rel(0),
                    Acq(1),
                    Rel(1),
                    Acq(0),
                    Acq(2),
                    Rel(2),
                    Rel(0),
                ],
                vec![
                    Acq(1),
                    Rel(1),
                    Acq(1),
                    Rel(1),
                    Acq(0),
                    Rel(0),
                    Acq(1),
                    Acq(2),
                    Rel(2),
                    Rel(1),
                ],
            ],
        ),
        // Locks: [chunk0, chunk1]. Both threads sweep a two-chunk span in
        // ascending order — the fixed ShMem protocol.
        LockVariant::CorrectChunks => (
            vec![chunk(0), chunk(1)],
            [
                vec![Acq(0), Acq(1), Rel(1), Rel(0)],
                vec![Acq(0), Acq(1), Rel(1), Rel(0)],
            ],
        ),
        // The PR 5 shape: thread 0's dry fallback re-locks its own shard.
        LockVariant::ReentrantShard => (
            vec![shard(0), shard(1)],
            [vec![Acq(0), Acq(0), Rel(0), Rel(0)], vec![Acq(1), Rel(1)]],
        ),
        // Thread 1 sweeps the same span descending: ABBA with thread 0.
        LockVariant::DescendingChunks => (
            vec![chunk(0), chunk(1)],
            [
                vec![Acq(0), Acq(1), Rel(1), Rel(0)],
                vec![Acq(1), Acq(0), Rel(0), Rel(1)],
            ],
        ),
        // Each thread holds its own shard while shedding the other: ABBA
        // on the two shard instances of one non-reentrant class.
        LockVariant::HoldAcrossAlloc => (
            vec![shard(0), shard(1)],
            [
                vec![Acq(0), Acq(1), Rel(1), Rel(0)],
                vec![Acq(1), Acq(0), Rel(0), Rel(1)],
            ],
        ),
        // Locks: [table, shard0, tracker]. Both threads resolve their
        // tenant under the table, release it, then charge a page: shard
        // → tracker ascending. The table never overlaps a pool lock.
        LockVariant::CorrectTenantCharge => (
            vec![table, shard(0), tracker],
            [
                vec![Acq(0), Rel(0), Acq(1), Acq(2), Rel(2), Rel(1)],
                vec![Acq(0), Rel(0), Acq(1), Acq(2), Rel(2), Rel(1)],
            ],
        ),
        // Thread 0 attributes a shed victim via the table while still
        // inside the shard lock: rank 36 acquired under rank 70. Thread
        // 1 runs the correct order, so the ABBA deadlock also exists.
        LockVariant::TenantTableAfterShard => (
            vec![table, shard(0)],
            [
                vec![Acq(1), Acq(0), Rel(0), Rel(1)],
                vec![Acq(0), Acq(1), Rel(1), Rel(0)],
            ],
        ),
    }
}

/// Exhaustively explore all interleavings. `Ok` carries statistics;
/// `Err` carries the first violation found plus its schedule.
pub fn explore_lock(cfg: &LockConfig) -> Result<LockReport, LockFailure> {
    let (locks, progs) = programs(cfg.variant);
    assert!(locks.len() <= MAX_LOCKS);
    let init = State {
        owners: [FREE; MAX_LOCKS],
        pcs: [0; 2],
    };

    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    while let Some(state) = queue.pop_front() {
        let done = |tid: usize| state.pcs[tid] as usize >= progs[tid].len();
        if (0..2).all(done) {
            terminals += 1;
            for (li, &owner) in state.owners.iter().enumerate() {
                if owner != FREE {
                    return Err(fail(
                        LockViolation::HeldAtExit {
                            thread: owner as usize,
                            lock: locks[li].name,
                        },
                        &state,
                        None,
                        &parent,
                    ));
                }
            }
            continue;
        }
        let mut any_step = false;
        for tid in 0..2 {
            if done(tid) {
                continue;
            }
            match progs[tid][state.pcs[tid] as usize] {
                Step::Acq(li) => {
                    let lock = locks[li];
                    // Witness checks run BEFORE blocking (the runtime
                    // witness panics instead of deadlocking).
                    for (hi, &owner) in state.owners.iter().enumerate() {
                        if owner != tid as u8 {
                            continue;
                        }
                        let held = locks[hi];
                        if hi == li {
                            return Err(fail(
                                LockViolation::SelfDeadlock {
                                    thread: tid,
                                    lock: lock.name,
                                },
                                &state,
                                Some(format!("t{tid}: acquire {} (held)", lock.name)),
                                &parent,
                            ));
                        }
                        let ok = if held.rank == lock.rank {
                            held.nest_within && lock.nest_within && lock.instance > held.instance
                        } else {
                            lock.rank > held.rank
                        };
                        if !ok {
                            return Err(fail(
                                LockViolation::OrderViolation {
                                    thread: tid,
                                    held: held.name,
                                    acquiring: lock.name,
                                },
                                &state,
                                Some(format!(
                                    "t{tid}: acquire {} while holding {}",
                                    lock.name, held.name
                                )),
                                &parent,
                            ));
                        }
                    }
                    if state.owners[li] != FREE {
                        continue; // blocked on the other thread
                    }
                    let mut n = state;
                    n.owners[li] = tid as u8;
                    n.pcs[tid] += 1;
                    any_step = true;
                    transitions += 1;
                    if visited.insert(n) {
                        parent.insert(n, (state, format!("t{tid}: acquire {}", lock.name)));
                        queue.push_back(n);
                    }
                }
                Step::Rel(li) => {
                    debug_assert_eq!(state.owners[li], tid as u8, "release of unheld lock");
                    let mut n = state;
                    n.owners[li] = FREE;
                    n.pcs[tid] += 1;
                    any_step = true;
                    transitions += 1;
                    if visited.insert(n) {
                        parent.insert(n, (state, format!("t{tid}: release {}", locks[li].name)));
                        queue.push_back(n);
                    }
                }
            }
        }
        if !any_step {
            return Err(fail(LockViolation::Deadlock, &state, None, &parent));
        }
    }

    Ok(LockReport {
        states: visited.len(),
        transitions,
        terminals,
    })
}

/// Reconstruct the schedule from the parent map and build a failure.
fn fail(
    violation: LockViolation,
    at: &State,
    last_label: Option<String>,
    parent: &HashMap<State, (State, String)>,
) -> LockFailure {
    let mut trace = Vec::new();
    if let Some(label) = last_label {
        trace.push(label);
    }
    let mut cur = *at;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    LockFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_write_protocol_passes() {
        let report = explore_lock(&LockConfig {
            variant: LockVariant::CorrectWrite,
        })
        .expect("the fixed write protocol holds at most one shard");
        assert!(report.terminals >= 1);
        assert!(report.states > 50, "got {} states", report.states);
    }

    #[test]
    fn correct_chunk_sweep_passes() {
        explore_lock(&LockConfig {
            variant: LockVariant::CorrectChunks,
        })
        .expect("ascending chunk sweeps cannot deadlock");
    }

    #[test]
    fn reentrant_shard_is_caught_as_self_deadlock() {
        let failure = explore_lock(&LockConfig {
            variant: LockVariant::ReentrantShard,
        })
        .expect_err("must catch the PR 5 re-entry");
        assert!(
            matches!(
                failure.violation,
                LockViolation::SelfDeadlock { thread: 0, .. }
            ),
            "expected SelfDeadlock, got {:?}",
            failure.violation
        );
        assert!(!failure.trace.is_empty());
    }

    #[test]
    fn descending_chunks_are_caught() {
        let failure = explore_lock(&LockConfig {
            variant: LockVariant::DescendingChunks,
        })
        .expect_err("must catch the inverted sweep");
        assert!(
            matches!(
                failure.violation,
                LockViolation::OrderViolation { .. } | LockViolation::Deadlock
            ),
            "got {:?}",
            failure.violation
        );
    }

    #[test]
    fn correct_tenant_charge_passes() {
        let report = explore_lock(&LockConfig {
            variant: LockVariant::CorrectTenantCharge,
        })
        .expect("table released before pool locks cannot invert");
        assert!(report.terminals >= 1);
    }

    #[test]
    fn tenant_table_after_shard_is_caught() {
        let failure = explore_lock(&LockConfig {
            variant: LockVariant::TenantTableAfterShard,
        })
        .expect_err("must catch the table-under-shard inversion");
        assert!(
            matches!(failure.violation, LockViolation::OrderViolation { .. }),
            "got {:?}",
            failure.violation
        );
    }

    #[test]
    fn hold_across_alloc_is_caught() {
        let failure = explore_lock(&LockConfig {
            variant: LockVariant::HoldAcrossAlloc,
        })
        .expect_err("must catch the shard ABBA");
        assert!(
            matches!(failure.violation, LockViolation::OrderViolation { .. }),
            "got {:?}",
            failure.violation
        );
    }
}
