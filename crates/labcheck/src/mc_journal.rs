//! Deterministic model checker for the journal commit protocol.
//!
//! `crates/mods/src/journal.rs` makes a flush durable with two ordered
//! device writes — header+payload first, then a separate commit record —
//! and recovery replays the longest prefix of transactions whose payload
//! CRC and commit record both validate. This checker explores every
//! crash point and device-tear choice of that protocol (visited-set BFS,
//! same technique as [`crate::mc`] / [`crate::mc_rc`]) and verifies, at
//! every crash and at clean shutdown:
//!
//! 1. **Prefix + exactly-once**: recovery applies transactions
//!    `1..=k` in order, each exactly once — no holes, no duplicates.
//! 2. **No corruption accepted**: a transaction whose payload tore never
//!    reaches the recovered state.
//! 3. **Durability**: if the device performed every acknowledged write
//!    faithfully (no silent tear in the run), every acked transaction is
//!    recovered.
//!
//! The model: the writer appends `txns` transactions. A body write is two
//! atomic sub-steps (partial landing, then full landing) so a crash
//! between them leaves a torn payload; with
//! [`JournalConfig::allow_silent_tear`] the scheduler may also have the
//! device *ack* the partial landing (the silent-tear fault the sim
//! injects), after which the writer proceeds believing the payload is
//! durable. The commit record occupies a single sector and is modeled
//! atomic. A crash transition is available from every state.
//!
//! Planted-bug variants, each of which must be caught:
//!
//! - [`JournalVariant::LostCommit`] — the writer acks the client after
//!   the payload write but *before* the commit record (the jbd2 ordering
//!   inverted). A crash in between loses an acked transaction.
//! - [`JournalVariant::ReplayTwice`] — recovery applies each committed
//!   transaction twice (a replay loop without idempotence bookkeeping).
//! - [`JournalVariant::TornCrcAccept`] — recovery skips the payload CRC
//!   and accepts any transaction whose header and commit record are
//!   present, replaying torn data.

use std::collections::{HashMap, HashSet, VecDeque};

/// Maximum transactions the model supports (state arrays are fixed-size).
pub const MAX_TXNS: usize = 3;

/// Journal protocol variant under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalVariant {
    /// The shipped protocol: payload write, commit write, then ack;
    /// recovery validates payload CRC + commit and stops at the first
    /// invalid frame.
    Correct,
    /// Bug: ack after the payload write, before the commit record.
    LostCommit,
    /// Bug: recovery applies each committed transaction twice.
    ReplayTwice,
    /// Bug: recovery accepts a transaction with a torn payload (no CRC
    /// check) as long as header and commit record are present.
    TornCrcAccept,
}

/// Model-checker configuration.
#[derive(Debug, Clone, Copy)]
pub struct JournalConfig {
    /// Transactions the writer appends (1..=[`MAX_TXNS`]).
    pub txns: u8,
    /// Whether the scheduler may silently tear a payload write (device
    /// acks a partial landing).
    pub allow_silent_tear: bool,
    /// Protocol variant under test.
    pub variant: JournalVariant,
}

impl JournalConfig {
    /// The shipped protocol.
    pub fn correct(txns: u8, allow_silent_tear: bool) -> JournalConfig {
        JournalConfig {
            txns,
            allow_silent_tear,
            variant: JournalVariant::Correct,
        }
    }
}

/// Media state of one transaction's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Body {
    /// Nothing landed.
    None,
    /// A strict prefix landed (torn).
    Torn,
    /// Every sector landed.
    Full,
}

/// Invariant violation found at a crash point or clean shutdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalViolation {
    /// Recovery applied transactions out of order or with a hole.
    NotAPrefix {
        /// The offending replay position.
        applied: Vec<u8>,
    },
    /// Recovery applied a transaction more than once.
    AppliedTwice {
        /// The duplicated transaction (1-based).
        txn: u8,
    },
    /// Recovery applied a transaction whose payload tore.
    CorruptionAccepted {
        /// The torn transaction (1-based).
        txn: u8,
    },
    /// An acknowledged transaction vanished although the device performed
    /// every acked write faithfully.
    AckedLost {
        /// The lost transaction (1-based).
        txn: u8,
    },
}

/// A violation plus the schedule that reaches it.
#[derive(Debug, Clone)]
pub struct JournalFailure {
    /// What went wrong.
    pub violation: JournalViolation,
    /// Step labels from the initial state to the violating crash point.
    pub trace: Vec<String>,
}

impl std::fmt::Display for JournalFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct JournalReport {
    /// Distinct states reached.
    pub states: usize,
    /// Scheduler transitions taken.
    pub transitions: usize,
    /// Crash points + clean shutdowns whose recovery was verified.
    pub recoveries_checked: usize,
}

/// Writer program counter within the current transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Pc {
    /// About to start the body write.
    Start,
    /// Body partially landed; the write is still in flight.
    BodyPartial,
    /// Body fully landed (or silently acked); commit not yet written.
    BodyDone,
    /// LostCommit only: acked, commit record still unwritten.
    AckedEarly,
}

/// Joint state: per-transaction media + ack flags, writer position, and
/// whether a silent tear happened in this run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    body: [Body; MAX_TXNS],
    commit: [bool; MAX_TXNS],
    acked: [bool; MAX_TXNS],
    /// Index of the transaction the writer is working on (== txns when
    /// the workload is complete).
    cur: u8,
    pc: Pc,
    /// True once the device silently tore an acked write.
    faulted: bool,
}

/// Deterministic recovery: which transactions (1-based) the variant's
/// replay applies, in order, with multiplicity.
fn recover(cfg: &JournalConfig, s: &State) -> Vec<u8> {
    let mut applied = Vec::new();
    for i in 0..cfg.txns as usize {
        let body_ok = match cfg.variant {
            // Bug: header + commit present is "good enough" — no CRC.
            JournalVariant::TornCrcAccept => s.body[i] != Body::None,
            _ => s.body[i] == Body::Full,
        };
        if body_ok && s.commit[i] {
            applied.push(i as u8 + 1);
            if cfg.variant == JournalVariant::ReplayTwice {
                applied.push(i as u8 + 1);
            }
        } else {
            // Prefix-consistent stop: nothing past the first bad frame.
            break;
        }
    }
    applied
}

/// Check the recovery invariants for one crash point / shutdown.
fn check_recovery(cfg: &JournalConfig, s: &State) -> Result<(), JournalViolation> {
    let applied = recover(cfg, s);
    // Exactly-once, in-order prefix.
    let mut seen = [0u8; MAX_TXNS];
    for &t in &applied {
        seen[t as usize - 1] += 1;
    }
    for (i, &count) in seen.iter().enumerate().take(cfg.txns as usize) {
        if count > 1 {
            return Err(JournalViolation::AppliedTwice { txn: i as u8 + 1 });
        }
    }
    let k = applied.len() as u8;
    for (i, &t) in applied.iter().enumerate() {
        if t != i as u8 + 1 {
            return Err(JournalViolation::NotAPrefix { applied });
        }
    }
    // No torn payload in the recovered state.
    for &t in &applied {
        if s.body[t as usize - 1] != Body::Full {
            return Err(JournalViolation::CorruptionAccepted { txn: t });
        }
    }
    // Durability: with a faithful device, acked ⊆ recovered.
    if !s.faulted {
        for i in 0..cfg.txns as usize {
            if s.acked[i] && i as u8 >= k {
                return Err(JournalViolation::AckedLost { txn: i as u8 + 1 });
            }
        }
    }
    Ok(())
}

/// Exhaustively explore all crash points and device-tear choices. `Ok`
/// carries statistics; `Err` carries the first violation plus its
/// schedule.
pub fn explore_journal(cfg: &JournalConfig) -> Result<JournalReport, JournalFailure> {
    assert!(
        cfg.txns >= 1 && cfg.txns as usize <= MAX_TXNS,
        "txns must be 1..={MAX_TXNS}"
    );
    let init = State {
        body: [Body::None; MAX_TXNS],
        commit: [false; MAX_TXNS],
        acked: [false; MAX_TXNS],
        cur: 0,
        pc: Pc::Start,
        faulted: false,
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut recoveries = 0usize;

    while let Some(state) = queue.pop_front() {
        // Every state is a potential crash point: whatever is on media
        // right now must recover consistently. (This also covers clean
        // shutdown, where `cur == txns`.)
        recoveries += 1;
        if let Err(violation) = check_recovery(cfg, &state) {
            return Err(fail(
                violation,
                &state,
                Some("crash + recover".to_string()),
                &parent,
            ));
        }
        if state.cur as usize >= cfg.txns as usize {
            continue; // workload complete
        }
        for (next, label) in writer_steps(cfg, &state) {
            transitions += 1;
            if visited.insert(next) {
                parent.insert(next, (state, label));
                queue.push_back(next);
            }
        }
    }

    Ok(JournalReport {
        states: visited.len(),
        transitions,
        recoveries_checked: recoveries,
    })
}

/// Successor states of the writer/device from `s`.
fn writer_steps(cfg: &JournalConfig, s: &State) -> Vec<(State, String)> {
    let i = s.cur as usize;
    let t = s.cur + 1; // 1-based label
    let mut out = Vec::new();
    match s.pc {
        Pc::Start => {
            // The body write starts landing sectors.
            let mut n = *s;
            n.body[i] = Body::Torn;
            n.pc = Pc::BodyPartial;
            out.push((n, format!("txn {t}: body write lands a prefix")));
        }
        Pc::BodyPartial => {
            // Normal completion: the rest of the sectors land.
            let mut n = *s;
            n.body[i] = Body::Full;
            n.pc = Pc::BodyDone;
            out.push((n, format!("txn {t}: body write completes")));
            if cfg.allow_silent_tear {
                // Device fault: the write is acked as complete while only
                // the prefix landed.
                let mut n = *s;
                n.pc = Pc::BodyDone;
                n.faulted = true;
                out.push((n, format!("txn {t}: device silently tears the body")));
            }
        }
        Pc::BodyDone => match cfg.variant {
            JournalVariant::LostCommit => {
                // Bug: ack the client before the commit record exists.
                let mut n = *s;
                n.acked[i] = true;
                n.pc = Pc::AckedEarly;
                out.push((n, format!("txn {t}: ack BEFORE commit record")));
            }
            _ => {
                // Commit record: one sector, atomic; then ack.
                let mut n = *s;
                n.commit[i] = true;
                n.acked[i] = true;
                n.cur += 1;
                n.pc = Pc::Start;
                out.push((n, format!("txn {t}: commit record + ack")));
            }
        },
        Pc::AckedEarly => {
            // LostCommit's late commit record finally lands.
            let mut n = *s;
            n.commit[i] = true;
            n.cur += 1;
            n.pc = Pc::Start;
            out.push((n, format!("txn {t}: late commit record")));
        }
    }
    out
}

/// Reconstruct the schedule from the parent map and build a failure.
fn fail(
    violation: JournalViolation,
    at: &State,
    last_label: Option<String>,
    parent: &HashMap<State, (State, String)>,
) -> JournalFailure {
    let mut trace = Vec::new();
    if let Some(label) = last_label {
        trace.push(label);
    }
    let mut cur = *at;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    JournalFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_protocol_survives_all_crash_points() {
        for txns in 1..=3 {
            for tear in [false, true] {
                let report =
                    explore_journal(&JournalConfig::correct(txns, tear)).expect("no violations");
                assert!(report.recoveries_checked > 0);
            }
        }
    }

    #[test]
    fn exploration_is_nontrivial() {
        let report = explore_journal(&JournalConfig::correct(3, true)).expect("ok");
        assert!(report.states > 10, "got {} states", report.states);
        assert!(report.recoveries_checked >= report.states);
    }

    #[test]
    fn lost_commit_record_is_caught() {
        let cfg = JournalConfig {
            txns: 1,
            allow_silent_tear: false,
            variant: JournalVariant::LostCommit,
        };
        let failure = explore_journal(&cfg).expect_err("must catch the lost ack");
        assert!(
            matches!(failure.violation, JournalViolation::AckedLost { txn: 1 }),
            "expected AckedLost, got {:?}",
            failure.violation
        );
        assert!(!failure.trace.is_empty(), "counterexample has a schedule");
    }

    #[test]
    fn replay_twice_is_caught() {
        let cfg = JournalConfig {
            txns: 2,
            allow_silent_tear: false,
            variant: JournalVariant::ReplayTwice,
        };
        let failure = explore_journal(&cfg).expect_err("must catch the double replay");
        assert!(matches!(
            failure.violation,
            JournalViolation::AppliedTwice { .. }
        ));
    }

    #[test]
    fn torn_crc_accept_is_caught() {
        let cfg = JournalConfig {
            txns: 1,
            allow_silent_tear: true,
            variant: JournalVariant::TornCrcAccept,
        };
        let failure = explore_journal(&cfg).expect_err("must catch the accepted tear");
        assert!(matches!(
            failure.violation,
            JournalViolation::CorruptionAccepted { txn: 1 }
        ));
    }

    #[test]
    fn torn_crc_accept_passes_without_tears() {
        // Without the device fault the buggy recovery never sees a torn
        // payload behind a commit record: the checker needs the tear
        // choice enabled to expose it.
        let cfg = JournalConfig {
            txns: 2,
            allow_silent_tear: false,
            variant: JournalVariant::TornCrcAccept,
        };
        assert!(explore_journal(&cfg).is_ok());
    }
}
