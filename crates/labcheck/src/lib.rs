//! labcheck: LabStor-RS's workspace-native static-analysis pass and
//! concurrency model-checking harness.
//!
//! Two halves (DESIGN.md §"Static analysis & concurrency checking"):
//!
//! 1. [`lint`] — four source lints enforcing LabStor-specific invariants
//!    over every workspace `.rs` file: justified `Ordering::Relaxed`,
//!    panic-freedom in the IPC hot paths, `SAFETY:` comments on `unsafe`,
//!    and explicit opt-out from the LabMod platform contract defaults.
//! 2. [`mc`] — a deterministic interleaving model checker that decomposes
//!    the SPSC ring's push/pop into atomic steps and exhaustively explores
//!    every reachable schedule, checking FIFO order, no lost elements, and
//!    no uninitialized reads. [`mc_rc`] applies the same technique to the
//!    buffer pool's refcount-release protocol (no leak, no double free,
//!    no use after free).
//!
//! Run as `cargo run -p labstor-labcheck` (add `--json` for machine
//! output); `cargo test -p labstor-labcheck` plus the root-level
//! `tests/labcheck_gate.rs` wire both halves into tier-1.

pub mod lint;
pub mod lockcheck;
pub mod mc;
pub mod mc_doorbell;
pub mod mc_fuel;
pub mod mc_journal;
pub mod mc_lock;
pub mod mc_rc;
pub mod scan;

pub use lint::{lint_source, lint_workspace, render_json, render_text, Config, Diagnostic, Lint};
pub use lockcheck::LockClassSpec;
pub use mc::{explore, McConfig, McFailure, Report, Variant, Violation};
pub use mc_doorbell::{
    explore_doorbell, DoorbellConfig, DoorbellFailure, DoorbellReport, DoorbellVariant,
    DoorbellViolation,
};
pub use mc_fuel::{
    explore_fuel, FuelConfig, FuelFailure, FuelInsn, FuelReport, FuelVariant, FuelViolation,
};
pub use mc_journal::{
    explore_journal, JournalConfig, JournalFailure, JournalReport, JournalVariant, JournalViolation,
};
pub use mc_lock::{explore_lock, LockConfig, LockFailure, LockReport, LockVariant, LockViolation};
pub use mc_rc::{explore_rc, RcConfig, RcFailure, RcReport, RcVariant, RcViolation};

use std::path::PathBuf;

/// Locate the workspace root: walk up from `CARGO_MANIFEST_DIR` (runtime
/// if set, else the compile-time location of this crate) to the first
/// `Cargo.toml` declaring `[workspace]`.
pub fn workspace_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            // Fall back to where we started; the caller's walk will
            // produce a clear io error if this is wrong.
            return start;
        }
    }
}

/// The model-checker configurations the binary and the tier-1 gate run:
/// depth 6 per side at cap 2 and 4, a wraparound run, a partial-drain run
/// (Drop contract), depth 7 to exceed the acceptance floor, and the
/// batched-publication protocol (`push_batch`/`pop_batch`: one doorbell
/// store per burst) at batch 2 and 3, including across the counter wrap.
pub fn gate_mc_configs() -> Vec<McConfig> {
    vec![
        McConfig::correct(2, 6),
        McConfig::correct(4, 6),
        McConfig {
            cap: 4,
            pushes: 7,
            pops: 7,
            start: 253,
            stale_reads: true,
            batch: 1,
            variant: Variant::Correct,
        },
        McConfig {
            cap: 4,
            pushes: 6,
            pops: 4,
            start: 254,
            stale_reads: true,
            batch: 1,
            variant: Variant::Correct,
        },
        McConfig {
            cap: 2,
            pushes: 7,
            pops: 7,
            start: 0,
            stale_reads: true,
            batch: 1,
            variant: Variant::Correct,
        },
        McConfig::correct_batched(2, 6, 2),
        McConfig::correct_batched(4, 6, 3),
        McConfig {
            cap: 4,
            pushes: 7,
            pops: 7,
            start: 253,
            stale_reads: true,
            batch: 3,
            variant: Variant::Correct,
        },
        McConfig {
            cap: 4,
            pushes: 6,
            pops: 4,
            start: 254,
            stale_reads: true,
            batch: 2,
            variant: Variant::Correct,
        },
    ]
}

/// The refcount-release configurations the binary and the tier-1 gate
/// run: the shipped fetch_sub protocol at increasing clone depth (0 =
/// the bare two-thread drop race, 3 = twelve interleaved clone/use/drop
/// steps per side).
pub fn gate_rc_configs() -> Vec<RcConfig> {
    vec![
        RcConfig::correct(0),
        RcConfig::correct(1),
        RcConfig::correct(3),
    ]
}

/// Planted-bug release protocols the gate must catch: the two wrong ways
/// to split the free decision across separate atomic steps.
pub fn gate_rc_bug_configs() -> Vec<RcConfig> {
    vec![
        RcConfig {
            clones: 0,
            variant: RcVariant::LoadThenSub,
        },
        RcConfig {
            clones: 0,
            variant: RcVariant::SubThenLoad,
        },
        RcConfig {
            clones: 2,
            variant: RcVariant::SubThenLoad,
        },
    ]
}

/// The lock-discipline configurations the binary and the tier-1 gate
/// run: the fixed PR 5 protocols (pool-dry write, ascending chunk sweep)
/// and the labtenant charge path (table released before pool locks) must
/// pass every interleaving.
pub fn gate_lock_configs() -> Vec<LockConfig> {
    vec![
        LockConfig {
            variant: LockVariant::CorrectWrite,
        },
        LockConfig {
            variant: LockVariant::CorrectChunks,
        },
        LockConfig {
            variant: LockVariant::CorrectTenantCharge,
        },
    ]
}

/// Planted lock bugs the gate must catch: the PR 5 re-entrant shard, the
/// pre-PR 5 descending chunk sweep, shedding while holding a shard, and
/// acquiring the tenant table under a page-cache shard.
pub fn gate_lock_bug_configs() -> Vec<LockConfig> {
    vec![
        LockConfig {
            variant: LockVariant::ReentrantShard,
        },
        LockConfig {
            variant: LockVariant::DescendingChunks,
        },
        LockConfig {
            variant: LockVariant::HoldAcrossAlloc,
        },
        LockConfig {
            variant: LockVariant::TenantTableAfterShard,
        },
    ]
}

/// The doorbell park/wake configurations the binary and the tier-1 gate
/// run: the shipped capture/recheck protocol (PR 9) must be lost-wakeup
/// free on every interleaving, at single pushes and at one-ring-per-burst
/// batch shapes.
pub fn gate_doorbell_configs() -> Vec<DoorbellConfig> {
    vec![
        DoorbellConfig::correct(3, 1),
        DoorbellConfig::correct(2, 2),
        DoorbellConfig::correct(2, 3),
    ]
}

/// Planted doorbell bugs the gate must catch: parking without the
/// under-mutex epoch re-check (ring between "check empty" and "park" is
/// lost) and ringing only on a stale empty->non-empty belief.
pub fn gate_doorbell_bug_configs() -> Vec<DoorbellConfig> {
    vec![
        DoorbellConfig {
            bursts: 2,
            batch: 1,
            variant: DoorbellVariant::ParkWithoutRecheck,
        },
        DoorbellConfig {
            bursts: 3,
            batch: 2,
            variant: DoorbellVariant::ParkWithoutRecheck,
        },
        DoorbellConfig {
            bursts: 2,
            batch: 1,
            variant: DoorbellVariant::EdgeOnlyRing,
        },
        DoorbellConfig {
            bursts: 3,
            batch: 2,
            variant: DoorbellVariant::EdgeOnlyRing,
        },
    ]
}

/// The pushdown fuel/termination configurations the binary and the
/// tier-1 gate run: the shipped verify-then-execute pipeline (PR 10)
/// must terminate within budget with every retired instruction charged,
/// over straight-line code, forward-branch chains, the `count_where`
/// skeleton shape, tight budgets that run out mid-flight, and a
/// backward-jump program the verifier must reject outright.
pub fn gate_fuel_configs() -> Vec<FuelConfig> {
    use FuelInsn::{Br, Fall, Halt};
    vec![
        FuelConfig::correct(vec![Fall, Fall, Fall, Halt], 8),
        // The count_where_u32_eq skeleton: load, branch, two exits.
        FuelConfig::correct(vec![Fall, Br(1), Halt, Fall, Halt], 8),
        // Forward branch chain, including a zero-offset branch.
        FuelConfig::correct(vec![Br(2), Fall, Fall, Br(0), Halt], 16),
        // Tight fuel: the meter stops the program mid-flight, gracefully.
        FuelConfig::correct(vec![Fall, Fall, Fall, Fall, Halt], 2),
        // Backward jump under the correct pipeline: the verifier rejects
        // it before execution — that *is* the safe outcome.
        FuelConfig::correct(vec![Fall, Br(-2), Halt], 16),
    ]
}

/// Planted pushdown bugs the gate must catch: a verifier that lets a
/// backward jump through (forward progress lost) and an interpreter that
/// skips the fuel charge on taken branches (tenant under-billed, budget
/// no longer bounds work).
pub fn gate_fuel_bug_configs() -> Vec<FuelConfig> {
    use FuelInsn::{Br, Halt};
    vec![
        FuelConfig {
            program: vec![Br(-1), Halt],
            fuel: 16,
            variant: FuelVariant::BackwardJumpAccepted,
        },
        FuelConfig {
            program: vec![Br(1), Halt, Halt],
            fuel: 8,
            variant: FuelVariant::FuelNotChargedOnTakenBranch,
        },
    ]
}

/// The journal-protocol configurations the binary and the tier-1 gate
/// run: the shipped two-write commit protocol at 1–3 transactions, with
/// and without the silent-tear device fault, must survive every crash
/// point with a prefix-consistent, exactly-once, corruption-free
/// recovery.
pub fn gate_journal_configs() -> Vec<JournalConfig> {
    vec![
        JournalConfig::correct(1, false),
        JournalConfig::correct(2, true),
        JournalConfig::correct(3, true),
    ]
}

/// Planted journal bugs the gate must catch: acking before the commit
/// record lands, a replay loop without idempotence bookkeeping, and a
/// recovery that skips the payload CRC on torn records.
pub fn gate_journal_bug_configs() -> Vec<JournalConfig> {
    vec![
        JournalConfig {
            txns: 2,
            allow_silent_tear: false,
            variant: JournalVariant::LostCommit,
        },
        JournalConfig {
            txns: 2,
            allow_silent_tear: false,
            variant: JournalVariant::ReplayTwice,
        },
        JournalConfig {
            txns: 2,
            allow_silent_tear: true,
            variant: JournalVariant::TornCrcAccept,
        },
    ]
}

/// The buggy-variant configurations the gate uses to prove the checker
/// still detects each bug class (a checker that stops failing on known
/// bugs is itself broken).
pub fn gate_mc_bug_configs() -> Vec<McConfig> {
    vec![
        McConfig {
            cap: 2,
            pushes: 4,
            pops: 4,
            start: 0,
            stale_reads: false,
            batch: 1,
            variant: Variant::FullCheckOffByOne,
        },
        McConfig {
            cap: 2,
            pushes: 3,
            pops: 3,
            start: 0,
            stale_reads: false,
            batch: 1,
            variant: Variant::AdvanceHeadBeforeRead,
        },
        McConfig {
            cap: 2,
            pushes: 1,
            pops: 1,
            start: 0,
            stale_reads: false,
            batch: 1,
            variant: Variant::MissingPublish,
        },
        McConfig {
            cap: 4,
            pushes: 3,
            pops: 3,
            start: 0,
            stale_reads: false,
            batch: 3,
            variant: Variant::BatchPublishEarly,
        },
    ]
}
