//! Lock-discipline lint: the static half of **lockcheck**.
//!
//! PR 5 fixed two lock bugs that only human review caught — a
//! self-deadlock from re-acquiring a non-reentrant shard mutex inside
//! `PageCache::write`'s pool-dry path, and torn multi-chunk `ShMem` reads
//! from unordered chunk-lock acquisition. The repaired invariants lived
//! only in comments. This lint makes them machine-checked:
//!
//! 1. Every lock acquisition in the governed crates (a `.lock()`, an
//!    argument-less `.read()`/`.write()` on an `RwLock`, or a virtual
//!    `Resource::acquire`) must carry a `// lock-class: <name>`
//!    annotation naming a class in the workspace registry
//!    ([`crate::lint::Config::labstor`]).
//! 2. Classes form a declared total order by rank. Acquiring a class
//!    whose rank is ≤ a class already held (statically, within one
//!    function extent) is an order violation.
//! 3. Acquiring a class that is already held is a re-entry violation
//!    unless the class is declared `nest_within` (same-class nesting in
//!    ascending instance order, e.g. the ShMem chunk sweep).
//!
//! Held-class tracking is a deliberately conservative line-oriented
//! approximation: a guard bound with `let g = x.lock()` is held until
//! `drop(g)`, a rebind, or its brace scope closes; an unbound acquisition
//! (`x.lock().push(..)`) is treated as released at the end of its
//! statement. Calls to same-file functions propagate the callee's
//! (transitively) acquired classes to the call site — that is what
//! catches the PR 5 shape, where `write` held the shard lock across
//! `alloc_page`, whose pool-dry fallback locks the same shard class.
//! The approximation under-reports holds (never false-positives on
//! releases); the runtime lock witness (`labstor_ipc::lockwitness`)
//! covers what the static view cannot see.

use std::collections::{HashMap, HashSet};

use crate::lint::{Config, Diagnostic, Lint};
use crate::scan::SourceFile;

/// One entry of the workspace lock-class registry.
#[derive(Debug, Clone, Copy)]
pub struct LockClassSpec {
    /// Registry name carried by `// lock-class:` annotations.
    pub name: &'static str,
    /// Position in the declared acquisition order (acquire ascending).
    pub rank: u16,
    /// Same-class nesting permitted (multi-instance, ascending order).
    pub nest_within: bool,
    /// A virtual-time [`Resource`] (annotation required, never held — a
    /// reservation returns a time window, not a guard).
    pub virtual_only: bool,
}

impl LockClassSpec {
    /// A plain non-reentrant lock class.
    pub const fn lock(name: &'static str, rank: u16) -> Self {
        LockClassSpec {
            name,
            rank,
            nest_within: false,
            virtual_only: false,
        }
    }

    /// A class whose instances may nest in ascending order.
    pub const fn ordered(name: &'static str, rank: u16) -> Self {
        LockClassSpec {
            name,
            rank,
            nest_within: true,
            virtual_only: false,
        }
    }

    /// A virtual-time resource class (annotation-only).
    pub const fn resource(name: &'static str) -> Self {
        LockClassSpec {
            name,
            rank: u16::MAX,
            nest_within: false,
            virtual_only: true,
        }
    }
}

/// The marker every acquisition site must carry.
pub const LOCK_CLASS_MARKER: &str = "lock-class:";

/// One acquisition site found in a function body.
#[derive(Debug, Clone)]
struct Acquire {
    /// 0-based line index.
    line: usize,
    /// Brace depth at the start of the line (relative to the file).
    depth: i64,
    /// Resolved class name, if annotated and registered.
    class: Option<&'static str>,
    /// Binding that owns the guard (`let g = …` / `g = …`); `None` for a
    /// statement-temporary guard, released at end of statement.
    binding: Option<String>,
    /// The matched acquisition pattern (diagnostics).
    pattern: &'static str,
    /// True for a virtual `Resource::acquire` (never held).
    is_virtual: bool,
}

/// Run the lock-discipline lint over one preprocessed file.
pub fn lint_lock_discipline(cfg: &Config, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
    if !cfg.lock_paths.iter().any(|p| file.name.contains(p)) {
        return;
    }
    let registry: HashMap<&str, &LockClassSpec> =
        cfg.lock_classes.iter().map(|c| (c.name, c)).collect();

    // Pass 0: per-line brace depth at line start.
    let mut depth_at: Vec<i64> = Vec::with_capacity(file.lines.len());
    let mut depth: i64 = 0;
    for line in &file.lines {
        depth_at.push(depth);
        for ch in line.code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
    }

    // Pass 1: every acquisition site in the file — annotation checks plus
    // the per-function direct-acquisition map.
    let fns = file.fn_items();
    let mut sites: Vec<Acquire> = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let Some((pattern, is_virtual)) = acquisition_on(&line.code) else {
            continue;
        };
        let class = match file.annotation_value(idx, LOCK_CLASS_MARKER) {
            None => {
                diags.push(Diagnostic {
                    file: file.name.clone(),
                    line: idx + 1,
                    lint: Lint::LockAnnotation,
                    message: format!(
                        "{pattern} without `// lock-class: <name>` (register the class and \
                         its rank in labcheck's lock registry — DESIGN.md §7)"
                    ),
                });
                None
            }
            // `(caller)`: delegation inside a lock wrapper (OrderedMutex/
            // OrderedRwLock) whose class is supplied by the caller at
            // construction — the annotated call site in the caller is what
            // the discipline governs; the wrapper's inner acquire is skipped.
            Some(name) if name == "(caller)" => continue,
            Some(name) => match registry.get(name.as_str()) {
                Some(spec) => Some(spec.name),
                None => {
                    diags.push(Diagnostic {
                        file: file.name.clone(),
                        line: idx + 1,
                        lint: Lint::LockAnnotation,
                        message: format!(
                            "lock-class `{name}` is not in the workspace registry \
                             (labcheck::lint::Config::labstor)"
                        ),
                    });
                    None
                }
            },
        };
        sites.push(Acquire {
            line: idx,
            depth: depth_at[idx],
            class,
            binding: guard_binding(&file.lines[idx].code),
            pattern,
            is_virtual,
        });
    }

    // Direct real-lock classes per function name (same-named fns merge —
    // conservative for files that reuse a method name across impl blocks).
    let mut direct: HashMap<String, HashSet<&'static str>> = HashMap::new();
    for (name, start, end) in &fns {
        let entry = direct.entry(name.clone()).or_default();
        for s in &sites {
            if s.line >= *start && s.line <= *end && !s.is_virtual {
                if let Some(c) = s.class {
                    entry.insert(c);
                }
            }
        }
    }
    // Transitive closure over same-file `self.f(..)` / `Self::f(..)` calls.
    let calls = call_graph(file, &fns);
    let acquired = transitive(&direct, &calls);

    // Pass 2: per-function held-class walk.
    for (fn_name, start, end) in &fns {
        walk_fn(
            cfg, file, &registry, &sites, &acquired, &calls, &depth_at, fn_name, *start, *end,
            diags,
        );
    }
}

/// The acquisition pattern on a code line, if any: `(.lock() | .read() |
/// .write() | .acquire()` as a method call. `.read()`/`.write()` only
/// count with empty argument lists — with arguments they are I/O methods,
/// not `RwLock` guards.
fn acquisition_on(code: &str) -> Option<(&'static str, bool)> {
    if code.contains(".acquire(") {
        return Some((".acquire(..)", true));
    }
    if code.contains(".lock()") {
        return Some((".lock()", false));
    }
    if code.contains(".read()") {
        return Some((".read()", false));
    }
    if code.contains(".write()") {
        return Some((".write()", false));
    }
    None
}

/// The binding that will own the guard produced on this line: `let g =`,
/// `let mut g =`, or a plain rebind `g = …`. `None` when the guard is a
/// statement temporary (no binding) or the binding is a non-guard pattern
/// (tuples — `Resource::acquire` time windows).
fn guard_binding(code: &str) -> Option<String> {
    // A `*` between the `=` and the acquisition derefs the guard in place
    // (`let v = std::mem::take(&mut *m.lock());`): the binding takes the
    // extracted value and the guard itself dies at the statement's end.
    fn rhs_keeps_guard(rhs: &str) -> bool {
        let end = [".lock()", ".read()", ".write()"]
            .iter()
            .filter_map(|p| rhs.find(p))
            .min()
            .unwrap_or(rhs.len());
        !rhs[..end].contains('*')
    }
    let t = code.trim_start();
    let rest = if let Some(r) = t.strip_prefix("let mut ") {
        r
    } else if let Some(r) = t.strip_prefix("let ") {
        r
    } else {
        // Plain rebind: `g = x.lock();`
        let ident: String = t
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let after = t[ident.len()..].trim_start();
        if !ident.is_empty()
            && after.starts_with('=')
            && !after.starts_with("==")
            && rhs_keeps_guard(&after[1..])
        {
            return Some(ident);
        }
        return None;
    };
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let after = rest[ident.len()..].trim_start();
    if ident.is_empty() {
        return None;
    }
    if after.starts_with('=') && !after.starts_with("==") {
        return rhs_keeps_guard(&after[1..]).then_some(ident);
    }
    // Type-ascribed binding: `let guards: Vec<_> = …`.
    (after.starts_with(':')
        && after
            .split_once(" = ")
            .is_some_and(|(_, rhs)| rhs_keeps_guard(rhs)))
    .then_some(ident)
}

/// Same-file call graph: for each function extent, the set of same-file
/// functions invoked as `self.f(` or `Self::f(`.
fn call_graph(
    file: &SourceFile,
    fns: &[(String, usize, usize)],
) -> HashMap<String, HashSet<String>> {
    let names: HashSet<&str> = fns.iter().map(|(n, _, _)| n.as_str()).collect();
    let mut graph: HashMap<String, HashSet<String>> = HashMap::new();
    for (name, start, end) in fns {
        let entry = graph.entry(name.clone()).or_default();
        for idx in *start..=*end {
            for callee in line_calls(&file.lines[idx].code) {
                if names.contains(callee.as_str()) && callee != *name {
                    entry.insert(callee);
                }
            }
        }
    }
    graph
}

/// Same-file callees invoked on this line via `self.f(` or `Self::f(`.
fn line_calls(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for prefix in ["self.", "Self::"] {
        let mut from = 0;
        while let Some(pos) = code[from..].find(prefix) {
            let abs = from + pos + prefix.len();
            from = abs;
            let ident: String = code[abs..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !ident.is_empty() && code[abs + ident.len()..].starts_with('(') {
                out.push(ident);
            }
        }
    }
    out
}

/// Transitive closure of per-function acquired classes over the call
/// graph (fixpoint; cycles converge).
fn transitive(
    direct: &HashMap<String, HashSet<&'static str>>,
    calls: &HashMap<String, HashSet<String>>,
) -> HashMap<String, HashSet<&'static str>> {
    let mut acquired = direct.clone();
    loop {
        let mut changed = false;
        for (caller, callees) in calls {
            let mut add: HashSet<&'static str> = HashSet::new();
            for callee in callees {
                if let Some(set) = acquired.get(callee) {
                    add.extend(set.iter().copied());
                }
            }
            let entry = acquired.entry(caller.clone()).or_default();
            for c in add {
                changed |= entry.insert(c);
            }
        }
        if !changed {
            return acquired;
        }
    }
}

/// A guard held at some point of the walk.
struct Held {
    class: &'static str,
    rank: u16,
    nest_within: bool,
    depth: i64,
    binding: Option<String>,
    line: usize,
}

/// Walk one function extent tracking held guards; emit order/re-entry
/// diagnostics for direct acquisitions and for calls to same-file
/// functions that (transitively) acquire a conflicting class.
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    _cfg: &Config,
    file: &SourceFile,
    registry: &HashMap<&str, &LockClassSpec>,
    sites: &[Acquire],
    acquired: &HashMap<String, HashSet<&'static str>>,
    calls: &HashMap<String, HashSet<String>>,
    depth_at: &[i64],
    fn_name: &str,
    start: usize,
    end: usize,
    diags: &mut Vec<Diagnostic>,
) {
    let mut held: Vec<Held> = Vec::new();
    let by_line: HashMap<usize, &Acquire> = sites
        .iter()
        .filter(|s| s.line >= start && s.line <= end)
        .map(|s| (s.line, s))
        .collect();
    // The index walks three parallel per-line tables (lines, depth_at,
    // by_line), so a range loop reads better than chained enumerates.
    #[allow(clippy::needless_range_loop)]
    for idx in start..=end {
        let line = &file.lines[idx];
        if line.in_test {
            continue;
        }
        // Scope exits release guards acquired at deeper depth.
        held.retain(|h| depth_at[idx] >= h.depth);
        // Explicit `drop(g)` releases by binding.
        for dropped in drop_calls(&line.code) {
            held.retain(|h| h.binding.as_deref() != Some(dropped.as_str()));
        }
        // Calls into same-file functions carry their acquisitions here.
        if !held.is_empty() {
            for callee in line_calls(&line.code) {
                if !calls.contains_key(&callee) && !acquired.contains_key(&callee) {
                    continue;
                }
                let Some(callee_classes) = acquired.get(&callee) else {
                    continue;
                };
                for c in callee_classes {
                    let spec = registry[c];
                    check_against_held(
                        file,
                        idx,
                        &held,
                        c,
                        spec,
                        &format!("call to `{callee}` (which acquires `{c}`)"),
                        diags,
                    );
                }
            }
        }
        // Direct acquisition on this line.
        if let Some(site) = by_line.get(&idx) {
            if let Some(class) = site.class {
                let spec = registry[class];
                if !site.is_virtual {
                    check_against_held(
                        file,
                        idx,
                        &held,
                        class,
                        spec,
                        &format!("{} of `{class}`", site.pattern),
                        diags,
                    );
                    // Rebinds replace the old guard before tracking the new.
                    if let Some(b) = &site.binding {
                        held.retain(|h| h.binding.as_deref() != Some(b.as_str()));
                        held.push(Held {
                            class,
                            rank: spec.rank,
                            nest_within: spec.nest_within,
                            // The guard lives in the scope containing the
                            // statement; released when depth drops below.
                            depth: site.depth,
                            binding: Some(b.clone()),
                            line: idx,
                        });
                    }
                    // Unbound guards die at end of statement: not tracked.
                }
            }
        }
    }
    let _ = fn_name;
}

/// Order/re-entry checks for acquiring `class` while `held` are held.
fn check_against_held(
    file: &SourceFile,
    idx: usize,
    held: &[Held],
    class: &'static str,
    spec: &LockClassSpec,
    what: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for h in held {
        if h.class == class {
            if !spec.nest_within || !h.nest_within {
                diags.push(Diagnostic {
                    file: file.name.clone(),
                    line: idx + 1,
                    lint: Lint::LockReentry,
                    message: format!(
                        "{what} while `{class}` is already held (acquired line {}) — \
                         the class is non-reentrant; release first or declare the \
                         class nest_within",
                        h.line + 1
                    ),
                });
            }
        } else if spec.rank <= h.rank {
            diags.push(Diagnostic {
                file: file.name.clone(),
                line: idx + 1,
                lint: Lint::LockOrder,
                message: format!(
                    "{what} violates the declared lock order: `{}` (rank {}) is \
                     held (acquired line {}) and `{class}` has rank {} — acquire \
                     classes in ascending rank",
                    h.class,
                    h.rank,
                    h.line + 1,
                    spec.rank
                ),
            });
        }
    }
}

/// Bindings released by `drop(g)` calls on this line.
fn drop_calls(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find("drop(") {
        let abs = from + pos;
        from = abs + 5;
        // `drop` must be a standalone call, not `.drop(` or `x_drop(`.
        let before = code[..abs].chars().next_back();
        if matches!(before, Some(c) if c.is_alphanumeric() || c == '_' || c == '.') {
            continue;
        }
        let ident: String = code[abs + 5..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !ident.is_empty() && code[abs + 5 + ident.len()..].starts_with(')') {
            out.push(ident);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::lint::{lint_source, Config, Lint};

    fn lock_cfg() -> Config {
        let mut cfg = Config::labstor();
        // Fixtures pretend to live in a governed crate.
        cfg.lock_paths.push("fixtures/");
        cfg
    }

    fn lints_of(src: &str) -> Vec<(Lint, usize)> {
        lint_source(&lock_cfg(), "fixtures/locks.rs", src)
            .into_iter()
            .map(|d| (d.lint, d.line))
            .collect()
    }

    #[test]
    fn unannotated_acquisition_flagged() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n    g.push(1);\n}";
        assert_eq!(lints_of(src), vec![(Lint::LockAnnotation, 2)]);
    }

    #[test]
    fn annotated_acquisition_clean() {
        let src = "fn f(&self) {\n    let g = self.m.lock(); // lock-class: pagecache.shard\n    g.push(1);\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn unknown_class_flagged() {
        let src = "fn f(&self) {\n    let g = self.m.lock(); // lock-class: no.such.class\n}";
        assert_eq!(lints_of(src), vec![(Lint::LockAnnotation, 2)]);
    }

    #[test]
    fn order_violation_within_fn() {
        // pool.tracker outranks pagecache.shard: acquiring the shard while
        // the tracker is held inverts the declared order.
        let src = "fn f(&self) {\n    let t = self.tracker.lock(); // lock-class: pool.tracker\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n    drop(s);\n    drop(t);\n}";
        assert_eq!(lints_of(src), vec![(Lint::LockOrder, 3)]);
    }

    #[test]
    fn ascending_order_clean() {
        let src = "fn f(&self) {\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n    let t = self.tracker.lock(); // lock-class: pool.tracker\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn reentry_on_nonreentrant_class() {
        let src = "fn f(&self) {\n    let a = self.shard_a.lock(); // lock-class: pagecache.shard\n    let b = self.shard_b.lock(); // lock-class: pagecache.shard\n}";
        assert_eq!(lints_of(src), vec![(Lint::LockReentry, 3)]);
    }

    #[test]
    fn nest_within_class_may_nest() {
        let src = "fn f(&self) {\n    let a = self.chunks[0].write(); // lock-class: shmem.chunk\n    let b = self.chunks[1].write(); // lock-class: shmem.chunk\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn drop_releases_guard() {
        let src = "fn f(&self) {\n    let t = self.tracker.lock(); // lock-class: pool.tracker\n    drop(t);\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn scope_exit_releases_guard() {
        let src = "fn f(&self) {\n    {\n        let t = self.tracker.lock(); // lock-class: pool.tracker\n    }\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn temporary_guard_not_held() {
        // An unbound guard dies at end of statement: the next acquisition
        // is not nested under it.
        let src = "fn f(&self) {\n    self.tracker.lock().insert(1); // lock-class: pool.tracker\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn deref_extraction_not_held() {
        // `std::mem::take(&mut *m.lock())` derefs the guard in place; the
        // binding owns the extracted value, not the guard.
        let src = "fn f(&self) {\n    let batch: Vec<u8> = std::mem::take(&mut *self.tracker.lock()); // lock-class: pool.tracker\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n    s.touch(batch);\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn pr5_shape_call_under_held_lock_flagged() {
        // The exact PR 5 bug: `write` holds the shard lock and calls
        // `alloc_page`, whose pool-dry fallback locks the same shard
        // class. The call-site check catches it interprocedurally.
        let src = "\
fn alloc_page(&self) -> Buf {
    let inner = self.shard.lock(); // lock-class: pagecache.shard
    inner.shed()
}
fn write(&self) {
    let mut inner = self.shard.lock(); // lock-class: pagecache.shard
    if inner.full() {
        let fresh = self.alloc_page();
        inner.insert(fresh);
    }
}";
        assert_eq!(lints_of(src), vec![(Lint::LockReentry, 8)]);
    }

    #[test]
    fn pr5_fixed_shape_clean() {
        // The shipped fix: drop the guard before allocating, re-lock after.
        let src = "\
fn alloc_page(&self) -> Buf {
    let inner = self.shard.lock(); // lock-class: pagecache.shard
    inner.shed()
}
fn write(&self) {
    let mut inner = self.shard.lock(); // lock-class: pagecache.shard
    if inner.full() {
        drop(inner);
        let fresh = self.alloc_page();
        inner = self.shard.lock(); // lock-class: pagecache.shard
        inner.insert(fresh);
    }
}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn virtual_resource_requires_annotation_but_never_holds() {
        let src = "fn f(&self) {\n    let (_, end) = self.res.acquire(now, 100);\n}";
        assert_eq!(lints_of(src), vec![(Lint::LockAnnotation, 2)]);
        let ok = "fn f(&self) {\n    let (_, end) = self.res.acquire(now, 100); // lock-class: pagecache.maplock\n    let s = self.shard.lock(); // lock-class: pagecache.shard\n}";
        assert!(lints_of(ok).is_empty());
    }

    #[test]
    fn io_read_write_with_args_not_acquisitions() {
        let src = "fn f(&self) {\n    self.handle.read(10, &mut buf).unwrap();\n    self.handle.write(0, &buf).unwrap();\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn test_code_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(&self) {\n        let g = self.m.lock();\n    }\n}";
        assert!(lints_of(src).is_empty());
    }

    #[test]
    fn ungoverned_path_exempt() {
        let cfg = Config::labstor();
        let src = "fn f(&self) {\n    let g = self.m.lock();\n}";
        assert!(lint_source(&cfg, "crates/mods/src/lru.rs", src)
            .iter()
            .all(|d| d.lint != Lint::LockAnnotation));
    }
}
