//! Exhaustive model check for the pushdown execution model
//! (`labstor_pushdown`): **every verified program terminates within its
//! fuel budget, and every retired step is charged**.
//!
//! The real interpreter's safety argument has two independent legs:
//!
//! 1. **Forward-only jumps** — the verifier rejects negative offsets, so
//!    `pc` strictly increases and a program of `n` instructions retires
//!    at most `n` per record, fuel or no fuel.
//! 2. **Fuel charged before every instruction** — including taken
//!    branches, so `budget − fuel == steps` at all times and the tenant
//!    token bucket bills exactly what executed.
//!
//! This checker abstracts the ISA to the three shapes that matter for
//! control flow — fall-through, halt, and a *nondeterministic*
//! conditional branch — and BFS-explores both outcomes of every branch.
//! The model mirrors the shipped pipeline: a verifier step first (reject
//! backward offsets), then exhaustive execution with two invariants
//! checked on every transition. Two planted bugs prove the checker has
//! teeth:
//!
//! - [`FuelVariant::BackwardJumpAccepted`] — the verifier lets a
//!   negative offset through. A taken backward branch loops, `steps`
//!   exceeds the program length, and the forward-progress invariant
//!   ([`FuelViolation::Runaway`]) fires.
//! - [`FuelVariant::FuelNotChargedOnTakenBranch`] — the interpreter
//!   charges fall-throughs but skips the charge when a branch is taken
//!   (the classic "charge at the top of the loop, branch out the
//!   bottom" slip). The first taken branch desynchronizes `steps` from
//!   `budget − fuel` and [`FuelViolation::FuelLeak`] fires.

use std::collections::{HashMap, HashSet, VecDeque};

/// Execution-model variant under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelVariant {
    /// The shipped pipeline: backward jumps rejected, every retired
    /// instruction (taken branches included) charged one fuel unit.
    Correct,
    /// Planted bug: the verifier accepts a negative branch offset, so a
    /// loop becomes expressible and forward progress is lost.
    BackwardJumpAccepted,
    /// Planted bug: taken branches retire without a fuel charge, so the
    /// tenant is under-billed and the budget no longer bounds work.
    FuelNotChargedOnTakenBranch,
}

/// Abstracted instruction: just the control-flow shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelInsn {
    /// Straight-line instruction (load/alu/mov): `pc + 1`.
    Fall,
    /// Conditional branch with a relative offset from the *next*
    /// instruction; the model explores both taken and untaken outcomes.
    Br(i8),
    /// Return: execution ends.
    Halt,
}

/// Model-checker configuration: a program, a fuel budget, a variant.
#[derive(Debug, Clone)]
pub struct FuelConfig {
    /// The abstracted program.
    pub program: Vec<FuelInsn>,
    /// Fuel budget for one execution.
    pub fuel: u8,
    /// Pipeline variant under test.
    pub variant: FuelVariant,
}

impl FuelConfig {
    /// The shipped pipeline over a given program and budget.
    pub fn correct(program: Vec<FuelInsn>, fuel: u8) -> Self {
        FuelConfig {
            program,
            fuel,
            variant: FuelVariant::Correct,
        }
    }
}

/// Invariant violation detected on a transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuelViolation {
    /// Forward progress lost: more instructions retired than the program
    /// has — only a backward jump can do that.
    Runaway {
        /// Instructions retired when the bound broke.
        steps: u8,
    },
    /// Fuel accounting desynchronized from retirement: `budget − fuel`
    /// no longer equals the instructions retired.
    FuelLeak {
        /// Instructions retired.
        steps: u8,
        /// Fuel units actually charged.
        charged: u8,
    },
}

/// A violation plus the execution path that reaches it.
#[derive(Debug, Clone)]
pub struct FuelFailure {
    /// What went wrong.
    pub violation: FuelViolation,
    /// Step labels from the initial state to the violating state.
    pub trace: Vec<String>,
}

impl std::fmt::Display for FuelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {:?}", self.violation)?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {step}", i + 1)?;
        }
        Ok(())
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct FuelReport {
    /// Distinct execution states reached.
    pub states: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// Distinct terminal states (program done or out of fuel — both
    /// graceful).
    pub terminals: usize,
    /// The model verifier rejected the program before execution (a
    /// correct outcome for programs with backward jumps).
    pub rejected: bool,
}

/// One execution state. `charged` is tracked separately from `steps`
/// precisely so the two can disagree under the planted charging bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    /// Program counter.
    pc: u8,
    /// Fuel remaining.
    fuel: u8,
    /// Instructions retired.
    steps: u8,
}

/// Run the model verifier, then exhaustively explore every execution
/// (both outcomes of each branch). `Ok` carries statistics; `Err`
/// carries the first invariant violation plus the path to it.
pub fn explore_fuel(cfg: &FuelConfig) -> Result<FuelReport, FuelFailure> {
    let len = cfg.program.len() as u8;

    // ---- verifier step ---------------------------------------------------
    // The shipped verifier rejects negative offsets; the planted
    // BackwardJumpAccepted bug waves them through.
    if cfg.variant != FuelVariant::BackwardJumpAccepted {
        let backward = cfg
            .program
            .iter()
            .any(|insn| matches!(insn, FuelInsn::Br(off) if *off < 0));
        if backward {
            return Ok(FuelReport {
                states: 0,
                transitions: 0,
                terminals: 0,
                rejected: true,
            });
        }
    }

    let init = State {
        pc: 0,
        fuel: cfg.fuel,
        steps: 0,
    };
    let mut visited: HashSet<State> = HashSet::new();
    let mut parent: HashMap<State, (State, String)> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    visited.insert(init);
    queue.push_back(init);
    let mut transitions = 0usize;
    let mut terminals = 0usize;

    let visit = |n: State,
                 from: State,
                 label: String,
                 visited: &mut HashSet<State>,
                 parent: &mut HashMap<State, (State, String)>,
                 queue: &mut VecDeque<State>| {
        if visited.insert(n) {
            parent.insert(n, (from, label));
            queue.push_back(n);
        }
    };

    // Check both invariants on a candidate successor state.
    let check = |n: &State| -> Option<FuelViolation> {
        if n.steps > len {
            // Forward-only jumps bound retirement by program length.
            return Some(FuelViolation::Runaway { steps: n.steps });
        }
        let charged = cfg.fuel - n.fuel;
        if charged != n.steps {
            return Some(FuelViolation::FuelLeak {
                steps: n.steps,
                charged,
            });
        }
        None
    };

    while let Some(s) = queue.pop_front() {
        // Graceful terminals: fell off the end / explicit halt parked at
        // pc == len, or the fuel meter stopped the program mid-flight.
        if s.pc >= len || s.fuel == 0 {
            terminals += 1;
            continue;
        }
        let insn = cfg.program[s.pc as usize];
        match insn {
            FuelInsn::Fall | FuelInsn::Halt => {
                transitions += 1;
                let mut n = s;
                n.fuel -= 1;
                n.steps = n.steps.saturating_add(1);
                n.pc = if insn == FuelInsn::Halt {
                    len
                } else {
                    s.pc + 1
                };
                let label = format!(
                    "pc {}: {} (fuel -> {})",
                    s.pc,
                    if insn == FuelInsn::Halt {
                        "halt"
                    } else {
                        "fall"
                    },
                    n.fuel
                );
                if let Some(v) = check(&n) {
                    return Err(fail(v, &n, s, label, &parent));
                }
                visit(n, s, label, &mut visited, &mut parent, &mut queue);
            }
            FuelInsn::Br(off) => {
                // Untaken: ordinary retire.
                transitions += 1;
                let mut u = s;
                u.fuel -= 1;
                u.steps = u.steps.saturating_add(1);
                u.pc = s.pc + 1;
                let label = format!("pc {}: branch untaken (fuel -> {})", s.pc, u.fuel);
                if let Some(v) = check(&u) {
                    return Err(fail(v, &u, s, label, &parent));
                }
                visit(u, s, label, &mut visited, &mut parent, &mut queue);

                // Taken: retire to the target. The planted charging bug
                // skips the fuel debit on exactly this edge.
                transitions += 1;
                let mut t = s;
                if cfg.variant != FuelVariant::FuelNotChargedOnTakenBranch {
                    t.fuel -= 1;
                }
                t.steps = t.steps.saturating_add(1);
                let target = i16::from(s.pc) + 1 + i16::from(off);
                t.pc = target.clamp(0, i16::from(len)) as u8;
                let label = format!("pc {}: branch taken -> {} (fuel -> {})", s.pc, t.pc, t.fuel);
                if let Some(v) = check(&t) {
                    return Err(fail(v, &t, s, label, &parent));
                }
                visit(t, s, label, &mut visited, &mut parent, &mut queue);
            }
        }
    }

    Ok(FuelReport {
        states: visited.len(),
        transitions,
        terminals,
        rejected: false,
    })
}

/// Build a failure: the violating step plus the path reconstructed from
/// the parent map.
fn fail(
    violation: FuelViolation,
    _at: &State,
    from: State,
    last_label: String,
    parent: &HashMap<State, (State, String)>,
) -> FuelFailure {
    let mut trace = vec![last_label];
    let mut cur = from;
    while let Some((prev, label)) = parent.get(&cur) {
        trace.push(label.clone());
        cur = *prev;
    }
    trace.reverse();
    FuelFailure { violation, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FuelInsn::{Br, Fall, Halt};

    #[test]
    fn correct_programs_terminate_fully_charged() {
        let shapes: Vec<(Vec<FuelInsn>, u8)> = vec![
            (vec![Fall, Fall, Halt], 8),
            // The count_where skeleton shape: load, branch, two exits.
            (vec![Fall, Br(1), Halt, Fall, Halt], 8),
            // Forward branch chains.
            (vec![Br(2), Fall, Fall, Br(0), Halt], 16),
            // Tight fuel: runs out mid-flight, still graceful + charged.
            (vec![Fall, Fall, Fall, Fall, Halt], 2),
        ];
        for (program, fuel) in shapes {
            let report = explore_fuel(&FuelConfig::correct(program.clone(), fuel))
                .unwrap_or_else(|f| panic!("{program:?} must verify-and-terminate: {f}"));
            assert!(!report.rejected);
            assert!(report.terminals >= 1);
            assert!(report.states > 1);
        }
    }

    #[test]
    fn backward_jump_is_rejected_by_the_verifier() {
        let report = explore_fuel(&FuelConfig::correct(vec![Fall, Br(-2), Halt], 16))
            .expect("rejection is the safe outcome");
        assert!(report.rejected, "verifier must reject the negative offset");
        assert_eq!(report.states, 0);
    }

    #[test]
    fn accepted_backward_jump_breaks_forward_progress() {
        let failure = explore_fuel(&FuelConfig {
            program: vec![Br(-1), Halt],
            fuel: 16,
            variant: FuelVariant::BackwardJumpAccepted,
        })
        .expect_err("the loop must trip the retirement bound");
        assert!(
            matches!(failure.violation, FuelViolation::Runaway { steps } if steps > 2),
            "expected Runaway, got {:?}",
            failure.violation
        );
        assert!(!failure.trace.is_empty());
    }

    #[test]
    fn uncharged_taken_branch_leaks_fuel() {
        let failure = explore_fuel(&FuelConfig {
            program: vec![Br(1), Halt, Halt],
            fuel: 8,
            variant: FuelVariant::FuelNotChargedOnTakenBranch,
        })
        .expect_err("the first taken branch must desynchronize the meter");
        assert!(
            matches!(
                failure.violation,
                FuelViolation::FuelLeak { steps, charged } if charged < steps
            ),
            "expected FuelLeak, got {:?}",
            failure.violation
        );
    }

    #[test]
    fn fuel_bug_still_caught_when_loop_also_possible() {
        // Both bugs planted at once: whichever invariant trips first
        // must still be caught (the checker is not order-sensitive).
        let failure = explore_fuel(&FuelConfig {
            program: vec![Br(1), Fall, Halt],
            fuel: 4,
            variant: FuelVariant::FuelNotChargedOnTakenBranch,
        })
        .expect_err("must catch the leak");
        assert!(matches!(failure.violation, FuelViolation::FuelLeak { .. }));
    }
}
