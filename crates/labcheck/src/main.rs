//! `labcheck` binary: lint the workspace, then model-check the SPSC ring,
//! the refcount-release protocol, and the lock-acquisition discipline.
//!
//! Usage: `cargo run -p labstor-labcheck [--json] [--report <path>]
//! [--lints-only | --mc-only]`
//!
//! Exit status 0 means the workspace is clean and every model-checker run
//! behaved (correct variants pass exhaustively, planted bugs are caught);
//! anything else exits 1 with `file:line` diagnostics (or a JSON array
//! with `--json`) and/or a counterexample schedule. `--report` writes the
//! lint diagnostics as JSON to a file regardless of the console format —
//! CI uploads it as the `lockcheck-report` artifact.

use std::process::ExitCode;

use labstor_labcheck::{
    explore, explore_doorbell, explore_fuel, explore_journal, explore_lock, explore_rc,
    gate_doorbell_bug_configs, gate_doorbell_configs, gate_fuel_bug_configs, gate_fuel_configs,
    gate_journal_bug_configs, gate_journal_configs, gate_lock_bug_configs, gate_lock_configs,
    gate_mc_bug_configs, gate_mc_configs, gate_rc_bug_configs, gate_rc_configs, lint_workspace,
    render_json, render_text, workspace_root, Config,
};

fn main() -> ExitCode {
    let mut json = false;
    let mut lints_only = false;
    let mut mc_only = false;
    let mut report: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--lints-only" => lints_only = true,
            "--mc-only" => mc_only = true,
            "--report" => match args.next() {
                Some(path) => report = Some(path),
                None => {
                    eprintln!("labcheck: --report needs a file path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("labcheck: unknown argument `{other}`");
                eprintln!("usage: labcheck [--json] [--report <path>] [--lints-only | --mc-only]");
                return ExitCode::from(2);
            }
        }
    }

    if lints_only && mc_only {
        eprintln!("labcheck: --lints-only and --mc-only are mutually exclusive");
        eprintln!("usage: labcheck [--json] [--report <path>] [--lints-only | --mc-only]");
        return ExitCode::from(2);
    }

    let mut failed = false;

    if !mc_only {
        let root = workspace_root();
        match lint_workspace(&Config::labstor(), &root) {
            Ok(diags) => {
                if let Some(path) = &report {
                    if let Err(e) = std::fs::write(path, render_json(&diags)) {
                        eprintln!("labcheck: cannot write report {path}: {e}");
                        return ExitCode::from(2);
                    }
                }
                if json {
                    print!("{}", render_json(&diags));
                } else if diags.is_empty() {
                    println!("labcheck: lints clean ({})", root.display());
                } else {
                    print!("{}", render_text(&diags));
                    println!("labcheck: {} violation(s)", diags.len());
                }
                failed |= !diags.is_empty();
            }
            Err(e) => {
                eprintln!("labcheck: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }

    if !lints_only {
        for cfg in gate_mc_configs() {
            match explore(&cfg) {
                Ok(report) => {
                    if !json {
                        println!(
                            "labcheck: mc ok  cap={} ops={}/{} start={} stale={} \
                             ({} states, {} transitions, {} terminals)",
                            cfg.cap,
                            cfg.pushes,
                            cfg.pops,
                            cfg.start,
                            cfg.stale_reads,
                            report.states,
                            report.transitions,
                            report.terminals
                        );
                    }
                }
                Err(failure) => {
                    eprintln!("labcheck: mc FAILED on {cfg:?}\n{failure}");
                    failed = true;
                }
            }
        }
        // The planted-bug variants must *fail*: they prove the checker
        // still has teeth.
        for cfg in gate_mc_bug_configs() {
            if explore(&cfg).is_ok() {
                eprintln!("labcheck: mc MISSED planted bug {:?}", cfg.variant);
                failed = true;
            } else if !json {
                println!("labcheck: mc caught planted bug {:?}", cfg.variant);
            }
        }
        // Same for the buffer pool's refcount-release protocol.
        for cfg in gate_rc_configs() {
            match explore_rc(&cfg) {
                Ok(report) => {
                    if !json {
                        println!(
                            "labcheck: rc ok  clones={} ({} states, {} transitions, {} terminals)",
                            cfg.clones, report.states, report.transitions, report.terminals
                        );
                    }
                }
                Err(failure) => {
                    eprintln!("labcheck: rc FAILED on {cfg:?}\n{failure}");
                    failed = true;
                }
            }
        }
        for cfg in gate_rc_bug_configs() {
            if explore_rc(&cfg).is_ok() {
                eprintln!("labcheck: rc MISSED planted bug {:?}", cfg.variant);
                failed = true;
            } else if !json {
                println!("labcheck: rc caught planted bug {:?}", cfg.variant);
            }
        }
        // And for the lock-acquisition discipline (the PR 5 deadlock shape).
        for cfg in gate_lock_configs() {
            match explore_lock(&cfg) {
                Ok(report) => {
                    if !json {
                        println!(
                            "labcheck: lock ok  {:?} ({} states, {} transitions, {} terminals)",
                            cfg.variant, report.states, report.transitions, report.terminals
                        );
                    }
                }
                Err(failure) => {
                    eprintln!("labcheck: lock FAILED on {cfg:?}\n{failure}");
                    failed = true;
                }
            }
        }
        for cfg in gate_lock_bug_configs() {
            if explore_lock(&cfg).is_ok() {
                eprintln!("labcheck: lock MISSED planted bug {:?}", cfg.variant);
                failed = true;
            } else if !json {
                println!("labcheck: lock caught planted bug {:?}", cfg.variant);
            }
        }
        // And for the doorbell park/wake protocol (the PR 9 reactor's
        // liveness spine).
        for cfg in gate_doorbell_configs() {
            match explore_doorbell(&cfg) {
                Ok(report) => {
                    if !json {
                        println!(
                            "labcheck: doorbell ok  bursts={} batch={} \
                             ({} states, {} transitions, {} terminals)",
                            cfg.bursts,
                            cfg.batch,
                            report.states,
                            report.transitions,
                            report.terminals
                        );
                    }
                }
                Err(failure) => {
                    eprintln!("labcheck: doorbell FAILED on {cfg:?}\n{failure}");
                    failed = true;
                }
            }
        }
        for cfg in gate_doorbell_bug_configs() {
            if explore_doorbell(&cfg).is_ok() {
                eprintln!("labcheck: doorbell MISSED planted bug {:?}", cfg.variant);
                failed = true;
            } else if !json {
                println!("labcheck: doorbell caught planted bug {:?}", cfg.variant);
            }
        }
        // And for the journal commit protocol (the PR 8 crash-consistency
        // shape).
        for cfg in gate_journal_configs() {
            match explore_journal(&cfg) {
                Ok(report) => {
                    if !json {
                        println!(
                            "labcheck: journal ok  txns={} tear={} \
                             ({} states, {} transitions, {} recoveries)",
                            cfg.txns,
                            cfg.allow_silent_tear,
                            report.states,
                            report.transitions,
                            report.recoveries_checked
                        );
                    }
                }
                Err(failure) => {
                    eprintln!("labcheck: journal FAILED on {cfg:?}\n{failure}");
                    failed = true;
                }
            }
        }
        for cfg in gate_journal_bug_configs() {
            if explore_journal(&cfg).is_ok() {
                eprintln!("labcheck: journal MISSED planted bug {:?}", cfg.variant);
                failed = true;
            } else if !json {
                println!("labcheck: journal caught planted bug {:?}", cfg.variant);
            }
        }
        // And for the pushdown fuel/termination model (the PR 10
        // in-stack bytecode interpreter's safety spine).
        for cfg in gate_fuel_configs() {
            match explore_fuel(&cfg) {
                Ok(report) => {
                    if !json {
                        println!(
                            "labcheck: fuel ok  insns={} fuel={} rejected={} \
                             ({} states, {} transitions, {} terminals)",
                            cfg.program.len(),
                            cfg.fuel,
                            report.rejected,
                            report.states,
                            report.transitions,
                            report.terminals
                        );
                    }
                }
                Err(failure) => {
                    eprintln!("labcheck: fuel FAILED on {cfg:?}\n{failure}");
                    failed = true;
                }
            }
        }
        for cfg in gate_fuel_bug_configs() {
            if explore_fuel(&cfg).is_ok() {
                eprintln!("labcheck: fuel MISSED planted bug {:?}", cfg.variant);
                failed = true;
            } else if !json {
                println!("labcheck: fuel caught planted bug {:?}", cfg.variant);
            }
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
