#![warn(missing_docs)]

//! # labstor-qos (labtenant) — multi-tenant quality-of-service
//!
//! LabStor composes an I/O stack per application; this crate makes the
//! *application* a first-class policy object. Following PAIO's
//! software-defined storage argument (per-tenant data-plane policies —
//! rate limiting, prioritization — stacked over an unmodified data path),
//! a [`TenantId`] rides the existing `Credentials` handshake and policy is
//! enforced at three choke points that already exist:
//!
//! 1. **Admission** — [`TokenBucket`] rate limiting in `Client::submit`,
//!    charged in *virtual time* so simulated workloads are reproducible.
//!    Rejects are typed errors with a retry-after hint, never panics.
//! 2. **Memory** — per-tenant `BufferPool` byte quotas (in `labstor-ipc`)
//!    so a hog exhausts *its own* buffer budget, and pool-dry page-cache
//!    shedding evicts the offender's clean pages first.
//! 3. **Scheduling** — per-tenant virtual-time service counters feed a
//!    weighted-fair pass in the Work Orchestrator: a hostile tenant's
//!    queues are deprioritized, not starved, and latency-sensitive
//!    tenants keep their workers.
//!
//! The [`TenantTable`] is the registry: it owns declared policies
//! ([`TenantPolicy`]) and live accounting ([`TenantState`]), binds queue
//! ids to tenants for the orchestrator, and applies *hot* policy updates
//! through the same admin tick that drives live LabMod upgrades
//! ([`TenantTable::request_policy_update`] / [`TenantTable::apply_pending`]).
//!
//! ## Lock discipline
//!
//! `qos.tenants` (rank 36) nests after the runtime rebalance locks
//! (10–34) and strictly before every data-path lock (registry, pool,
//! page-cache shards, ≥ 40). `qos.bucket` (rank 38) nests inside a table
//! read. Shed attribution from page-cache shard context (rank 70) must
//! use the pool's lock-free tenant cells, never the table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use labstor_ipc::lockwitness::{OrderedMutex, OrderedRwLock, TENANT_BUCKET, TENANT_TABLE};
use labstor_ipc::TenantId;
use labstor_telemetry::LogHistogram;

/// Nanoseconds per second: the fixed-point scale of [`TokenBucket`]
/// accounting (one token = `NS_PER_SEC` token-nanoseconds).
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// Deadline class a tenant declares: how the orchestrator should read its
/// latency needs. Today this is advisory metadata exported with the
/// accounting (the weighted-fair pass uses `weight`); it reserves the slot
/// PAIO-style deadline scheduling plugs into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeadlineClass {
    /// No latency target: throughput-oriented, first to be deprioritized.
    #[default]
    BestEffort,
    /// Latency-sensitive: the tenant's p99 is the number the noisy-neighbor
    /// isolation gate watches.
    LatencySensitive,
    /// An explicit p99 target in virtual nanoseconds.
    Deadline {
        /// Target p99 completion latency (virtual ns).
        target_p99_ns: u64,
    },
}

/// Declared per-tenant policy: what the handshake (or an admin hot update)
/// attaches to a [`TenantId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Weighted-fair share weight. Service is normalized by this: a
    /// weight-2 tenant may consume twice the virtual service of a
    /// weight-1 tenant before the orchestrator deprioritizes it.
    /// Must be ≥ 1 (0 is clamped to 1).
    pub weight: u32,
    /// BufferPool byte quota (slab bytes reserved); 0 = unlimited.
    pub buf_quota_bytes: u64,
    /// Token-bucket refill rate in payload bytes per virtual second;
    /// 0 = unlimited (admission always passes).
    pub rate_bytes_per_sec: u64,
    /// Token-bucket burst capacity in payload bytes. Oversize requests
    /// (cost > burst) are clamped to the burst: they drain the bucket
    /// fully instead of livelocking.
    pub burst_bytes: u64,
    /// Advisory latency class (see [`DeadlineClass`]).
    pub deadline: DeadlineClass,
}

impl Default for TenantPolicy {
    /// The permissive default: weight 1, no quota, no rate limit.
    fn default() -> Self {
        TenantPolicy {
            weight: 1,
            buf_quota_bytes: 0,
            rate_bytes_per_sec: 0,
            burst_bytes: 0,
            deadline: DeadlineClass::BestEffort,
        }
    }
}

impl TenantPolicy {
    /// A rate-limited policy: `rate` bytes/s sustained, `burst` bytes of
    /// burst headroom.
    pub fn rate_limited(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        TenantPolicy {
            rate_bytes_per_sec,
            burst_bytes,
            ..TenantPolicy::default()
        }
    }

    /// The same policy with a different weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// The same policy with a BufferPool byte quota.
    pub fn with_buf_quota(mut self, bytes: u64) -> Self {
        self.buf_quota_bytes = bytes;
        self
    }

    /// The same policy with a deadline class.
    pub fn with_deadline(mut self, deadline: DeadlineClass) -> Self {
        self.deadline = deadline;
        self
    }
}

/// A token bucket in virtual time, fixed-point in token-nanoseconds.
///
/// The tank holds `tokens × NS_PER_SEC` so refill (`dt_ns × rate`) is
/// exact integer arithmetic — no fractional-token loss, which is what the
/// conservation proptest pins down: admitted cost over any window never
/// exceeds `burst + rate × elapsed`.
#[derive(Debug)]
pub struct TokenBucket {
    /// Refill rate in tokens per second (token-ns per ns).
    rate: u64,
    /// Tank capacity in token-ns (`burst × NS_PER_SEC`).
    burst_scaled: u64,
    /// Current fill in token-ns.
    tank: u64,
    /// Virtual timestamp of the last refill.
    last_vt: u64,
}

impl TokenBucket {
    /// A bucket refilling at `rate` tokens per virtual second with `burst`
    /// tokens of capacity, starting full. `rate == 0` means unlimited:
    /// every admit succeeds.
    pub fn new(rate: u64, burst: u64) -> Self {
        let burst_scaled = burst.saturating_mul(NS_PER_SEC);
        TokenBucket {
            rate,
            burst_scaled,
            tank: burst_scaled,
            last_vt: 0,
        }
    }

    /// Reconfigure rate/burst in place (hot policy update). The tank is
    /// clamped to the new burst; accrued debt or credit otherwise carries
    /// over so an update cannot mint a free burst.
    pub fn reconfigure(&mut self, rate: u64, burst: u64) {
        self.rate = rate;
        self.burst_scaled = burst.saturating_mul(NS_PER_SEC);
        self.tank = self.tank.min(self.burst_scaled);
    }

    /// Refill for the elapsed virtual time. Non-monotonic `now` (a caller
    /// on a stale clock) is ignored rather than panicking.
    fn refill(&mut self, now_vt: u64) {
        if now_vt <= self.last_vt {
            return;
        }
        let dt = now_vt - self.last_vt;
        self.last_vt = now_vt;
        let add = (dt as u128).saturating_mul(self.rate as u128);
        let tank = (self.tank as u128).saturating_add(add);
        self.tank = tank.min(self.burst_scaled as u128) as u64;
    }

    /// Try to admit a request of `cost` tokens at virtual time `now_vt`.
    /// `Err(retry_after_ns)` is the earliest virtual delay after which the
    /// same request could pass — the backpressure hint surfaced to
    /// clients. Costs above the burst are clamped to it (they drain the
    /// full bucket), so oversize requests throttle instead of livelocking.
    pub fn try_admit(&mut self, now_vt: u64, cost: u64) -> Result<(), u64> {
        if self.rate == 0 {
            return Ok(());
        }
        self.refill(now_vt);
        let charge = (cost as u128)
            .saturating_mul(NS_PER_SEC as u128)
            .min(self.burst_scaled as u128) as u64;
        if self.tank >= charge {
            self.tank -= charge;
            return Ok(());
        }
        let deficit = charge - self.tank;
        let retry = (deficit as u128).div_ceil(self.rate as u128);
        Err(retry.min(u64::MAX as u128) as u64)
    }

    /// Current fill in whole tokens (floor).
    pub fn tokens(&self) -> u64 {
        self.tank / NS_PER_SEC
    }

    /// Configured refill rate (tokens per virtual second).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Configured burst capacity in whole tokens.
    pub fn burst(&self) -> u64 {
        self.burst_scaled / NS_PER_SEC
    }
}

/// Live accounting for one tenant: the object the hot paths touch.
///
/// Everything here is either an atomic or the `qos.bucket` mutex, so the
/// admission check in `Client::submit` never takes the table lock.
pub struct TenantState {
    id: TenantId,
    /// Weighted-fair weight (hot-updatable; always ≥ 1).
    weight: AtomicU32,
    /// Advisory deadline class, packed for lock-free reads: 0 best-effort,
    /// 1 latency-sensitive, otherwise the target p99 in virtual ns.
    deadline_packed: AtomicU64,
    bucket: OrderedMutex<TokenBucket>,
    admitted: AtomicU64,
    rejected: AtomicU64,
    /// Virtual service consumed (worker-observed item-ns), the
    /// weighted-fair currency.
    service_vns: AtomicU64,
    /// Pushdown fuel retired on behalf of this tenant (one unit per
    /// bytecode instruction executed inside the stack).
    fuel_used: AtomicU64,
    /// Completion latency histogram (virtual ns), the per-tenant p99.
    latency: LogHistogram,
}

fn pack_deadline(d: DeadlineClass) -> u64 {
    match d {
        DeadlineClass::BestEffort => 0,
        DeadlineClass::LatencySensitive => 1,
        // Targets below 2 ns are not meaningful; reuse the low codes.
        DeadlineClass::Deadline { target_p99_ns } => target_p99_ns.max(2),
    }
}

fn unpack_deadline(v: u64) -> DeadlineClass {
    match v {
        0 => DeadlineClass::BestEffort,
        1 => DeadlineClass::LatencySensitive,
        target_p99_ns => DeadlineClass::Deadline { target_p99_ns },
    }
}

impl TenantState {
    fn new(id: TenantId, policy: &TenantPolicy) -> Self {
        TenantState {
            id,
            weight: AtomicU32::new(policy.weight.max(1)),
            deadline_packed: AtomicU64::new(pack_deadline(policy.deadline)),
            bucket: OrderedMutex::new(
                &TENANT_BUCKET,
                TokenBucket::new(policy.rate_bytes_per_sec, policy.burst_bytes),
            ),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            service_vns: AtomicU64::new(0),
            fuel_used: AtomicU64::new(0),
            latency: LogHistogram::new(),
        }
    }

    /// The tenant this state bills to.
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// Admission check: charge `cost` tokens (payload bytes) at virtual
    /// time `now_vt`. Success bumps the admitted counter; failure bumps
    /// rejected and returns the retry-after hint in virtual ns.
    pub fn try_admit(&self, now_vt: u64, cost: u64) -> Result<(), u64> {
        let verdict = self.bucket.lock().try_admit(now_vt, cost); // lock-class: qos.bucket
        match verdict {
            Ok(()) => {
                // relaxed-ok: stats counter
                self.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(retry) => {
                // relaxed-ok: stats counter
                self.rejected.fetch_add(1, Ordering::Relaxed);
                Err(retry)
            }
        }
    }

    /// Apply a (possibly hot) policy update to the live state.
    pub fn apply_policy(&self, policy: &TenantPolicy) {
        // relaxed-ok: weight is a tuning knob read by the next rebalance pass
        self.weight.store(policy.weight.max(1), Ordering::Relaxed);
        // relaxed-ok: advisory metadata, same freshness contract as weight
        self.deadline_packed
            .store(pack_deadline(policy.deadline), Ordering::Relaxed);
        self.bucket // lock-class: qos.bucket
            .lock()
            .reconfigure(policy.rate_bytes_per_sec, policy.burst_bytes);
    }

    /// Current weighted-fair weight (≥ 1).
    pub fn weight(&self) -> u32 {
        // relaxed-ok: tuning knob read
        self.weight.load(Ordering::Relaxed).max(1)
    }

    /// Current advisory deadline class.
    pub fn deadline(&self) -> DeadlineClass {
        // relaxed-ok: advisory metadata read
        unpack_deadline(self.deadline_packed.load(Ordering::Relaxed))
    }

    /// Charge `vns` virtual nanoseconds of worker service to this tenant.
    pub fn note_service(&self, vns: u64) {
        // relaxed-ok: service counter consumed by the rebalance pass, which tolerates slight staleness
        self.service_vns.fetch_add(vns, Ordering::Relaxed);
    }

    /// Charge `fuel` pushdown instruction units to this tenant.
    pub fn note_fuel(&self, fuel: u64) {
        // relaxed-ok: accounting counter consumed by exports/rebalance, tolerates staleness
        self.fuel_used.fetch_add(fuel, Ordering::Relaxed);
    }

    /// Total pushdown fuel retired for this tenant so far.
    pub fn fuel_used(&self) -> u64 {
        // relaxed-ok: accounting counter read
        self.fuel_used.load(Ordering::Relaxed)
    }

    /// Total virtual service consumed so far.
    pub fn service_vns(&self) -> u64 {
        // relaxed-ok: service counter read
        self.service_vns.load(Ordering::Relaxed)
    }

    /// Service normalized by weight (`service × 1000 / weight`): the
    /// virtual-time currency the weighted-fair pass compares across
    /// tenants.
    pub fn normalized_service_milli(&self) -> u64 {
        self.service_vns()
            .saturating_mul(1000)
            .checked_div(u64::from(self.weight()))
            .unwrap_or(0)
    }

    /// Record one completion latency (virtual ns).
    pub fn observe_latency(&self, ns: u64) {
        self.latency.record(ns);
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        // relaxed-ok: stats counter read
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests rejected by admission so far.
    pub fn rejected(&self) -> u64 {
        // relaxed-ok: stats counter read
        self.rejected.load(Ordering::Relaxed)
    }

    /// p99 completion latency (virtual ns; 0 with no samples).
    pub fn p99_ns(&self) -> u64 {
        self.latency.p99()
    }

    /// p50 completion latency (virtual ns; 0 with no samples).
    pub fn p50_ns(&self) -> u64 {
        self.latency.p50()
    }

    /// Completions observed.
    pub fn completions(&self) -> u64 {
        self.latency.count()
    }
}

impl std::fmt::Debug for TenantState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantState")
            .field("id", &self.id)
            .field("weight", &self.weight())
            .field("admitted", &self.admitted())
            .field("rejected", &self.rejected())
            .field("service_vns", &self.service_vns())
            .field("p99_ns", &self.p99_ns())
            .finish()
    }
}

struct TableInner {
    tenants: HashMap<TenantId, Arc<TenantState>>,
    policies: HashMap<TenantId, TenantPolicy>,
    by_qid: HashMap<u64, TenantId>,
    /// Policy updates staged by `request_policy_update`, applied by the
    /// next admin tick (the live-upgrade path).
    pending: Vec<(TenantId, TenantPolicy)>,
}

/// The tenant registry the Runtime owns: declared policies, live
/// accounting, and the qid→tenant binding the orchestrator consults.
///
/// Guarded by the `qos.tenants` witness lock (rank 36): acquired after the
/// runtime rebalance locks, released before any data-path lock.
pub struct TenantTable {
    inner: OrderedRwLock<TableInner>,
}

impl Default for TenantTable {
    fn default() -> Self {
        TenantTable::new()
    }
}

impl TenantTable {
    /// An empty table.
    pub fn new() -> Self {
        TenantTable {
            inner: OrderedRwLock::new(
                &TENANT_TABLE,
                TableInner {
                    tenants: HashMap::new(),
                    policies: HashMap::new(),
                    by_qid: HashMap::new(),
                    pending: Vec::new(),
                },
            ),
        }
    }

    /// Register `tenant` with `policy`, or fetch its existing state.
    /// Registration is first-writer-wins: re-registering (a second
    /// connection from the same tenant) keeps the original policy — use
    /// [`TenantTable::request_policy_update`] to change it. Returns `None`
    /// only for [`TenantId::NONE`], which is never tracked.
    pub fn register(&self, tenant: TenantId, policy: TenantPolicy) -> Option<Arc<TenantState>> {
        if tenant.is_none() {
            return None;
        }
        let mut inner = self.inner.write(); // lock-class: qos.tenants
        let state = inner
            .tenants
            .entry(tenant)
            .or_insert_with(|| Arc::new(TenantState::new(tenant, &policy)));
        let state = Arc::clone(state);
        inner.policies.entry(tenant).or_insert(policy);
        Some(state)
    }

    /// The live state for `tenant`, if registered.
    pub fn resolve(&self, tenant: TenantId) -> Option<Arc<TenantState>> {
        let inner = self.inner.read(); // lock-class: qos.tenants
        inner.tenants.get(&tenant).cloned()
    }

    /// The declared policy for `tenant`, if registered.
    pub fn policy(&self, tenant: TenantId) -> Option<TenantPolicy> {
        let inner = self.inner.read(); // lock-class: qos.tenants
        inner.policies.get(&tenant).copied()
    }

    /// Bind queue `qid` to `tenant` (the handshake records each connection
    /// queue here so the orchestrator can attribute load).
    pub fn bind_queue(&self, qid: u64, tenant: TenantId) {
        if tenant.is_none() {
            return;
        }
        let mut inner = self.inner.write(); // lock-class: qos.tenants
        inner.by_qid.insert(qid, tenant);
    }

    /// The tenant bound to queue `qid`, if any.
    pub fn tenant_of_qid(&self, qid: u64) -> Option<TenantId> {
        let inner = self.inner.read(); // lock-class: qos.tenants
        inner.by_qid.get(&qid).copied()
    }

    /// Charge `vns` of worker service to the tenant bound to `qid`
    /// (no-op for unbound queues).
    pub fn note_qid_service(&self, qid: u64, vns: u64) {
        let state = {
            let inner = self.inner.read(); // lock-class: qos.tenants
            inner
                .by_qid
                .get(&qid)
                .and_then(|t| inner.tenants.get(t).cloned())
        };
        if let Some(state) = state {
            state.note_service(vns);
        }
    }

    /// Per-qid normalized service (`service × 1000 / weight` of the bound
    /// tenant): the snapshot the orchestrator's weighted-fair pass scales
    /// queue demand by. Unbound queues are absent (treated as untenanted).
    pub fn qid_normalized_service(&self) -> HashMap<u64, u64> {
        let inner = self.inner.read(); // lock-class: qos.tenants
        inner
            .by_qid
            .iter()
            .filter_map(|(&qid, t)| {
                inner
                    .tenants
                    .get(t)
                    .map(|s| (qid, s.normalized_service_milli()))
            })
            .collect()
    }

    /// Stage a hot policy update; it takes effect at the next admin tick
    /// ([`TenantTable::apply_pending`]), riding the same asynchronous
    /// control path as live LabMod upgrades.
    pub fn request_policy_update(&self, tenant: TenantId, policy: TenantPolicy) {
        if tenant.is_none() {
            return;
        }
        let mut inner = self.inner.write(); // lock-class: qos.tenants
        inner.pending.push((tenant, policy));
    }

    /// Apply all staged policy updates. Returns how many were applied
    /// (updates for unregistered tenants are dropped).
    pub fn apply_pending(&self) -> usize {
        let (staged, states) = {
            let mut inner = self.inner.write(); // lock-class: qos.tenants
            let staged: Vec<_> = inner.pending.drain(..).collect();
            let mut states = Vec::with_capacity(staged.len());
            for (tenant, policy) in &staged {
                if let Some(state) = inner.tenants.get(tenant) {
                    states.push(Some(Arc::clone(state)));
                    inner.policies.insert(*tenant, *policy);
                } else {
                    states.push(None);
                }
            }
            (staged, states)
        };
        // Bucket reconfiguration (qos.bucket, rank 38) happens after the
        // table write lock is released: 38 > 36 would be a legal nesting,
        // but not holding the table across it keeps admission hot paths
        // from ever waiting on an admin tick.
        let mut applied = 0;
        for ((_, policy), state) in staged.iter().zip(states) {
            if let Some(state) = state {
                state.apply_policy(policy);
                applied += 1;
            }
        }
        applied
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        let inner = self.inner.read(); // lock-class: qos.tenants
        inner.tenants.len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every registered tenant's live state.
    pub fn all(&self) -> Vec<Arc<TenantState>> {
        let inner = self.inner.read(); // lock-class: qos.tenants
        let mut v: Vec<_> = inner.tenants.values().cloned().collect();
        v.sort_by_key(|s| s.id());
        v
    }

    /// Export per-tenant accounting as a JSON document (the trace path:
    /// the same shape the bench artifacts and exporters consume).
    pub fn export_json(&self) -> serde_json::Value {
        let tenants: Vec<serde_json::Value> = self
            .all()
            .iter()
            .map(|s| {
                serde_json::json!({
                    "tenant": s.id().as_u32(),
                    "weight": s.weight(),
                    "admitted": s.admitted(),
                    "rejected": s.rejected(),
                    "service_vns": s.service_vns(),
                    "fuel_used": s.fuel_used(),
                    "completions": s.completions(),
                    "p50_ns": s.p50_ns(),
                    "p99_ns": s.p99_ns(),
                })
            })
            .collect();
        serde_json::json!({ "tenants": tenants })
    }
}

impl std::fmt::Debug for TenantTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantTable")
            .field("tenants", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains() {
        let mut b = TokenBucket::new(100, 50);
        assert_eq!(b.tokens(), 50);
        assert!(b.try_admit(0, 30).is_ok());
        assert_eq!(b.tokens(), 20);
        assert!(b.try_admit(0, 20).is_ok());
        let retry = b.try_admit(0, 10).unwrap_err();
        // 10 tokens at 100/s: 0.1 s = 100 ms of virtual time.
        assert_eq!(retry, 100_000_000);
    }

    #[test]
    fn bucket_refills_in_virtual_time_and_caps_at_burst() {
        let mut b = TokenBucket::new(1000, 100);
        assert!(b.try_admit(0, 100).is_ok());
        assert_eq!(b.tokens(), 0);
        // 50 ms at 1000/s = 50 tokens.
        assert!(b.try_admit(50_000_000, 50).is_ok());
        // A huge gap still caps at burst.
        assert!(b.try_admit(10 * NS_PER_SEC, 100).is_ok());
        assert!(b.try_admit(10 * NS_PER_SEC, 1).is_err());
    }

    #[test]
    fn oversize_cost_clamps_to_burst_instead_of_livelocking() {
        let mut b = TokenBucket::new(100, 10);
        // cost 50 > burst 10: clamped, drains the full bucket.
        assert!(b.try_admit(0, 50).is_ok());
        assert_eq!(b.tokens(), 0);
        // And it can eventually pass again once the bucket refills.
        let retry = b.try_admit(0, 50).unwrap_err();
        assert!(b.try_admit(retry, 50).is_ok());
    }

    #[test]
    fn zero_rate_is_unlimited() {
        let mut b = TokenBucket::new(0, 0);
        for now in 0..100 {
            assert!(b.try_admit(now, 1 << 40).is_ok());
        }
    }

    #[test]
    fn non_monotonic_now_does_not_mint_tokens() {
        let mut b = TokenBucket::new(100, 10);
        assert!(b.try_admit(NS_PER_SEC, 10).is_ok());
        // Clock goes backwards: no refill, no panic.
        assert!(b.try_admit(0, 1).is_err());
    }

    #[test]
    fn state_counts_admits_and_rejects() {
        let s = TenantState::new(TenantId(1), &TenantPolicy::rate_limited(100, 10));
        assert!(s.try_admit(0, 10).is_ok());
        assert!(s.try_admit(0, 10).is_err());
        assert_eq!(s.admitted(), 1);
        assert_eq!(s.rejected(), 1);
        s.observe_latency(1000);
        s.observe_latency(2000);
        assert_eq!(s.completions(), 2);
        assert!(s.p99_ns() >= 2000);
    }

    #[test]
    fn table_registers_binds_and_attributes_service() {
        let t = TenantTable::new();
        assert!(t.is_empty());
        assert!(t
            .register(TenantId::NONE, TenantPolicy::default())
            .is_none());
        let a = t
            .register(TenantId(1), TenantPolicy::default().with_weight(2))
            .unwrap();
        let b = t.register(TenantId(2), TenantPolicy::default()).unwrap();
        assert_eq!(t.len(), 2);
        t.bind_queue(10, TenantId(1));
        t.bind_queue(11, TenantId(2));
        assert_eq!(t.tenant_of_qid(10), Some(TenantId(1)));
        t.note_qid_service(10, 4000);
        t.note_qid_service(11, 4000);
        assert_eq!(a.service_vns(), 4000);
        let norm = t.qid_normalized_service();
        // Equal raw service, but tenant 1 has weight 2 → half the
        // normalized service.
        assert_eq!(norm[&10], 2_000_000);
        assert_eq!(norm[&11], 4_000_000);
        assert_eq!(b.service_vns(), 4000);
    }

    #[test]
    fn reregistration_keeps_original_policy() {
        let t = TenantTable::new();
        let first = t
            .register(TenantId(1), TenantPolicy::default().with_weight(4))
            .unwrap();
        let second = t
            .register(TenantId(1), TenantPolicy::default().with_weight(9))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.weight(), 4);
        assert_eq!(t.policy(TenantId(1)).unwrap().weight, 4);
    }

    #[test]
    fn hot_policy_update_rides_apply_pending() {
        let t = TenantTable::new();
        let s = t
            .register(TenantId(3), TenantPolicy::rate_limited(1000, 100))
            .unwrap();
        assert!(s.try_admit(0, 100).is_ok());
        t.request_policy_update(
            TenantId(3),
            TenantPolicy::rate_limited(10, 1).with_weight(5),
        );
        // Not applied yet.
        assert_eq!(s.weight(), 1);
        assert_eq!(t.apply_pending(), 1);
        assert_eq!(s.weight(), 5);
        assert_eq!(t.policy(TenantId(3)).unwrap().weight, 5);
        // New bucket: burst 1, so a 100-byte request clamps to 1 token.
        assert!(s.try_admit(NS_PER_SEC, 100).is_ok());
        assert!(s.try_admit(NS_PER_SEC, 1).is_err());
        // Updates for unknown tenants are dropped.
        t.request_policy_update(TenantId(99), TenantPolicy::default());
        assert_eq!(t.apply_pending(), 0);
    }

    #[test]
    fn export_json_lists_tenants() {
        let t = TenantTable::new();
        t.register(TenantId(1), TenantPolicy::default());
        t.register(TenantId(2), TenantPolicy::default());
        let doc = t.export_json();
        let tenants = doc["tenants"].as_array().unwrap();
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0]["tenant"].as_u64(), Some(1));
    }

    #[test]
    fn deadline_class_round_trips() {
        for d in [
            DeadlineClass::BestEffort,
            DeadlineClass::LatencySensitive,
            DeadlineClass::Deadline {
                target_p99_ns: 123_456,
            },
        ] {
            assert_eq!(unpack_deadline(pack_deadline(d)), d);
        }
        let s = TenantState::new(
            TenantId(1),
            &TenantPolicy::default().with_deadline(DeadlineClass::LatencySensitive),
        );
        assert_eq!(s.deadline(), DeadlineClass::LatencySensitive);
    }
}
