//! Live-upgradable LabMods (paper §III-C2).
//!
//! A client hammers a dummy LabMod while the operator hot-swaps its code
//! — the centralized upgrade protocol quiesces the primary queues,
//! transfers state with `state_update`, swaps the Module Registry entry
//! and resumes. The application never stops; the module's message counter
//! survives.
//!
//! Run with: `cargo run --release --example live_upgrade`

use labstor::core::{Payload, Runtime, RuntimeConfig, UpgradeKind, UpgradeRequest};
use labstor::mods::dummy::DummyMod;
use labstor::mods::DeviceRegistry;
use labstor::sim::DeviceKind;

fn main() {
    let devices = DeviceRegistry::new();
    let nvme = devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig {
        max_workers: 1,
        ..Default::default()
    });
    labstor::mods::install_all(&rt.mm, &devices);

    let stack = rt
        .mount_stack_json(
            r#"{
        "mount": "dummy::/",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "dummy1", "type": "dummy", "params": {"work_ns": 5000} }
        ]
    }"#,
        )
        .expect("mount");
    let mut client = rt.connect(labstor::ipc::Credentials::new(1, 0, 0), 1);

    let version = |rt: &Runtime| {
        let m = rt.mm.get("dummy1").expect("module");
        let d = m.as_any().downcast_ref::<DummyMod>().expect("dummy");
        (d.version, d.count())
    };

    const MESSAGES: usize = 20_000;
    for i in 0..MESSAGES {
        if i == MESSAGES / 2 {
            let (v, c) = version(&rt);
            println!("midpoint: module v{v} has processed {c} messages — requesting upgrade");
            rt.request_upgrade(UpgradeRequest {
                uuid: "dummy1".into(),
                type_name: "dummy".into(),
                params: serde_json::json!({"work_ns": 5000}),
                kind: UpgradeKind::Centralized,
                code_bytes: 1 << 20, // a 1 MB module binary on NVMe
                code_device: Some(nvme.clone()),
            });
        }
        let (resp, _) = client
            .execute(&stack, Payload::Dummy { work_ns: 0 })
            .expect("message");
        assert!(resp.is_ok());
    }

    let (v, c) = version(&rt);
    println!("after {MESSAGES} messages: module is v{v}, counter = {c}");
    assert!(v >= 2, "the upgrade must have installed a fresh instance");
    assert_eq!(
        c, MESSAGES as u64,
        "no message lost, state transferred across the swap"
    );
    println!(
        "virtual app time: {:.2} ms (upgrade pause included)",
        client.ctx.now() as f64 / 1e6
    );
    rt.shutdown();
    println!("done");
}
