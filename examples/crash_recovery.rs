//! Crash recovery (paper §III-C3) and LabFS log replay.
//!
//! "If the LabStor Runtime crashes, Wait will eventually detect that the
//! Runtime is offline and wait for it to be restarted … If restarted, the
//! LabStor client library in each process will iterate over the LabStack
//! Namespace, invoke the StateRepair API in each LabMod, and then
//! continue."
//!
//! LabFS's `state_repair` is a real recovery: it drops all in-memory
//! metadata and rebuilds it by replaying the per-worker logs persisted on
//! the device — so files that were fsync'd survive the crash, and data
//! blocks are still reachable through the replayed mappings.
//!
//! Run with: `cargo run --release --example crash_recovery`

use labstor::core::{FsOp, Payload, RespPayload, Runtime, RuntimeConfig};
use labstor::mods::DeviceRegistry;
use labstor::sim::DeviceKind;

fn main() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);

    let stack = rt
        .mount_stack_json(
            r#"{
        "mount": "fs::/p",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "pfs1", "type": "labfs", "params": {"device": "nvme0"}, "outputs": ["pdrv1"] },
            { "uuid": "pdrv1", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
        )
        .expect("mount");
    let mut client = rt.connect(labstor::ipc::Credentials::new(1, 0, 0), 1);

    // Write a file and fsync it: the metadata log reaches the device.
    let ino = match client
        .execute(
            &stack,
            Payload::Fs(FsOp::Create {
                path: "/journal.dat".into(),
                mode: 0o600,
            }),
        )
        .expect("create")
        .0
    {
        RespPayload::Ino(i) => i,
        other => panic!("create failed: {other:?}"),
    };
    let payload: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
    client
        .execute(
            &stack,
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: payload.clone(),
            }),
        )
        .expect("write");
    client
        .execute(&stack, Payload::Fs(FsOp::Fsync { ino }))
        .expect("fsync");
    // A second file, created but *not* fsync'd: honest log-structured
    // semantics say a crash loses it.
    client
        .execute(
            &stack,
            Payload::Fs(FsOp::Create {
                path: "/volatile.tmp".into(),
                mode: 0o600,
            }),
        )
        .expect("create volatile");
    println!("wrote /journal.dat (fsync'd) and /volatile.tmp (not fsync'd)");

    // Crash the Runtime: workers die, clients see it offline. A client
    // request issued now fails over and waits for restart.
    println!("simulating Runtime crash…");
    rt.crash();
    assert!(!rt.ipc.is_online());

    // The administrator restarts it; restart() re-spawns workers and runs
    // state_repair on every registered LabMod (LabFS replays its log).
    println!("administrator restarts the Runtime (LabMods run StateRepair)…");
    rt.restart();
    assert!(rt.ipc.is_online());

    // The fsync'd file survives, with its data.
    let (resp, _) = client
        .execute_with_retry(
            &stack,
            Payload::Fs(FsOp::Stat {
                path: "/journal.dat".into(),
            }),
        )
        .expect("stat after recovery");
    match resp {
        RespPayload::Stat(st) => {
            println!(
                "/journal.dat recovered: size {} mode {:o}",
                st.size, st.mode
            );
            assert_eq!(st.size, payload.len() as u64);
        }
        other => panic!("stat failed: {other:?}"),
    }
    let (resp, _) = client
        .execute(
            &stack,
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: payload.len(),
            }),
        )
        .expect("read after recovery");
    match resp {
        RespPayload::Data(d) => {
            assert_eq!(d, payload);
            println!("data blocks intact through the replayed mappings ✓");
        }
        other => panic!("read failed: {other:?}"),
    }

    // The unsynced file is gone — the log never reached the device.
    let (resp, _) = client
        .execute(
            &stack,
            Payload::Fs(FsOp::Stat {
                path: "/volatile.tmp".into(),
            }),
        )
        .expect("stat volatile");
    assert!(!resp.is_ok(), "unsynced create must not survive: {resp:?}");
    println!("/volatile.tmp lost, as log-structured semantics dictate ✓");

    rt.shutdown();
    println!("done");
}
