//! Multi-tenant QoS (labtenant): declare per-tenant policies at connect
//! time and watch the Runtime police the noisy neighbor.
//!
//! Walks DESIGN.md §11 end to end:
//!
//! 1. mount an async block LabStack (NoOp scheduler → Kernel Driver),
//! 2. connect a latency-sensitive tenant and a rate-limited batch
//!    tenant with [`Runtime::connect_with_policy`],
//! 3. drive I/O; the batch tenant hits the token bucket and handles the
//!    typed `Throttled { retry_after_ns }` backpressure by idling its
//!    virtual clock forward,
//! 4. stage a hot policy update through the live-upgrade path,
//! 5. dump the per-tenant accounting table (labtelem histograms).
//!
//! Run with: `cargo run --release --example multi_tenant`

use labstor::core::client::ClientError;
use labstor::core::{BlockOp, Payload, Runtime, RuntimeConfig};
use labstor::ipc::Credentials;
use labstor::mods::DeviceRegistry;
use labstor::qos::{DeadlineClass, TenantPolicy};
use labstor::sim::DeviceKind;

fn main() {
    // 1. A simulated NVMe behind a minimal async block stack.
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);
    let stack = rt
        .mount_stack_json(
            r#"{
        "mount": "blk::/q", "exec": "async", "authorized_uids": [0],
        "labmods": [
            { "uuid": "sched_q", "type": "noop_sched", "outputs": ["drv_q"] },
            { "uuid": "drv_q", "type": "kernel_driver",
              "params": {"device": "nvme0"} }
        ]
    }"#,
        )
        .expect("stack mounts");

    // 2. Two tenants with declared policies. Tenant 1 is latency
    //    sensitive (weighted-fair share 4); tenant 2 is a batch job
    //    rate-limited to 1 MiB of payload per virtual second.
    let latency_tenant = Credentials::new(1, 0, 0).with_tenant(1.into());
    let batch_tenant = Credentials::new(2, 0, 0).with_tenant(2.into());
    let mut fast = rt.connect_with_policy(
        latency_tenant,
        1,
        TenantPolicy::default()
            .with_weight(4)
            .with_deadline(DeadlineClass::LatencySensitive),
    );
    let mut batch = rt.connect_with_policy(
        batch_tenant,
        1,
        TenantPolicy::rate_limited(1 << 20, 256 << 10).with_weight(1),
    );

    // 3. The latency tenant reads 4 KiB pages; the batch tenant pushes
    //    256 KiB writes until the bucket pushes back.
    for i in 0..32u64 {
        let (_, lat) = fast
            .execute(
                &stack,
                Payload::Block(BlockOp::Read {
                    lba: i * 8,
                    len: 4096,
                }),
            )
            .expect("read");
        assert!(lat > 0, "virtual latency is modeled");
    }
    let mut throttled = 0u32;
    let mut admitted = 0u32;
    for i in 0..8u64 {
        loop {
            let payload = Payload::Block(BlockOp::Write {
                lba: i * 512,
                data: vec![0xbe; 256 << 10],
            });
            match batch.execute(&stack, payload) {
                Ok(_) => {
                    admitted += 1;
                    break;
                }
                Err(ClientError::Throttled { retry_after_ns }) => {
                    // Typed backpressure: idle the tenant's virtual
                    // clock to the bucket's retry hint and resubmit.
                    throttled += 1;
                    let target = batch.ctx.now() + retry_after_ns;
                    batch.ctx.idle_until(target);
                }
                Err(e) => panic!("batch tenant: {e}"),
            }
        }
    }
    println!("batch tenant: {admitted} writes admitted, {throttled} throttles served");
    assert_eq!(admitted, 8);
    assert!(throttled > 0, "the bucket must have pushed back");

    // 4. Hot policy update: double the batch tenant's rate through the
    //    staged path (normally applied by the admin tick; applied
    //    directly here so the effect is immediate and observable).
    rt.tenants.request_policy_update(
        2.into(),
        TenantPolicy::rate_limited(2 << 20, 512 << 10).with_weight(2),
    );
    let applied = rt.tenants.apply_pending();
    assert_eq!(applied, 1);
    println!("hot policy update applied to {applied} tenant(s)");

    // 5. Per-tenant accounting: admitted/rejected counts, service
    //    virtual-ns and latency percentiles from labtelem histograms.
    let table = rt.tenants.export_json();
    println!("{}", serde_json::to_string_pretty(&table).expect("json"));
    let fast_p99 = rt.tenants.resolve(1.into()).expect("registered").p99_ns();
    println!("latency tenant p99: {fast_p99} virtual ns");
    assert!(fast_p99 > 0);

    rt.shutdown();
    println!("multi_tenant: OK");
}
