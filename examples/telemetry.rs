//! labtelem quickstart: record a span flight, export a Chrome trace, and
//! print the per-stage anatomy.
//!
//! 1. mount the quickstart LabStack (permissions → LabFS → LRU cache →
//!    NoOp scheduler → Kernel Driver),
//! 2. enable the flight recorder and push 4 KB writes + reads through,
//! 3. dump `results/telemetry_trace.json` — open it at
//!    `chrome://tracing` or <https://ui.perfetto.dev>,
//! 4. fold the same spans into a Fig.-4a-style anatomy and check the
//!    books: the per-stage exclusive times must tile the end-to-end
//!    virtual latency exactly.
//!
//! Run with: `cargo run --release --example telemetry`

use labstor::core::{Runtime, RuntimeConfig};
use labstor::mods::{DeviceRegistry, GenericFs};
use labstor::sim::DeviceKind;
use labstor::telemetry::{anatomy, chrome_trace, SpanEvent, Stage};

fn main() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);

    let spec = r#"{
        "mount": "fs::/b",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "perm1",  "type": "permissions",  "outputs": ["labfs1"] },
            { "uuid": "labfs1", "type": "labfs",
              "params": {"device": "nvme0", "workers": 4}, "outputs": ["lru1"] },
            { "uuid": "lru1",   "type": "lru_cache",
              "params": {"capacity_bytes": 1048576},      "outputs": ["sched1"] },
            { "uuid": "sched1", "type": "noop_sched",     "outputs": ["drv1"] },
            { "uuid": "drv1",   "type": "kernel_driver",
              "params": {"device": "nvme0"} }
        ]
    }"#;
    let stack = rt.mount_stack_json(spec).expect("mount LabStack");
    println!("mounted LabStack '{}' (id {})", stack.mount, stack.id);

    // Spans carry the vertex index; name them after the spec order.
    let names = [
        "permissions",
        "labfs",
        "lru cache",
        "noop sched",
        "kernel driver",
    ];
    let label = |s: &SpanEvent| match s.stage {
        Stage::Vertex => names
            .get(s.vertex as usize)
            .copied()
            .unwrap_or("vertex?")
            .to_string(),
        Stage::Device => "device i/o".to_string(),
        _ => "ipc (shm queues)".to_string(),
    };

    // Flip the recorder on — while off, every record() is one relaxed
    // load and a branch.
    let rec = rt.mm.telemetry().clone();
    rec.enable();

    let client = rt.connect(labstor::ipc::Credentials::new(1, 0, 0), 1);
    let mut fs = GenericFs::new(client);
    let fd = fs.open("fs::/b/data.bin", true, false).expect("open");
    let block = vec![0xA5u8; 4096];
    const OPS: usize = 64;
    for _ in 0..OPS {
        fs.write(fd, &block).expect("write");
    }
    fs.seek(fd, 0).expect("seek");
    for _ in 0..OPS {
        fs.read(fd, 4096).expect("read");
    }
    fs.close(fd).expect("close");

    let spans = rec.snapshot();
    assert_eq!(rec.dropped(), 0, "ring overflow");
    println!("recorded {} spans", spans.len());

    // Chrome trace-event JSON (virtual µs on the timeline).
    std::fs::create_dir_all("results").expect("mkdir results");
    let trace = chrome_trace(&spans, label);
    std::fs::write("results/telemetry_trace.json", &trace).expect("write trace");
    println!("wrote results/telemetry_trace.json ({} bytes)", trace.len());

    // Anatomy: exclusive per-stage times. The recorder's span model
    // guarantees the stages tile each request's end-to-end extent, so
    // the category sum must equal the total to the nanosecond.
    let a = anatomy(&spans, label);
    let accounted: u64 = a.categories.iter().map(|(_, ns)| ns).sum();
    assert!(
        accounted.abs_diff(a.total_ns) <= a.requests,
        "stage exclusives ({accounted} ns) must tile end-to-end latency ({} ns) to ±1 ns/request",
        a.total_ns
    );
    println!(
        "\nanatomy over {} requests (avg end-to-end {} ns, books balance to the ns):",
        a.requests,
        a.total_ns / a.requests.max(1)
    );
    for (name, ns) in &a.categories {
        println!("  {name:<18} {:>12} ns  {:>5.1}%", ns, a.pct(name));
    }

    rt.shutdown();
    println!("done");
}
