//! Quickstart: mount a LabStack from a spec file and do file I/O.
//!
//! This walks the paper's §III-E example end to end:
//!
//! 1. register simulated devices (stand-ins for `/dev/nvme0n1`),
//! 2. start the LabStor Runtime and install the bundled LabMod repo,
//! 3. mount a LabStack — permissions → LabFS → LRU cache → NoOp
//!    scheduler → Kernel Driver — from a human-readable spec,
//! 4. talk POSIX to it through the GenericFS connector.
//!
//! Run with: `cargo run --release --example quickstart`

use labstor::core::{Runtime, RuntimeConfig};
use labstor::mods::{DeviceRegistry, GenericFs};
use labstor::sim::DeviceKind;

fn main() {
    // 1. The machine's storage (a simulated Intel P3700-class NVMe).
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);

    // 2. Runtime + LabMod repo.
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);

    // 3. A LabStack spec — the paper's "human-readable schema file".
    let spec = r#"{
        "mount": "fs::/b",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "perm1",  "type": "permissions",  "outputs": ["labfs1"] },
            { "uuid": "labfs1", "type": "labfs",
              "params": {"device": "nvme0", "workers": 4}, "outputs": ["lru1"] },
            { "uuid": "lru1",   "type": "lru_cache",
              "params": {"capacity_bytes": 67108864},     "outputs": ["sched1"] },
            { "uuid": "sched1", "type": "noop_sched",     "outputs": ["drv1"] },
            { "uuid": "drv1",   "type": "kernel_driver",
              "params": {"device": "nvme0"} }
        ]
    }"#;
    let stack = rt.mount_stack_json(spec).expect("mount LabStack");
    println!(
        "mounted LabStack '{}' (id {}, {} LabMods)",
        stack.mount,
        stack.id,
        stack.vertices.len()
    );

    // 4. A client app doing POSIX through GenericFS (the LD_PRELOAD shim).
    let client = rt.connect(labstor::ipc::Credentials::new(1, 1000, 1000), 1);
    let mut fs = GenericFs::new(client);

    let fd = fs.open("fs::/b/hello.txt", true, false).expect("open");
    let n = fs
        .write(fd, b"Hello from a userspace I/O stack!")
        .expect("write");
    fs.fsync(fd).expect("fsync");
    fs.seek(fd, 0).expect("seek");
    let back = fs.read(fd, n).expect("read");
    fs.close(fd).expect("close");
    println!(
        "wrote and read back {n} bytes: {:?}",
        String::from_utf8_lossy(&back)
    );

    let st = fs.stat("fs::/b/hello.txt").expect("stat");
    println!("stat: ino={} size={} mode={:o}", st.ino, st.size, st.mode);

    // Virtual-time accounting: what this I/O *would* have cost on the
    // modeled hardware.
    println!(
        "client spent {:.1} µs of virtual time ({} ns busy)",
        fs.client().ctx.now() as f64 / 1e3,
        fs.client().ctx.busy()
    );

    rt.shutdown();
    println!("done");
}
