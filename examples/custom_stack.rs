//! Composable I/O services: active storage, interface convergence, and
//! dynamic semantics imposition (paper §III-B).
//!
//! This example demonstrates three of the paper's LabStack benefits:
//!
//! * **Active storage** — a compression LabMod transparently compresses
//!   data before it reaches the driver.
//! * **Interface convergence** — a POSIX stack and a KVS stack deployed
//!   side by side on the same machine, no translation middleware.
//! * **Dynamic semantics imposition** — strengthening a running stack's
//!   durability by inserting a consistency LabMod with `modify_stack`,
//!   while the application keeps running.
//!
//! Run with: `cargo run --release --example custom_stack`

use labstor::core::stack::Vertex;
use labstor::core::{BlockOp, Payload, Runtime, RuntimeConfig};
use labstor::mods::{DeviceRegistry, GenericFs, GenericKvs};
use labstor::sim::{BlockDevice, DeviceKind};

fn main() {
    let devices = DeviceRegistry::new();
    let nvme = devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);

    // --- Active storage: a compressing block stack -----------------------
    let compress_spec = r#"{
        "mount": "blk::/z",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "zip1", "type": "compress", "outputs": ["zdrv1"] },
            { "uuid": "zdrv1", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#;
    let zstack = rt
        .mount_stack_json(compress_spec)
        .expect("compression stack");
    let mut client = rt.connect(labstor::ipc::Credentials::new(1, 0, 0), 1);

    let compressible: Vec<u8> = std::iter::repeat_n(b"temperature=23.4 pressure=1013 ", 4096)
        .flatten()
        .copied()
        .collect();
    let before = nvme.stats().snapshot().bytes_written;
    let (resp, latency) = client
        .execute(
            &zstack,
            Payload::Block(BlockOp::Write {
                lba: 0,
                data: compressible.clone(),
            }),
        )
        .expect("compressed write");
    assert!(resp.is_ok());
    let stored = nvme.stats().snapshot().bytes_written - before;
    println!(
        "active storage: wrote {} bytes, device stored {} bytes ({:.0}:1), {:.1} µs",
        compressible.len(),
        stored,
        compressible.len() as f64 / stored as f64,
        latency as f64 / 1e3
    );
    let (resp, _) = client
        .execute(
            &zstack,
            Payload::Block(BlockOp::Read {
                lba: 0,
                len: compressible.len(),
            }),
        )
        .expect("read back");
    match resp {
        labstor::core::RespPayload::Data(d) => assert_eq!(d, compressible),
        other => panic!("unexpected {other:?}"),
    }
    println!("active storage: transparent decompression verified");

    // --- Interface convergence: POSIX and KVS side by side ----------------
    devices.add_preset("nvme1", DeviceKind::Nvme);
    rt.mount_stack_json(
        r#"{
        "mount": "fs::/data",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "cfs", "type": "labfs", "params": {"device": "nvme1"}, "outputs": ["cfsd"] },
            { "uuid": "cfsd", "type": "kernel_driver", "params": {"device": "nvme1"} }
        ]
    }"#,
    )
    .expect("posix stack");
    rt.mount_stack_json(
        r#"{
        "mount": "kv::/data",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "ckv", "type": "labkvs", "params": {"device": "nvme1"}, "outputs": ["ckvd"] },
            { "uuid": "ckvd", "type": "kernel_driver", "params": {"device": "nvme1"} }
        ]
    }"#,
    )
    .expect("kvs stack");

    let mut fs = GenericFs::new(rt.connect(labstor::ipc::Credentials::new(2, 0, 0), 1));
    let fd = fs.open("fs::/data/report.txt", true, false).expect("open");
    fs.write(fd, b"quarterly numbers").expect("write");
    fs.close(fd).expect("close");

    let mut kvs = GenericKvs::new(rt.connect(labstor::ipc::Credentials::new(3, 0, 0), 1));
    kvs.put("kv::/data/report-meta", b"author=alice".to_vec())
        .expect("put");
    println!(
        "interface convergence: POSIX file ({} bytes) and KV pair ({:?}) on one device",
        fs.stat("fs::/data/report.txt").expect("stat").size,
        String::from_utf8_lossy(&kvs.get("kv::/data/report-meta").expect("get")),
    );

    // --- Dynamic semantics: insert a consistency stage live ---------------
    rt.mm
        .instantiate("fsync1", "consistency", &serde_json_policy())
        .expect("consistency mod");
    let old = rt.ns.get("blk::/z").expect("mounted");
    let mut vertices = old.vertices.clone();
    // zip1 → fsync1 → zdrv1
    let drv_idx = 1;
    vertices.push(Vertex {
        uuid: "fsync1".into(),
        outputs: vec![drv_idx],
    });
    let fsync_idx = vertices.len() - 1;
    vertices[0].outputs = vec![fsync_idx];
    rt.ns.modify("blk::/z", 0, vertices).expect("modify_stack");
    println!("dynamic semantics: consistency LabMod inserted into blk::/z while mounted");

    let zstack = rt.ns.get("blk::/z").expect("still mounted");
    let flushes_before = nvme.stats().snapshot().ops();
    let (resp, _) = client
        .execute(
            &zstack,
            Payload::Block(BlockOp::Write {
                lba: 4096,
                data: vec![7u8; 4096],
            }),
        )
        .expect("durable write");
    assert!(resp.is_ok());
    println!(
        "dynamic semantics: write now flows zip1 → fsync1 → driver (device ops {} → {})",
        flushes_before,
        nvme.stats().snapshot().ops()
    );

    rt.shutdown();
    println!("done");
}

fn serde_json_policy() -> serde_json::Value {
    serde_json::json!({"policy": "flush_each"})
}
