//! Decentralized I/O system designs (paper §III-B).
//!
//! "One approach is to decouple metadata and data operations, enabling
//! security for metadata and increased performance for data operations.
//! In LabStor this can be done by using two separate LabStacks: one for
//! metadata that asynchronously executes in a separate runtime, and
//! another for data that synchronously executes at the client using
//! Driver LabMods."
//!
//! Both stacks name the *same* LabFS instance (same UUID → same Module
//! Registry entry), so block allocations made on the metadata path are
//! the shared state the client-side data path uses — the paper's
//! "state required for the data operations can be stored in shared
//! memory between the two LabStacks".
//!
//! Run with: `cargo run --release --example decentralized_split`

use labstor::core::{FsOp, Payload, RespPayload, Runtime, RuntimeConfig};
use labstor::mods::DeviceRegistry;
use labstor::sim::DeviceKind;

fn main() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);

    // Metadata stack: permissions-checked, executed by Runtime workers
    // (a separate address space — the secure path).
    rt.mount_stack_json(
        r#"{
        "mount": "meta::/d", "exec": "async", "authorized_uids": [0],
        "labmods": [
            { "uuid": "ds_perm", "type": "permissions", "outputs": ["ds_fs"] },
            { "uuid": "ds_fs", "type": "labfs", "params": {"device": "nvme0"}, "outputs": ["ds_drv"] },
            { "uuid": "ds_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .expect("metadata stack");

    // Data stack: the same LabFS + driver instances, executed *inline in
    // the client* — no IPC on the data path.
    rt.mount_stack_json(
        r#"{
        "mount": "data::/d", "exec": "sync", "authorized_uids": [0],
        "labmods": [
            { "uuid": "ds_fs", "type": "labfs", "params": {"device": "nvme0"}, "outputs": ["ds_drv"] },
            { "uuid": "ds_drv", "type": "kernel_driver", "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .expect("data stack");

    let meta = rt.ns.get("meta::/d").unwrap();
    let data_stack = rt.ns.get("data::/d").unwrap();
    let mut client = rt.connect(labstor::ipc::Credentials::new(1, 1000, 1000), 1);

    // 1. Metadata op through the secure async path.
    let t0 = client.ctx.now();
    let ino = match client
        .execute(
            &meta,
            Payload::Fs(FsOp::Create {
                path: "/big.dat".into(),
                mode: 0o644,
            }),
        )
        .expect("create")
        .0
    {
        RespPayload::Ino(i) => i,
        other => panic!("create failed: {other:?}"),
    };
    let meta_latency = client.ctx.now() - t0;

    // 2. Data ops through the client-side sync path — same inode, shared
    //    allocator/mapping state, zero IPC.
    let payload = vec![0x42u8; 64 * 1024];
    let t0 = client.ctx.now();
    let (resp, _) = client
        .execute(
            &data_stack,
            Payload::Fs(FsOp::Write {
                ino,
                offset: 0,
                data: payload.clone(),
            }),
        )
        .expect("data write");
    assert!(resp.is_ok());
    let data_latency = client.ctx.now() - t0;

    // 3. Read back through the *metadata* view to prove both stacks see
    //    one filesystem.
    let (resp, _) = client
        .execute(
            &meta,
            Payload::Fs(FsOp::Read {
                ino,
                offset: 0,
                len: payload.len(),
            }),
        )
        .expect("read via meta view");
    match resp {
        RespPayload::Data(d) => assert_eq!(d, payload),
        other => panic!("read failed: {other:?}"),
    }

    println!(
        "metadata create via secure async path: {:.2} µs",
        meta_latency as f64 / 1e3
    );
    println!(
        "64KB data write via client-side path:  {:.2} µs",
        data_latency as f64 / 1e3
    );
    println!("both views agree on file content ✓");

    // The same create through the data-path-style sync stack (for
    // comparison): cheaper because it skips permissions *and* IPC — the
    // paper's "fully decentralized designs … improving latency (but at a
    // cost to security)".
    let t0 = client.ctx.now();
    client
        .execute(
            &data_stack,
            Payload::Fs(FsOp::Create {
                path: "/fast.dat".into(),
                mode: 0o644,
            }),
        )
        .expect("decentralized create");
    println!(
        "decentralized create (no perms, no IPC):  {:.2} µs",
        (client.ctx.now() - t0) as f64 / 1e3
    );

    rt.shutdown();
    println!("done");
}
