//! Pushdown quickstart: run verified bytecode filters *inside* the
//! storage stack and ship bytes, not pages.
//!
//! The walk:
//!
//! 1. mount a LabFS stack and write a file of fixed-width records,
//! 2. build a tiny filter program (`key == 7`), verify it client-side,
//! 3. attach it to a single `read_filtered` — the LabFS LabMod scans
//!    cached pages in place and ships back a 32-byte aggregate,
//! 4. do the same against LabKVS: a point-query whose level-walk
//!    resubmission happens in-stack, and a prefix scan that ships only
//!    matching keys.
//!
//! Run with: `cargo run --release --example pushdown`

use labstor::core::{Runtime, RuntimeConfig};
use labstor::ipc::Credentials;
use labstor::mods::{DeviceRegistry, FilteredRead, GenericFs, GenericKvs, ScanReply};
use labstor::pushdown::Program;
use labstor::sim::DeviceKind;
use labstor::workloads::pushdown::{make_records, KEY_OFF, RECORD_LEN};
use std::sync::Arc;

fn main() {
    let devices = DeviceRegistry::new();
    devices.add_preset("nvme0", DeviceKind::Nvme);
    let rt = Runtime::start(RuntimeConfig::default());
    labstor::mods::install_all(&rt.mm, &devices);

    rt.mount_stack_json(
        r#"{
        "mount": "fs::/pd",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "fs1",  "type": "labfs",
              "params": {"device": "nvme0", "workers": 4}, "outputs": ["lru1"] },
            { "uuid": "lru1", "type": "lru_cache",
              "params": {"capacity_bytes": 67108864},      "outputs": ["drv1"] },
            { "uuid": "drv1", "type": "kernel_driver",
              "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .expect("mount LabFS stack");
    rt.mount_stack_json(
        r#"{
        "mount": "kv::/pd",
        "exec": "async",
        "authorized_uids": [0],
        "labmods": [
            { "uuid": "kv1",  "type": "labkvs",
              "params": {"device": "nvme0", "levels": 2}, "outputs": ["kdrv1"] },
            { "uuid": "kdrv1", "type": "kernel_driver",
              "params": {"device": "nvme0"} }
        ]
    }"#,
    )
    .expect("mount LabKVS stack");

    // A 64 KiB file of 64-byte records; keys cycle 0..99, so `key == 7`
    // selects 1% of the records.
    let mut fs = GenericFs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    let data = make_records(1024);
    let fd = fs.open("fs::/pd/records.bin", true, false).unwrap();
    fs.write(fd, &data).unwrap();
    fs.fsync(fd).unwrap();
    fs.seek(fd, 0).unwrap();

    // Count in-stack: the verifier proves termination (forward-only
    // jumps, bounds-checked loads, fuel-metered) before anything runs
    // kernel-side; `Arc<VerifiedProgram>` is the only attachable type.
    let count = Arc::new(
        Program::count_where_u32_eq(RECORD_LEN, KEY_OFF as u16, 7)
            .verify()
            .expect("program verifies"),
    );
    match fs.read_filtered(fd, data.len(), count).unwrap() {
        FilteredRead::Agg(agg) => println!(
            "labfs: scanned {} records in-stack, {} matched, {} fuel — shipped 32 bytes instead of {}",
            agg.records,
            agg.matches,
            agg.fuel_used,
            data.len()
        ),
        other => println!("unexpected reply: {other:?}"),
    }

    // KVS: values are single records; `get_where` ships the value only
    // if the predicate matches, and `scan_where` evaluates the program
    // over every value under the prefix inside the LabMod.
    let mut kvs = GenericKvs::new(rt.connect(Credentials::new(1, 0, 0), 1));
    for i in 0..10u32 {
        let mut rec = vec![0u8; RECORD_LEN];
        rec[..4].copy_from_slice(&(i % 2).to_le_bytes());
        kvs.put(&format!("kv::/pd/user{i}"), rec).unwrap();
    }
    let odd = Arc::new(
        Program::select_where_u32_eq(RECORD_LEN, 0, 1)
            .verify()
            .unwrap(),
    );
    if let ScanReply::Keys(keys) = kvs.scan_where("kv::/pd/user", odd.clone()).unwrap() {
        println!(
            "labkvs: {} of 10 values matched the scan predicate",
            keys.len()
        );
    }
    let hit = kvs.get_where("kv::/pd/user3", odd).unwrap();
    println!(
        "labkvs: get_where(user3) -> {}",
        if hit.is_some() {
            "value (predicate matched)"
        } else {
            "no bytes shipped"
        }
    );

    rt.shutdown();
}
